"""Unit tests for the sharded columnar engine.

The property suite (``test_sharding_properties.py``) covers the random
algebra; these tests pin the deterministic mechanics — slice geometry,
ragged rebasing, executor plumbing, empty shards, the any-database
mechanism front door — and the real TIPPERS ragged data.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import (
    AttributePolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    Policy,
    SensitiveValuePolicy,
)
from repro.data.columnar import ColumnarDatabase, RaggedColumn
from repro.data.sharding import ShardedColumnarDatabase, shard_slices
from repro.data.tippers import TippersConfig, generate_tippers
from repro.evaluation.runner import release_trials_from_database
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    Product2DBinning,
    histogram_input_for,
)


def _flat_db(n: int = 997, seed: int = 0) -> tuple[ColumnarDatabase, list]:
    rng = np.random.default_rng(seed)
    records = [
        {"age": int(a), "city": c, "opt_in": bool(o)}
        for a, c, o in zip(
            rng.integers(0, 100, n),
            rng.choice(list("abcd"), n),
            rng.integers(0, 2, n),
        )
    ]
    return ColumnarDatabase.from_records(records), records


def _policy() -> Policy:
    return MinimumRelaxationPolicy(
        [
            AttributePolicy("age", lambda v: v <= 25, name="minors"),
            SensitiveValuePolicy("city", {"a", "c"}),
            OptInPolicy(),
        ]
    )


class TestShardSlices:
    def test_balanced_cover(self):
        slices = shard_slices(10, 3)
        assert slices == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_records(self):
        slices = shard_slices(2, 5)
        assert slices[0] == (0, 1) and slices[1] == (1, 2)
        assert all(s == e for s, e in slices[2:])

    def test_sizes_differ_by_at_most_one(self):
        for n, k in ((1000, 7), (5, 5), (13, 4)):
            sizes = [e - s for s, e in shard_slices(n, k)]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_slices(10, 0)


class TestRaggedSlicing:
    def test_slice_segments_rebases_offsets(self):
        col = RaggedColumn(
            flat=np.arange(10), offsets=np.array([0, 3, 3, 7, 10])
        )
        mid = col.slice_segments(1, 3)
        assert len(mid) == 2
        assert np.array_equal(mid.flat, np.arange(3, 7))
        assert np.array_equal(mid.offsets, [0, 0, 4])

    def test_empty_slice(self):
        col = RaggedColumn(flat=np.arange(4), offsets=np.array([0, 2, 4]))
        empty = col.slice_segments(1, 1)
        assert len(empty) == 0 and len(empty.flat) == 0

    def test_out_of_range_rejected(self):
        col = RaggedColumn(flat=np.arange(4), offsets=np.array([0, 2, 4]))
        with pytest.raises(ValueError):
            col.slice_segments(0, 3)

    def test_shards_reassemble_exactly(self):
        col = RaggedColumn(
            flat=np.arange(20), offsets=np.array([0, 1, 5, 5, 12, 20])
        )
        pieces = [
            col.slice_segments(s, e) for s, e in shard_slices(len(col), 3)
        ]
        assert np.array_equal(
            np.concatenate([p.flat for p in pieces]), col.flat
        )
        assert sum(len(p) for p in pieces) == len(col)


class TestShardedDatabase:
    def test_schema_and_lengths(self):
        db, _ = _flat_db()
        sharded = db.shard(4)
        assert len(sharded) == len(db)
        assert sharded.n_shards == 4
        assert sharded.column_names == db.column_names
        assert [e - s for s, e in sharded.slices] == [
            len(s) for s in sharded.shards
        ]

    def test_mismatched_schemas_rejected(self):
        a = ColumnarDatabase({"x": np.arange(3)})
        b = ColumnarDatabase({"y": np.arange(3)})
        with pytest.raises(ValueError):
            ShardedColumnarDatabase([a, b])

    def test_to_columnar_round_trip(self):
        db, _ = _flat_db(101)
        back = db.shard(7).to_columnar()
        for name in db.column_names:
            assert np.array_equal(db[name], back[name])

    def test_iter_records_order(self):
        db, records = _flat_db(53)
        assert list(db.shard(5).iter_records()) == records

    def test_executor_matches_serial(self):
        db, _ = _flat_db(2003)
        policy = _policy()
        serial = db.shard(4).mask(policy)
        with ThreadPoolExecutor(4) as pool:
            threaded = db.shard(4, executor=pool).mask(policy)
            assert np.array_equal(serial, threaded)
            # with_executor swaps the pool without re-slicing
            resharded = db.shard(4).with_executor(pool)
            assert np.array_equal(resharded.mask(policy), serial)

    def test_process_pool_executor(self):
        """Process pools work end to end with picklable shards/policies."""
        db, _ = _flat_db(300)
        policy = MinimumRelaxationPolicy(
            [SensitiveValuePolicy("city", {"a", "c"}), OptInPolicy()]
        )
        binning = IntegerBinning("age", 0, 100, 10)
        serial = db.shard(2)
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = db.shard(2, executor=pool)
            assert np.array_equal(pooled.mask(policy), serial.mask(policy))
            assert np.array_equal(
                pooled.histogram(binning), serial.histogram(binning)
            )
            assert np.array_equal(
                binning.bin_indices(pooled), binning.bin_indices(serial)
            )
            assert len(pooled.non_sensitive(policy)) == len(
                serial.non_sensitive(policy)
            )
            pooled_hist = HistogramInput.from_columnar(
                pooled, HistogramQuery(binning), policy
            )
        serial_hist = HistogramInput.from_columnar(
            serial, HistogramQuery(binning), policy
        )
        assert np.array_equal(pooled_hist.x, serial_hist.x)
        assert np.array_equal(pooled_hist.x_ns, serial_hist.x_ns)

    def test_partition_shard_preserving(self):
        db, records = _flat_db(500)
        policy = _policy()
        sharded = db.shard(3)
        ns = sharded.non_sensitive(policy)
        s = sharded.sensitive(policy)
        assert isinstance(ns, ShardedColumnarDatabase)
        assert len(ns) + len(s) == len(db)
        assert len(ns) == int(
            (db.mask(policy) == 1).sum()
        )

    def test_product_binning_sharded(self):
        db, _ = _flat_db(700)
        binning = Product2DBinning(
            IntegerBinning("age", 0, 100, 10),
            IntegerBinning("age", 0, 100, 25),
        )
        assert np.array_equal(
            binning.bin_indices(db), binning.bin_indices(db.shard(6))
        )

    def test_empty_shards_are_harmless(self):
        db, records = _flat_db(3)
        sharded = db.shard(8)
        assert len(sharded) == 3
        policy = _policy()
        assert np.array_equal(sharded.mask(policy), db.mask(policy))


class TestTippersSharded:
    def test_ap_policy_masks_match(self):
        dataset = generate_tippers(TippersConfig(n_users=80, n_days=12, seed=3))
        db = dataset.columnar()
        policy = dataset.policy_for_fraction(90)
        reference = np.fromiter(
            (policy(t) for t in dataset.trajectories),
            dtype=np.int8,
            count=len(dataset.trajectories),
        )
        for k in (1, 4, 11):
            assert np.array_equal(db.shard(k).mask(policy), reference)


class TestAnyDatabaseFrontDoor:
    def test_histogram_input_for_routes_all_flavors(self):
        db, records = _flat_db(400)
        from repro.data.database import Database

        query = HistogramQuery(IntegerBinning("age", 0, 100, 10))
        policy = _policy()
        h_row = histogram_input_for(Database(records), query, policy)
        h_col = histogram_input_for(db, query, policy)
        h_shard = histogram_input_for(db.shard(5), query, policy)
        assert np.array_equal(h_row.x, h_col.x)
        assert np.array_equal(h_col.x, h_shard.x)
        assert np.array_equal(h_col.x_ns, h_shard.x_ns)

    def test_run_from_database_charges_and_releases(self):
        db, _ = _flat_db(300)
        query = HistogramQuery(IntegerBinning("age", 0, 100, 20))
        policy = _policy()
        accountant = PrivacyAccountant(1.0)
        mech = OsdpLaplaceL1Histogram(0.25, policy=policy)
        out = mech.run(
            db.shard(3), np.random.default_rng(0), query=query,
            policy=policy, accountant=accountant,
        )
        assert out.shape == (query.n_bins,)
        assert accountant.spent == pytest.approx(0.25)
        batch = mech.run(
            db.shard(3),
            np.random.default_rng(0),
            n_trials=4,
            query=query,
            policy=policy,
            accountant=accountant,
        )
        assert batch.shape == (4, query.n_bins)
        assert accountant.spent == pytest.approx(0.5)

    def test_ledger_records_the_input_policy(self):
        """A registry-style OSDP mechanism (no policy attached) must be
        charged under the policy that built x_ns, not P_all."""
        db, _ = _flat_db(200)
        query = HistogramQuery(IntegerBinning("age", 0, 100, 20))
        policy = _policy()
        accountant = PrivacyAccountant(1.0)
        mech = OsdpLaplaceL1Histogram(0.25)  # policy=None
        mech.run(
            db, np.random.default_rng(0), query=query, policy=policy,
            accountant=accountant,
        )
        assert accountant.ledger[0].policy is policy
        from repro.mechanisms.laplace import LaplaceHistogram

        LaplaceHistogram(0.25).run(
            db, np.random.default_rng(0), query=query, policy=policy,
            accountant=accountant,
        )
        assert accountant.ledger[1].policy.name == "P_all"

    def test_release_trials_from_database_matches_hist_path(self):
        db, _ = _flat_db(300)
        query = HistogramQuery(IntegerBinning("age", 0, 100, 20))
        policy = _policy()
        mech = OsdpLaplaceL1Histogram(0.5)
        via_db = release_trials_from_database(
            mech, db.shard(4), query, policy, n_trials=3, seed=11
        )
        hist = HistogramInput.from_columnar(db, query, policy)
        via_hist = mech.release_batch(hist, np.random.default_rng(11), 3)
        assert np.array_equal(via_db, via_hist)


class TestIncrementalUpdates:
    """append_records / expire_prefix vs a from-scratch reslice."""

    def _updated_reference(self, db, extra_records, n_expired):
        from repro.data.columnar import ColumnarDatabase as CD

        full = CD.concat([db, CD.from_records(extra_records)])
        return full.slice_records(n_expired, len(full))

    def test_append_matches_scratch_rebuild(self):
        db, _ = _flat_db(500)
        sharded = db.shard(3)
        policy = _policy()
        extra = [
            {"age": 17, "city": "a", "opt_in": False},
            {"age": 44, "city": "b", "opt_in": True},
        ]
        touched = sharded.append_records(extra)
        assert touched == 2  # the tail shard
        reference = self._updated_reference(db, extra, 0)
        assert len(sharded) == len(reference)
        assert np.array_equal(
            sharded.mask(policy), policy.evaluate_batch(reference)
        )
        binning = IntegerBinning("age", 0, 100, 10)
        assert np.array_equal(
            sharded.histogram(binning), reference.histogram(binning)
        )

    def test_expire_matches_scratch_rebuild(self):
        db, _ = _flat_db(500)
        sharded = db.shard(4)
        policy = _policy()
        touched = sharded.expire_prefix(150)
        # 125-record shards: shard 0 swallowed, shard 1 trimmed
        assert touched == [0, 1]
        assert len(sharded.shards[0]) == 0
        reference = db.slice_records(150, 500)
        assert len(sharded) == len(reference)
        assert np.array_equal(
            sharded.mask(policy), policy.evaluate_batch(reference)
        )

    def test_versions_bump_only_for_touched_shards(self):
        db, _ = _flat_db(300)
        sharded = db.shard(3)
        assert sharded.shard_versions == (0, 0, 0)
        sharded.append_records([{"age": 1, "city": "a", "opt_in": True}])
        assert sharded.shard_versions == (0, 0, 1)
        sharded.expire_prefix(10)
        assert sharded.shard_versions == (1, 0, 1)

    def test_histogram_input_after_updates(self):
        db, _ = _flat_db(400)
        sharded = db.shard(3)
        policy = _policy()
        query = HistogramQuery(IntegerBinning("age", 0, 100, 5))
        extra = [{"age": 3, "city": "c", "opt_in": False}] * 7
        sharded.append_records(extra)
        sharded.expire_prefix(90)
        reference = self._updated_reference(db, extra, 90)
        a = histogram_input_for(sharded, query, policy)
        b = histogram_input_for(reference, query, policy)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.x_ns, b.x_ns)
        assert np.array_equal(a.sensitive_bin_mask, b.sensitive_bin_mask)

    def test_append_ragged_trajectories(self):
        from repro.data.tippers import Trajectory, trajectory_columns

        trajs = [
            Trajectory(user_id=i, day=0, slots=((0, i % 5), (1, (i + 1) % 5)))
            for i in range(30)
        ]
        db = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
        sharded = db.shard(2)
        new = [Trajectory(user_id=99, day=1, slots=((4, 2),))]
        sharded.append_records(new)
        assert len(sharded) == 31
        from repro.data.tippers import SensitiveAPPolicy

        policy = SensitiveAPPolicy({2})
        combined = trajs + new
        expected = np.fromiter(
            (policy(t) for t in combined), dtype=np.int8, count=31
        )
        assert np.array_equal(sharded.mask(policy), expected)

    def test_append_reorders_mismatched_schema(self):
        db, _ = _flat_db(50)
        sharded = db.shard(2)
        sharded.append_records([{"opt_in": True, "city": "d", "age": 30}])
        assert sharded.column_names == db.column_names
        assert len(sharded) == 51

    def test_append_rejects_wrong_schema(self):
        db, _ = _flat_db(50)
        sharded = db.shard(2)
        with pytest.raises(ValueError, match="columns"):
            sharded.append_records([{"age": 1, "city": "a"}])

    def test_expire_rejects_overdraw(self):
        db, _ = _flat_db(50)
        sharded = db.shard(2)
        with pytest.raises(ValueError):
            sharded.expire_prefix(51)
        with pytest.raises(ValueError):
            sharded.expire_prefix(-1)

    def test_expire_everything_leaves_empty_shards(self):
        db, _ = _flat_db(40)
        sharded = db.shard(3)
        sharded.expire_prefix(40)
        assert len(sharded) == 0
        assert sharded.n_shards == 3
