"""Tests for sparse n-gram counting and truncation (§6.2)."""

import numpy as np
import pytest

from repro.data.tippers import Trajectory
from repro.queries.ngram import (
    NGramCounter,
    SparseHistogram,
    sparse_mre,
    truncate_trajectory_grams,
)


def make_trajectory(aps, user_id=0, day=0):
    return Trajectory(
        user_id=user_id, day=day, slots=tuple((i, ap) for i, ap in enumerate(aps))
    )


class TestSparseHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseHistogram(counts={}, domain_size=0)

    def test_lookup_defaults_to_zero(self):
        hist = SparseHistogram(counts={(1, 2): 3.0}, domain_size=100)
        assert hist[(1, 2)] == 3.0
        assert hist[(9, 9)] == 0.0

    def test_zero_cells_and_total(self):
        hist = SparseHistogram(counts={(1,): 2.0, (2,): 3.0}, domain_size=10)
        assert hist.n_zero_cells == 8
        assert hist.total == 5.0


class TestTruncation:
    def test_no_truncation(self):
        t = make_trajectory([1, 2, 3, 4])
        grams = truncate_trajectory_grams(t, 2, None)
        assert grams == [(1, 2), (2, 3), (3, 4)]

    def test_truncation_keeps_first_k(self):
        t = make_trajectory([1, 2, 3, 4])
        grams = truncate_trajectory_grams(t, 2, 2)
        assert grams == [(1, 2), (2, 3)]

    def test_invalid_k(self):
        t = make_trajectory([1, 2, 3])
        with pytest.raises(ValueError):
            truncate_trajectory_grams(t, 2, 0)

    def test_distinctness_before_truncation(self):
        t = make_trajectory([1, 2, 1, 2, 1])
        grams = truncate_trajectory_grams(t, 2, 10)
        assert len(grams) == len(set(grams))


class TestNGramCounter:
    def test_counts_trajectories_not_occurrences(self):
        """A trajectory containing an n-gram twice contributes once."""
        counter = NGramCounter(n=2, n_aps=8)
        hist = counter.count([make_trajectory([1, 2, 1, 2])])
        assert hist[(1, 2)] == 1.0

    def test_multiple_trajectories_accumulate(self):
        counter = NGramCounter(n=2, n_aps=8)
        hist = counter.count(
            [make_trajectory([1, 2, 3], user_id=0), make_trajectory([1, 2], user_id=1)]
        )
        assert hist[(1, 2)] == 2.0
        assert hist[(2, 3)] == 1.0

    def test_domain_size(self):
        assert NGramCounter(n=4, n_aps=64).domain_size == 64.0**4

    def test_sensitivity_with_truncation(self):
        assert NGramCounter(n=3, truncation=5).l1_sensitivity == 10.0

    def test_sensitivity_without_truncation_is_domain(self):
        counter = NGramCounter(n=2, n_aps=8)
        assert counter.l1_sensitivity == 64.0

    def test_truncated_counts_bounded(self):
        counter = NGramCounter(n=2, n_aps=8, truncation=1)
        hist = counter.count([make_trajectory([1, 2, 3, 4])])
        assert hist.total == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NGramCounter(n=0)


class TestSparseMre:
    def _truth(self):
        return SparseHistogram(counts={(1,): 10.0, (2,): 4.0}, domain_size=100)

    def test_perfect_estimate_zero_error(self):
        truth = self._truth()
        assert sparse_mre(truth, {(1,): 10.0, (2,): 4.0}) == 0.0

    def test_support_mode_normalizes_by_support(self):
        truth = self._truth()
        # Both cells wrong by 100%: MRE = 1.
        assert sparse_mre(truth, {}) == pytest.approx(1.0)

    def test_full_mode_includes_zero_cells(self):
        truth = self._truth()
        mre = sparse_mre(
            truth, {}, domain="full", expected_abs_noise_on_zeros=2.0
        )
        # 2 support cells at rel error 1 each + 98 zero cells at 2 each.
        assert mre == pytest.approx((2.0 + 98 * 2.0) / 100.0)

    def test_spurious_estimate_cells_counted(self):
        truth = self._truth()
        mre = sparse_mre(truth, {(1,): 10.0, (2,): 4.0, (3,): 5.0})
        # Cell (3,) has |0 - 5| / max(0, 1) = 5, averaged over 3 cells.
        assert mre == pytest.approx(5.0 / 3.0)

    def test_delta_floor(self):
        truth = SparseHistogram(counts={(1,): 0.5}, domain_size=10)
        assert sparse_mre(truth, {}, delta=1.0) == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sparse_mre(self._truth(), {}, domain="galaxy")


class TestColumnarCounting:
    """count_columnar == count, gram for gram, truncation included."""

    def _random_trajectories(self, seed, n=60, n_aps=9):
        rng = np.random.default_rng(seed)
        trajs = []
        for i in range(n):
            length = int(rng.integers(1, 12))
            aps = rng.integers(0, n_aps, length)
            trajs.append(make_trajectory(aps.tolist(), user_id=i))
        return trajs

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("truncation", [None, 1, 2, 5])
    def test_matches_row_counting(self, n, truncation):
        from repro.data.columnar import ColumnarDatabase
        from repro.data.tippers import trajectory_columns

        trajs = self._random_trajectories(seed=n * 10 + (truncation or 0))
        db = ColumnarDatabase(trajectory_columns(trajs))
        counter = NGramCounter(n=n, n_aps=9, truncation=truncation)
        assert counter.count_columnar(db).counts == counter.count(trajs).counts

    def test_short_records_yield_no_windows(self):
        from repro.data.columnar import ColumnarDatabase
        from repro.data.tippers import trajectory_columns

        trajs = [make_trajectory([1]), make_trajectory([2, 3])]
        db = ColumnarDatabase(trajectory_columns(trajs))
        counter = NGramCounter(n=3, n_aps=8)
        assert counter.count_columnar(db).counts == {}

    def test_invalid_truncation_and_ap_range(self):
        from repro.data.columnar import ColumnarDatabase
        from repro.data.tippers import trajectory_columns

        db = ColumnarDatabase(trajectory_columns([make_trajectory([1, 2])]))
        with pytest.raises(ValueError):
            NGramCounter(n=2, n_aps=8, truncation=0).count_columnar(db)
        with pytest.raises(ValueError, match="AP values"):
            NGramCounter(n=2, n_aps=2).count_columnar(db)


class TestColumnarPolicyConstruction:
    """policy_for_fraction_columnar replays the row greedy exactly."""

    def _dataset(self):
        from repro.data.tippers import TippersConfig, generate_tippers

        return generate_tippers(TippersConfig(n_users=80, n_days=12, seed=5))

    def test_ap_coverage_matches(self):
        from repro.data.tippers import ap_coverage_columnar

        dataset = self._dataset()
        coverage = dataset.ap_coverage()
        columnar = ap_coverage_columnar(
            dataset.columnar(), dataset.config.n_aps
        )
        assert [coverage[ap] for ap in range(dataset.config.n_aps)] == list(
            columnar
        )

    @pytest.mark.parametrize("rho", [99, 75, 50, 10, 1])
    def test_same_chosen_ap_set_and_name(self, rho):
        from repro.data.tippers import policy_for_fraction_columnar

        dataset = self._dataset()
        row = dataset.policy_for_fraction(rho)
        col = policy_for_fraction_columnar(
            dataset.columnar(), rho, dataset.config.n_aps
        )
        assert col.sensitive_aps == row.sensitive_aps
        assert col.name == row.name

    def test_percent_validation(self):
        from repro.data.tippers import policy_for_fraction_columnar

        with pytest.raises(ValueError):
            policy_for_fraction_columnar(self._dataset().columnar(), 0, 64)


class TestStreamIdentity:
    """The columnar experiment pipeline == the row pipeline, bit for bit.

    The ROADMAP-leftover satellite: the n-gram benchmarks now consume
    generate_tippers_columnar; this is the test that the migration
    cannot have changed a single reported number.
    """

    def test_columnar_experiment_bit_identical_to_rows(self):
        from dataclasses import replace

        from repro.data.tippers import TippersConfig
        from repro.evaluation.experiments.fig2_3_ngrams import (
            NGramConfig,
            run_ngram_experiment,
        )

        config = NGramConfig(
            tippers=TippersConfig(n_users=60, n_days=10, seed=7),
            n=3,
            policies=(90, 50, 10),
            epsilons=(1.0, 0.01),
            truncation_sweep=(1, 2),
            n_trials=2,
        )
        assert config.columnar  # columnar is the default path
        columnar = run_ngram_experiment(config)
        rows = run_ngram_experiment(replace(config, columnar=False))
        # dict equality on floats == bit identity, the strongest form
        assert columnar == rows
