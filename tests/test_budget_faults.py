"""Faults lane for budget durability: charges survive SIGKILL.

The acceptance contract, with real process deaths (no mocks):

* A metered serve endpoint (``EndpointProcess`` with ``budget_dir``)
  is SIGKILLed mid-release-stream and restarted on the same port from
  its charge journal: the recovered ``spent`` covers **every acked
  charge** — a client can never hold a noisy release the restarted
  ledger does not account for — and a torn tail (the charge the kill
  interrupted) is *counted*, not truncated.
* A cluster **coordinator** process owning a
  :class:`repro.service.budget.DurableAccountant` is SIGKILLed between
  acked releases; reopening its journal directory recovers at least
  every acked charge — exactly-once accounting across coordinator
  restarts.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from faults import EndpointProcess, loopback_skip_reason
from repro.api import ClusterEndpoint, OsdpClient
from repro.queries.histogram import IntegerBinning

pytestmark = pytest.mark.faults
_SKIP_REASON = loopback_skip_reason()
if _SKIP_REASON:
    pytestmark = [pytest.mark.faults, pytest.mark.skip(reason=_SKIP_REASON)]


BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}
EPS = 0.125


def _release(client, seed: int):
    return client.release(
        mechanism="osdp_laplace_l1",
        epsilon=EPS,
        binning=BINNING_SPEC,
        policy=POLICY_SPEC,
        seed=seed,
    )


class TestEndpointBudgetSurvivesSigkill:
    def test_acked_charges_survive_kill_and_restart(self, tmp_path):
        budget_dir = str(tmp_path / "budget")
        with EndpointProcess(
            2000, 0, 0, 2000,
            budget_dir=budget_dir, budget_epsilon=1000.0,
        ) as proc:
            acked = 0
            with OsdpClient.connect(proc.host, proc.port) as client:
                for seed in range(20):
                    response = _release(client, seed)
                    acked += 1
                    assert response.budget_remaining is not None
            # SIGKILL: no atexit, no flush, no goodbye.
            proc.kill()
            proc.restart()
            with OsdpClient.connect(proc.host, proc.port) as client:
                view = client.budget()
                # Every acked charge is in the recovered ledger.
                assert view["spent"] >= acked * EPS - 1e-9
                assert view["total"] == 1000.0
                # The restarted server keeps charging from where it
                # stood, not from zero.
                _release(client, 99)
                after = client.budget()
                assert after["spent"] >= (acked + 1) * EPS - 1e-9

    def test_kill_mid_release_stream_never_undercounts(self, tmp_path):
        """Hammer releases and SIGKILL mid-stream: recovered spent >=
        every charge whose release was acked to the client."""
        budget_dir = str(tmp_path / "budget")
        with EndpointProcess(
            2000, 0, 0, 2000,
            budget_dir=budget_dir, budget_epsilon=1000.0,
        ) as proc:
            acked = 0
            with OsdpClient.connect(proc.host, proc.port) as client:
                try:
                    for seed in range(10_000):
                        _release(client, seed)
                        acked += 1
                        if acked == 7:
                            # Kill from under the live connection.
                            proc.kill()
                except (ConnectionError, OSError, EOFError):
                    pass  # the kill severed the stream mid-exchange
            proc.restart()
            with OsdpClient.connect(proc.host, proc.port) as client:
                view = client.budget()
            # The journal may hold one more charge than was acked (the
            # release the kill interrupted) — never fewer.  Wasting
            # epsilon is safe; resurrecting it is a privacy violation.
            assert view["spent"] >= acked * EPS - 1e-9


def _coordinator_main(conn, host, port, budget_dir) -> None:
    """A coordinator process: DurableAccountant + ClusterBackend,
    reporting each *acked* release back through the pipe."""
    from repro.api.cluster import ClusterBackend
    from repro.service.budget import DurableAccountant

    accountant = DurableAccountant(budget_dir, total_epsilon=1000.0)
    backend = ClusterBackend(
        [ClusterEndpoint(host, port, shard_range=(0, 2000))],
        accountant=accountant,
    )
    with OsdpClient(backend) as client:
        for seed in range(10_000):
            _release(client, seed)
            conn.send(seed)  # acked: the noisy release escaped


class TestCoordinatorBudgetSurvivesSigkill:
    def test_coordinator_journal_recovers_every_acked_charge(
        self, tmp_path
    ):
        budget_dir = str(tmp_path / "coord-budget")
        with EndpointProcess(2000, 0, 0, 2000) as endpoint:
            parent_conn, child_conn = multiprocessing.Pipe()
            coordinator = multiprocessing.Process(
                target=_coordinator_main,
                args=(child_conn, endpoint.host, endpoint.port, budget_dir),
                daemon=True,
            )
            coordinator.start()
            child_conn.close()
            acked = 0
            deadline = time.monotonic() + 60
            while acked < 9 and time.monotonic() < deadline:
                if parent_conn.poll(1):
                    parent_conn.recv()
                    acked += 1
            assert acked >= 9, "coordinator never got going"
            # SIGKILL the coordinator mid-stream.
            os.kill(coordinator.pid, signal.SIGKILL)
            coordinator.join(timeout=10)
            # Drain acks that were in flight in the pipe buffer.
            try:
                while parent_conn.poll(0.2):
                    parent_conn.recv()
                    acked += 1
            except EOFError:
                pass
            parent_conn.close()
        from repro.service.budget import DurableAccountant

        with DurableAccountant(budget_dir, total_epsilon=1000.0) as back:
            # Exactly-once across restarts: every acked charge is in
            # the recovered ledger (at most one extra: the charge the
            # kill interrupted, counted by the inverted fail-safe).
            assert back.spent >= acked * EPS - 1e-9
            assert back.spent <= (acked + 2) * EPS + 1e-9
