"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.epsilon == [1.0, 0.5, 0.1]

    def test_ngrams_n_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ngrams", "--n", "9"])

    def test_dpbench_args(self):
        args = build_parser().parse_args(
            ["dpbench", "--datasets", "adult", "--ratios", "0.5", "--trials", "1"]
        )
        assert args.datasets == ["adult"]
        assert args.ratios == [0.5]


class TestExecution:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1", "--records", "2000", "--epsilon", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "analytic %" in out
        assert "63" in out

    def test_table1_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "t1.json"
        main(
            [
                "table1",
                "--records",
                "2000",
                "--epsilon",
                "1.0",
                "--output",
                str(out_file),
            ]
        )
        data = json.loads(out_file.read_text())
        assert "analytic" in data and "measured" in data

    def test_dpbench_small_run(self, capsys):
        code = main(
            [
                "dpbench",
                "--datasets", "adult",
                "--ratios", "0.99",
                "--trials", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average MRE-regret" in out
        assert "dawaz" in out

    def test_ngrams_small_run(self, capsys):
        code = main(
            [
                "ngrams",
                "--users", "80",
                "--days", "15",
                "--n", "4",
                "--policies", "99",
                "--epsilon", "1.0",
                "--trials", "1",
            ]
        )
        assert code == 0
        assert "MRE at epsilon = 1.0" in capsys.readouterr().out

    def test_tippers_hist_small_run(self, capsys):
        code = main(
            [
                "tippers-hist",
                "--users", "80",
                "--days", "15",
                "--policies", "99",
                "--epsilon", "1.0",
                "--trials", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rel95" in out


class TestServe:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7777
        assert args.dataset == "synthetic"
        assert not args.workers
        assert args.budget is None

    def test_serve_database_synthetic(self):
        args = build_parser().parse_args(
            ["serve", "--records", "500", "--seed", "3"]
        )
        from repro.cli import serve_database

        db = serve_database(args)
        assert len(db) == 500
        assert set(db.column_names) == {"age", "city", "opt_in"}

    def test_serve_database_dpbench(self):
        args = build_parser().parse_args(
            ["serve", "--dataset", "adult", "--records", "1000"]
        )
        from repro.cli import serve_database

        db = serve_database(args)
        assert len(db) == 1000
        assert set(db.column_names) == {"value", "opt_in"}

    @pytest.mark.rpc
    def test_served_database_end_to_end(self):
        """The CLI's wiring, driven in-process on an ephemeral port."""
        import socket

        try:
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            probe.close()
        except OSError as exc:
            pytest.skip(f"loopback sockets unavailable: {exc}")
        from repro.api import OsdpClient
        from repro.api.backends import ShardedBackend
        from repro.cli import serve_database
        from repro.service.rpc import RpcServer

        args = build_parser().parse_args(
            ["serve", "--records", "800", "--shards", "2", "--port", "0"]
        )
        backend = ShardedBackend(serve_database(args), n_shards=args.shards)
        with RpcServer(backend.server, port=0).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                assert client.backend.ping()["n_records"] == 800

    def test_serve_budget_zero_fails_loudly(self):
        """--budget 0 must not silently start an unmetered server."""
        from repro.cli import cmd_serve

        args = build_parser().parse_args(["serve", "--budget", "0"])
        with pytest.raises(ValueError, match="total_epsilon"):
            cmd_serve(args)

    def test_serve_shm_and_reader_flags_parse(self):
        args = build_parser().parse_args(["serve"])
        assert args.shm is None and args.max_readers is None
        args = build_parser().parse_args(
            ["serve", "--workers", "--shm", "--max-readers", "8"]
        )
        assert args.shm is True and args.max_readers == 8
        args = build_parser().parse_args(["serve", "--workers", "--no-shm"])
        assert args.shm is False

    def test_serve_shm_without_workers_fails_loudly(self):
        from repro.cli import cmd_serve

        args = build_parser().parse_args(["serve", "--shm"])
        with pytest.raises(SystemExit, match="--workers"):
            cmd_serve(args)

    def test_serve_max_readers_validated_before_startup(self):
        from repro.cli import cmd_serve

        args = build_parser().parse_args(["serve", "--max-readers", "0"])
        with pytest.raises(SystemExit, match="max-readers"):
            cmd_serve(args)

    def test_serve_budget_flags_parse(self):
        args = build_parser().parse_args(["serve"])
        assert args.budget_dir is None
        assert args.quota == [] or args.quota is None
        assert args.max_inflight is None
        args = build_parser().parse_args(
            [
                "serve", "--budget", "10", "--budget-dir", "/tmp/ledger",
                "--quota", "alice=2.5", "--quota", "bob=3",
                "--max-inflight", "64",
            ]
        )
        assert args.budget_dir == "/tmp/ledger"
        assert args.quota == ["alice=2.5", "bob=3"]
        assert args.max_inflight == 64

    def test_parse_quotas(self):
        from repro.cli import _parse_quotas

        assert _parse_quotas([]) is None
        assert _parse_quotas(["alice=2.5", "bob=3"]) == {
            "alice": 2.5,
            "bob": 3.0,
        }
        with pytest.raises(SystemExit, match="NAME=EPS"):
            _parse_quotas(["alice"])
        with pytest.raises(SystemExit, match="number"):
            _parse_quotas(["alice=lots"])

    def test_serve_quota_without_budget_fails_loudly(self):
        """A quota against no global budget is a configuration lie."""
        from repro.cli import cmd_serve

        args = build_parser().parse_args(["serve", "--quota", "alice=1"])
        with pytest.raises(SystemExit, match="--budget"):
            cmd_serve(args)

    def test_serve_budget_dir_without_budget_fails_loudly(self):
        from repro.cli import cmd_serve

        args = build_parser().parse_args(
            ["serve", "--budget-dir", "/tmp/ledger"]
        )
        with pytest.raises(SystemExit, match="--budget"):
            cmd_serve(args)

    def test_serve_max_inflight_validated_before_startup(self):
        from repro.cli import cmd_serve

        args = build_parser().parse_args(["serve", "--max-inflight", "0"])
        with pytest.raises(SystemExit, match="max-inflight"):
            cmd_serve(args)

    def test_serve_prints_the_live_store_mode(self, capsys):
        """Operators must be able to tell which storage path is live."""
        import threading

        from repro.cli import cmd_serve

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--records", "300", "--shards", "1"]
        )
        thread = threading.Thread(target=cmd_serve, args=(args,), daemon=True)
        # cmd_serve blocks in serve_forever; capture the startup print
        # by polling until it lands, then let the daemon die with us.
        thread.start()
        for _ in range(100):
            out = capsys.readouterr().out
            if "store:" in out:
                break
            import time

            time.sleep(0.05)
        else:  # pragma: no cover - diagnostics
            pytest.fail("serve never printed its store mode")
        assert "store: heap (in-process engine, no worker pool)" in out
        assert "concurrent readers" in out
