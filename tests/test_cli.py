"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.epsilon == [1.0, 0.5, 0.1]

    def test_ngrams_n_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ngrams", "--n", "9"])

    def test_dpbench_args(self):
        args = build_parser().parse_args(
            ["dpbench", "--datasets", "adult", "--ratios", "0.5", "--trials", "1"]
        )
        assert args.datasets == ["adult"]
        assert args.ratios == [0.5]


class TestExecution:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1", "--records", "2000", "--epsilon", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "analytic %" in out
        assert "63" in out

    def test_table1_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "t1.json"
        main(
            [
                "table1",
                "--records",
                "2000",
                "--epsilon",
                "1.0",
                "--output",
                str(out_file),
            ]
        )
        data = json.loads(out_file.read_text())
        assert "analytic" in data and "measured" in data

    def test_dpbench_small_run(self, capsys):
        code = main(
            [
                "dpbench",
                "--datasets", "adult",
                "--ratios", "0.99",
                "--trials", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average MRE-regret" in out
        assert "dawaz" in out

    def test_ngrams_small_run(self, capsys):
        code = main(
            [
                "ngrams",
                "--users", "80",
                "--days", "15",
                "--n", "4",
                "--policies", "99",
                "--epsilon", "1.0",
                "--trials", "1",
            ]
        )
        assert code == 0
        assert "MRE at epsilon = 1.0" in capsys.readouterr().out

    def test_tippers_hist_small_run(self, capsys):
        code = main(
            [
                "tippers-hist",
                "--users", "80",
                "--days", "15",
                "--policies", "99",
                "--epsilon", "1.0",
                "--trials", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rel95" in out
