"""The streaming ingestion tier, end to end.

Four layers under test, all driven by the injectable clock
(``tests/clocks.FakeClock``) so every watermark, retention window and
release period is an instant, exact assertion:

* **IngestBuffer** — size/age watermark group commits, the bounded
  queue's :class:`IngestBackpressure`, and the ack contract (a failed
  flush keeps every staged event; ``on_flush`` fires only on success).
* **RetentionDriver / ContinualReleaseScheduler** — expire-then-forget
  retry safety, one release per elapsed period, deterministic seeds.
* **Bit-identity** — a streamed telemetry ingest (with and without
  retention) lands the exact column state of a cold batch load of the
  same final window, on the in-process and socket paths alike.
* **The server-side group commit** (``rpc`` lane) — ``ingest`` stages
  without logging, backpressure refuses an overflowing batch, the
  watermark flush coalesces every staged batch into **one** WAL entry,
  and (``faults`` lane) SIGKILL of a replica mid-stream loses no acked
  events: WAL replay plus resync restore the victim bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from clocks import FakeClock
from faults import EndpointProcess, loopback_skip_reason, slice_db
from repro.api import (
    ClusterBackend,
    ClusterEndpoint,
    OsdpClient,
    RemoteBackend,
    RetryPolicy,
)
from repro.data.columnar import ColumnarDatabase
from repro.data.telemetry import (
    TelemetryConfig,
    telemetry_database,
    telemetry_events,
)
from repro.ingest import (
    ContinualReleaseScheduler,
    IngestBackpressure,
    IngestBuffer,
    RetentionDriver,
)
from repro.queries.histogram import IntegerBinning
from repro.service.rpc import RpcServer
from repro.service.server import ReleaseServer
from repro.service.wal import WriteAheadLog

_SOCKET_SKIP = loopback_skip_reason()
needs_sockets = pytest.mark.skipif(
    _SOCKET_SKIP is not None, reason=_SOCKET_SKIP or ""
)

CFG = TelemetryConfig(seed=3)
REGION_BINNING = IntegerBinning("region", 0, CFG.n_regions, 1)
OPT_OUT_POLICY = {"attr": "opt_in", "op": "==", "value": False}


class RecordingTarget:
    """An append/expire sink that remembers everything, or fails on cue."""

    def __init__(self):
        self.appends: list = []
        self.expired: list[int] = []
        self.fail = False

    def append_records(self, records) -> int:
        if self.fail:
            raise ConnectionError("target down")
        self.appends.append(records)
        return 0

    def expire_prefix(self, n_records: int) -> list[int]:
        if self.fail:
            raise ConnectionError("target down")
        self.expired.append(n_records)
        return [0]


def _live_columns(client) -> ColumnarDatabase:
    db = client.backend.server.db
    return db.to_columnar() if hasattr(db, "to_columnar") else db


def _assert_same_columns(live, cold) -> None:
    assert list(live.column_names) == list(cold.column_names)
    for name in cold.column_names:
        a, b = np.asarray(live[name]), np.asarray(cold[name])
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


# ----------------------------------------------------------------------
# IngestBuffer: watermarks, backpressure, the ack contract
# ----------------------------------------------------------------------


class TestIngestBuffer:
    def test_size_watermark_flushes_one_group(self):
        target = RecordingTarget()
        buffer = IngestBuffer(target, max_events=4, clock=FakeClock())
        reports = [buffer.append({"v": i, "opt_in": True}) for i in range(4)]
        assert reports[:3] == [None, None, None]
        assert reports[3] == {"events": 4, "pending": 0}
        # The four events went as one append (one group commit).
        assert len(target.appends) == 1
        assert buffer.events_flushed == 4 and buffer.flushes == 1

    def test_age_watermark_fires_on_tick(self):
        clock = FakeClock()
        target = RecordingTarget()
        buffer = IngestBuffer(
            target, max_events=100, max_age=5.0, clock=clock
        )
        buffer.append({"v": 1, "opt_in": True})
        clock.advance(4.9)
        assert buffer.tick() is None  # not old enough yet
        clock.advance(0.1)
        report = buffer.tick()
        assert report == {"events": 1, "pending": 0}
        # The age clock restarts with the next staged event.
        buffer.append({"v": 2, "opt_in": False})
        assert buffer.tick() is None

    def test_backpressure_when_full_and_target_down(self):
        target = RecordingTarget()
        buffer = IngestBuffer(
            target, max_events=2, max_pending=2, clock=FakeClock()
        )
        target.fail = True
        buffer.append({"v": 0})
        with pytest.raises(ConnectionError):
            buffer.append({"v": 1})  # hit max_events; the flush fails
        assert buffer.pending == 2  # ...but the events stay staged
        with pytest.raises(IngestBackpressure, match="full"):
            buffer.append({"v": 2})  # now at max_pending: backpressure
        assert buffer.pending == 2  # the refused event was not staged
        # Once the target drains, the same append goes through.
        target.fail = False
        buffer.append({"v": 2})
        assert buffer.events_flushed == 2 and buffer.pending == 1

    def test_failed_flush_keeps_events_and_skips_on_flush(self):
        acked: list = []
        target = RecordingTarget()
        buffer = IngestBuffer(
            target, max_events=10, clock=FakeClock(), on_flush=acked.extend
        )
        buffer.append({"v": 1})
        target.fail = True
        with pytest.raises(ConnectionError):
            buffer.flush()
        assert buffer.pending == 1 and not acked  # nothing acked
        target.fail = False
        buffer.flush()
        assert buffer.pending == 0 and acked == [{"v": 1}]

    def test_fixed_width_batches_columnarize_ragged_stay_rows(self):
        target = RecordingTarget()
        buffer = IngestBuffer(target, max_events=2, clock=FakeClock())
        buffer.extend([{"v": 1, "opt_in": True}, {"v": 2, "opt_in": False}])
        assert isinstance(target.appends[0], ColumnarDatabase)
        buffer.extend([{"v": 1, "opt_in": True}, {"v": "NA", "opt_in": False}])
        assert isinstance(target.appends[1], list)  # object dtype: raw rows

    def test_watermark_validation(self):
        with pytest.raises(ValueError, match="max_events"):
            IngestBuffer(RecordingTarget(), max_events=0)
        with pytest.raises(ValueError, match="max_pending"):
            IngestBuffer(RecordingTarget(), max_events=8, max_pending=4)
        with pytest.raises(ValueError, match="max_age"):
            IngestBuffer(RecordingTarget(), max_age=0.0)


# ----------------------------------------------------------------------
# RetentionDriver: sliding-window expiry from durable timestamps
# ----------------------------------------------------------------------


class TestRetentionDriver:
    def test_expires_exactly_the_aged_prefix(self):
        clock = FakeClock(start=100.0)
        target = RecordingTarget()
        driver = RetentionDriver(target, window=10.0, clock=clock)
        driver.observe([85.0, 88.0, 92.0, 99.0])
        assert driver.due() == 2  # 85 and 88 are older than 100 - 10
        assert driver.tick() == 2
        assert target.expired == [2]
        assert driver.retained == 2
        assert driver.tick() == 0  # idempotent until time moves
        clock.advance(3.0)
        assert driver.tick() == 1  # now 92 has aged out too

    def test_failed_expire_is_retried_with_the_same_prefix(self):
        clock = FakeClock(start=50.0)
        target = RecordingTarget()
        driver = RetentionDriver(target, window=5.0, clock=clock)
        driver.observe([40.0, 41.0, 49.0])
        target.fail = True
        with pytest.raises(ConnectionError):
            driver.tick()
        # Expire-then-forget: the failure kept the timestamps, so the
        # next tick retries the identical prefix — never a double trim.
        assert driver.retained == 3
        target.fail = False
        assert driver.tick() == 2
        assert target.expired == [2]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RetentionDriver(RecordingTarget(), window=0.0)


# ----------------------------------------------------------------------
# ContinualReleaseScheduler: one release per elapsed period
# ----------------------------------------------------------------------


class TestContinualRelease:
    def _scheduler(self, client, clock, **overrides):
        kwargs = dict(
            mechanism="osdp_laplace_l1",
            epsilon=0.25,
            binning=REGION_BINNING,
            policy=OPT_OUT_POLICY,
            period=10.0,
            base_seed=7,
            clock=clock,
        )
        kwargs.update(overrides)
        return ContinualReleaseScheduler(client, **kwargs)

    def test_first_tick_releases_then_one_per_period(self):
        clock = FakeClock()
        with OsdpClient.in_process(telemetry_database(500, CFG)) as client:
            sched = self._scheduler(client, clock)
            assert len(sched.tick()) == 1  # the opening publication
            assert sched.tick() == []  # nothing due yet
            clock.advance(10.0)
            assert len(sched.tick()) == 1
            # A clock jump of 3 periods yields 3 catch-up releases.
            clock.advance(30.0)
            assert len(sched.tick()) == 3
            assert len(sched.releases) == 5
            assert sched.epsilon_charged == pytest.approx(5 * 0.25)

    def test_schedule_replay_is_bit_identical(self):
        def run() -> list[np.ndarray]:
            clock = FakeClock()
            with OsdpClient.in_process(telemetry_database(500, CFG)) as c:
                sched = self._scheduler(c, clock)
                sched.tick()
                clock.advance(25.0)
                sched.tick()
                return [r.estimates.copy() for r in sched.releases]

        first, second = run(), run()
        assert len(first) == 3
        for a, b in zip(first, second):
            assert np.array_equal(a, b) and a.dtype == b.dtype

    def test_releases_charge_the_servers_accountant(self):
        from repro.core.accountant import PrivacyAccountant

        clock = FakeClock()
        with OsdpClient.in_process(
            telemetry_database(500, CFG), accountant=PrivacyAccountant(1.0)
        ) as client:
            sched = self._scheduler(client, clock, epsilon=0.4)
            sched.tick()
            clock.advance(10.0)
            sched.tick()
            assert sched.epsilon_charged == pytest.approx(0.8)
            assert client.backend.server.accountant.remaining == (
                pytest.approx(0.2)
            )


# ----------------------------------------------------------------------
# The assembled pipeline: streamed state == cold batch load
# ----------------------------------------------------------------------


class TestStreamingPipeline:
    def test_streamed_ingest_bit_identical_to_cold_load(self):
        n = 1500
        with OsdpClient.in_process(telemetry_database(0, CFG)) as client:
            with client.open_stream(
                max_events=128, clock=FakeClock()
            ) as stream:
                for event in telemetry_events(n, CFG):
                    stream.submit(event)
            _assert_same_columns(_live_columns(client), telemetry_database(n, CFG))
            assert stream.buffer.events_flushed == n

    def test_sliding_window_matches_cold_load_of_surviving_suffix(self):
        events = list(telemetry_events(1200, CFG))
        clock = FakeClock()
        with OsdpClient.in_process(telemetry_database(0, CFG)) as client:
            with client.open_stream(
                window=4.0, max_events=100, clock=clock
            ) as stream:
                for event in events:
                    stream.submit(event)
                    clock.set(event["ts"])  # the stream tracks real time
            n_live = len(client.backend.server.db)
            cutoff = clock.now() - 4.0
            survivors = [e for e in events if e["ts"] >= cutoff]
            assert n_live == len(survivors)
            assert stream.retention.events_expired == 1200 - len(survivors)
            # The trimmed state is the cold load of the suffix, bit for bit.
            full = telemetry_database(1200, CFG)
            suffix = full.slice_records(1200 - len(survivors), 1200)
            _assert_same_columns(_live_columns(client), suffix)

    def test_pipeline_composes_retention_and_continual_release(self):
        clock = FakeClock()
        with OsdpClient.in_process(telemetry_database(0, CFG)) as client:
            with client.open_stream(
                window=6.0,
                max_events=64,
                release=dict(
                    mechanism="osdp_laplace_l1",
                    epsilon=0.5,
                    binning=REGION_BINNING,
                    policy=OPT_OUT_POLICY,
                    period=3.0,
                    base_seed=11,
                ),
                clock=clock,
            ) as stream:
                for event in telemetry_events(900, CFG):
                    stream.submit(event)
                    clock.set(event["ts"])
            assert stream.continual.releases  # the schedule actually ran
            periods_elapsed = int(clock.now() // 3.0)
            assert len(stream.continual.releases) == 1 + periods_elapsed
            assert stream.continual.epsilon_charged == pytest.approx(
                0.5 * len(stream.continual.releases)
            )
            assert stream.retention.events_expired > 0


# ----------------------------------------------------------------------
# The server-side group commit over the wire (rpc lane)
# ----------------------------------------------------------------------


@needs_sockets
@pytest.mark.rpc
class TestServerSideIngest:
    def _serve(self, wal=None, **kwargs):
        return RpcServer(
            ReleaseServer(telemetry_database(0, CFG)), wal=wal, **kwargs
        ).start()

    def test_stage_flush_and_status_round_trip(self):
        events = list(telemetry_events(60, CFG))
        with self._serve() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                backend = client.backend
                staged = backend.ingest(events[:25])
                assert staged == {
                    "accepted": True, "pending": 25,
                    "flushed": False, "seq": None,
                }
                status = backend.ingest_status()
                assert status["pending_events"] == 25
                assert status["pending_batches"] == 1
                report = backend.flush_ingest()
                assert report["events"] == 25 and report["batches"] == 1
                assert report["seq"] == 1 and report["pending"] == 0
                # An empty flush is a cheap no-op, not an error.
                assert backend.flush_ingest()["seq"] is None

    def test_watermark_flush_coalesces_to_one_wal_entry(self, tmp_path):
        events = list(telemetry_events(300, CFG))
        with self._serve(
            wal=WriteAheadLog(tmp_path),
            ingest_queue=1000,
            ingest_flush_events=225,
        ) as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                backend = client.backend
                for lo in range(0, 200, 50):  # four batches stay staged
                    assert not backend.ingest(events[lo:lo + 50])["flushed"]
                assert rpc.wal.last_seq == 0  # staged != durable
                # The fifth crosses the watermark: ONE entry for all 250.
                report = backend.ingest(events[200:250])
                assert report["flushed"] and report["events"] == 250
                assert rpc.wal.last_seq == 1
                backend.ingest(events[250:300])
                backend.flush_ingest()
                assert rpc.wal.last_seq == 2
                _assert_same_columns(
                    rpc.release_server.db.to_columnar()
                    if hasattr(rpc.release_server.db, "to_columnar")
                    else rpc.release_server.db,
                    telemetry_database(300, CFG),
                )
        # ...and the whole stream replays from the two group commits.
        fresh = ReleaseServer(telemetry_database(0, CFG))
        with WriteAheadLog(tmp_path) as wal2:
            assert wal2.recover(fresh)["replayed"] == 2
        _assert_same_columns(
            fresh.db.to_columnar()
            if hasattr(fresh.db, "to_columnar")
            else fresh.db,
            telemetry_database(300, CFG),
        )

    def test_bounded_queue_refuses_overflow(self):
        events = list(telemetry_events(40, CFG))
        with self._serve(ingest_queue=10, ingest_flush_events=100) as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                backend = client.backend
                assert backend.ingest(events[:8])["accepted"]
                refused = backend.ingest(events[8:13])
                assert refused == {
                    "accepted": False, "pending": 8, "queue": 10,
                }
                assert backend.ingest_status()["pending_events"] == 8
                backend.flush_ingest()  # drain, then the batch fits
                assert backend.ingest(events[8:13])["accepted"]

    def test_remote_ingest_buffer_bit_identical_to_cold_load(self):
        """The client-side buffer riding the server-side group commit:
        the composed path still lands the exact cold-load state."""
        n = 500
        with self._serve(ingest_queue=4096, ingest_flush_events=128) as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                backend = client.backend

                class ServerIngest:
                    def append_records(self, records):
                        reply = backend.ingest(records)
                        assert reply["accepted"], "queue overflow"
                        return reply

                with IngestBuffer(
                    ServerIngest(), max_events=64, clock=FakeClock()
                ) as buffer:
                    buffer.extend(telemetry_events(n, CFG))
                backend.flush_ingest()
                live = rpc.release_server.db
                _assert_same_columns(
                    live.to_columnar()
                    if hasattr(live, "to_columnar")
                    else live,
                    telemetry_database(n, CFG),
                )


# ----------------------------------------------------------------------
# Faults lane: SIGKILL of a replica mid-stream loses no acked events
# ----------------------------------------------------------------------


@needs_sockets
@pytest.mark.faults
class TestStreamFaults:
    def test_sigkill_replica_mid_stream_keeps_every_acked_event(
        self, tmp_path
    ):
        """Acceptance: a replica dies (real SIGKILL) between preparing
        and committing a mid-stream group commit.  The flush is still
        acked through the surviving replica, streaming continues, and
        after restart + resync the victim serves every acked event —
        bit-identical to a mirror that applied exactly the acked
        batches."""
        n_base, seed = 400, 0
        procs = [
            EndpointProcess(
                n_base, seed, 0, 200, wal_dir=str(tmp_path / f"r{i}")
            )
            for i in range(2)
        ]
        endpoints = [
            ClusterEndpoint(p.host, p.port, shard_range="all", name=f"r{i}")
            for i, p in enumerate(procs)
        ]
        mirror = ReleaseServer(slice_db(n_base, seed, 0, 200).shard(2))
        binning_spec = IntegerBinning("age", 0, 100, 10).to_spec()
        events = [
            {"age": int(v % 100), "opt_in": bool(v % 2)} for v in range(200)
        ]
        acked_batches: list[list] = []
        try:
            with ClusterBackend(
                endpoints,
                retry=RetryPolicy(max_attempts=3, base_delay=0.02, jitter=0.0),
                timeout=10.0,
            ) as backend:
                victim_key = endpoints[0].key
                original = backend._commit_with_retries
                kill_at_flush = 3
                buffer = IngestBuffer(
                    backend,
                    max_events=25,
                    clock=FakeClock(),
                    on_flush=acked_batches.append,
                )

                def kill_then_commit(endpoint, write_id):
                    if (
                        endpoint.key == victim_key
                        and buffer.flushes + 1 == kill_at_flush
                        and procs[0].process.is_alive()
                    ):
                        procs[0].kill()  # dies holding the prepare
                    return original(endpoint, write_id)

                backend._commit_with_retries = kill_then_commit
                for event in events:
                    buffer.append(event)
                buffer.close()
                backend._commit_with_retries = original

                # Every flush was acked despite the mid-stream death.
                assert buffer.events_flushed == len(events)
                assert len(acked_batches) == 8
                assert list(backend.stale()) == [victim_key]
                for batch in acked_batches:
                    mirror.append_records(batch)
                assert np.array_equal(
                    np.asarray(backend.true_histogram(binning_spec)),
                    np.asarray(mirror.true_histogram(binning_spec)),
                )

                # The victim restarts on its old port: WAL replay plus
                # resync return it to the exact acked watermark.
                procs[0].restart()
                assert backend.resync() == {victim_key: True}
                assert backend.stale() == {}
                with RemoteBackend(
                    procs[0].host, procs[0].port, timeout=10.0
                ) as direct:
                    assert direct.wal_status()["last_seq"] == len(
                        acked_batches
                    )
                    assert np.array_equal(
                        np.asarray(direct.true_histogram(binning_spec)),
                        np.asarray(mirror.true_histogram(binning_spec)),
                    )
                # ...and the revived replica takes new group commits.
                buffer.extend(
                    {"age": 50, "opt_in": True} for _ in range(25)
                )
                mirror.append_records(
                    [{"age": 50, "opt_in": True} for _ in range(25)]
                )
                assert np.array_equal(
                    np.asarray(backend.true_histogram(binning_spec)),
                    np.asarray(mirror.true_histogram(binning_spec)),
                )
        finally:
            for proc in procs:
                proc.close()
