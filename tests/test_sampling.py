"""Tests for the MSampling / HiLoSampling policy simulators (§6.1.2)."""

import numpy as np
import pytest

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import (
    PolicySample,
    hilo_sampling,
    m_sampling,
    shape_distance,
)


@pytest.fixture
def histogram(rng):
    x = np.zeros(512, dtype=np.int64)
    support = rng.choice(512, size=128, replace=False)
    x[support] = rng.poisson(80, size=128)
    return x


class TestPolicySample:
    def test_sub_histogram_enforced(self):
        with pytest.raises(ValueError):
            PolicySample(
                x=np.array([1, 2]),
                x_ns=np.array([2, 2]),
                policy_name="bad",
                rho_x=0.5,
            )

    def test_achieved_ratio(self):
        sample = PolicySample(
            x=np.array([10, 10]),
            x_ns=np.array([5, 5]),
            policy_name="close",
            rho_x=0.5,
        )
        assert sample.achieved_ratio == pytest.approx(0.5)


class TestMSampling:
    def test_ratio_near_target(self, histogram, rng):
        for rho in (0.9, 0.5, 0.1):
            sample = m_sampling(histogram, rho, rng)
            assert sample.achieved_ratio == pytest.approx(rho, abs=0.05)

    def test_sub_histogram(self, histogram, rng):
        sample = m_sampling(histogram, 0.5, rng)
        assert np.all(sample.x_ns <= histogram)

    def test_shape_preserved(self, histogram, rng):
        """Close policy: normalized shapes are close (the paper's theta)."""
        sample = m_sampling(histogram, 0.5, rng, theta=0.1)
        assert shape_distance(histogram, sample.x_ns) < 0.15

    def test_policy_name(self, histogram, rng):
        assert m_sampling(histogram, 0.5, rng).policy_name == "close"

    def test_invalid_rho(self, histogram, rng):
        with pytest.raises(ValueError):
            m_sampling(histogram, 0.0, rng)

    def test_rho_one_keeps_everything(self, histogram, rng):
        sample = m_sampling(histogram, 1.0, rng)
        assert np.array_equal(sample.x_ns, histogram)


class TestHiLoSampling:
    def test_ratio_near_target(self, histogram, rng):
        for rho in (0.9, 0.5, 0.1):
            sample = hilo_sampling(histogram, rho, rng)
            assert sample.achieved_ratio == pytest.approx(rho, abs=0.05)

    def test_sub_histogram(self, histogram, rng):
        sample = hilo_sampling(histogram, 0.5, rng)
        assert np.all(sample.x_ns <= histogram)

    def test_far_policy_more_distorted_than_close(self, rng):
        """The defining property: HiLo's shape diverges from x much more
        than MSampling's (Close vs Far)."""
        x = generate_dpbench("searchlogs", seed=0)
        close = m_sampling(x, 0.25, rng)
        distances_far = []
        for seed in range(5):
            far = hilo_sampling(x, 0.25, np.random.default_rng(seed))
            distances_far.append(shape_distance(x, far.x_ns))
        assert np.mean(distances_far) > 2 * shape_distance(x, close.x_ns)

    def test_gamma_validation(self, histogram, rng):
        with pytest.raises(ValueError):
            hilo_sampling(histogram, 0.5, rng, gamma=1.0)

    def test_empty_histogram_rejected(self, rng):
        with pytest.raises(ValueError):
            hilo_sampling(np.zeros(8, dtype=np.int64), 0.5, rng)

    def test_policy_name(self, histogram, rng):
        assert hilo_sampling(histogram, 0.5, rng).policy_name == "far"


class TestShapeDistance:
    def test_identical_is_zero(self, histogram):
        assert shape_distance(histogram, histogram) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        a = np.array([10, 0], dtype=np.int64)
        b = np.array([0, 10], dtype=np.int64)
        assert shape_distance(a, b) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shape_distance(np.zeros(3), np.ones(3))
