"""Shared-memory column store: lifecycle, leak-freedom, bit-identity.

Three contracts under test:

* **Lifecycle** — explicit ``close()``/``unlink()`` semantics (owner
  unlinks, attachers only drop views, both idempotent), GC finalizers
  as the safety net, and *no leaked ``/dev/shm`` segments* after pool
  shutdown, worker death mid-run, or append-driven segment remaps
  (``tests/conftest.py`` additionally sweeps at suite exit).
* **Wire discipline** — pool startup ships ~100-byte descriptors:
  startup bytes are independent of the record count (the acceptance
  bar; the pickled-columns comparison lives in ``tests/test_workers.py``).
* **Bit-identity** — a hypothesis sweep over the policy algebra pins
  shm-backed databases (place → attach round trips, pools, the release
  server) to their heap twins bit for bit.

Every test carries the ``shm`` marker and the module skips with a
reason where POSIX shared memory is unavailable; the /dev/shm
enumeration parts additionally skip on platforms that support shared
memory but do not expose it as a filesystem.
"""

from __future__ import annotations

import gc
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    IntersectionPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.core.policy_language import compile_policy
from repro.data.columnar import ColumnarDatabase, RaggedColumn
from repro.data.store import (
    SEGMENT_PREFIX,
    ColumnStore,
    placeable,
    shm_available,
)
from repro.data.tippers import Trajectory, trajectory_columns
from repro.data.workers import ShardWorkerPool
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    histogram_input_for,
)
from repro.service import ReleaseRequest, ReleaseServer

pytestmark = [
    pytest.mark.shm,
    pytest.mark.skipif(
        not shm_available(),
        reason="multiprocessing.shared_memory unavailable on this platform",
    ),
]

CITIES = ("amber", "blue", "coral", "dune")
MAX_EXAMPLES = 25


def _segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        pytest.skip("/dev/shm not enumerable on this platform")
    return {
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


@pytest.fixture()
def leak_guard():
    """Assert the test released every segment it created."""
    before = _segments()
    yield
    gc.collect()
    leaked = _segments() - before
    assert not leaked, f"leaked segments: {sorted(leaked)}"


def _db(n: int = 900, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "city": rng.choice(list("abcd"), n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _policy():
    return MinimumRelaxationPolicy(
        [
            SensitiveValuePolicy("city", {"a", "c"}),
            OptInPolicy(),
            compile_policy({"attr": "age", "op": "<=", "value": 17}),
        ]
    )


BINNING = IntegerBinning("age", 0, 100, 10)


def _assert_same_columns(a: ColumnarDatabase, b: ColumnarDatabase) -> None:
    assert a.column_names == b.column_names
    for name in a.column_names:
        ca, cb = a[name], b[name]
        if isinstance(ca, RaggedColumn):
            assert np.array_equal(ca.flat, cb.flat), name
            assert np.array_equal(ca.offsets, cb.offsets), name
            assert ca.flat.dtype == cb.flat.dtype, name
        else:
            assert np.array_equal(np.asarray(ca), np.asarray(cb)), name
            assert np.asarray(ca).dtype == np.asarray(cb).dtype, name


class TestColumnStore:
    def test_place_attach_round_trip(self, leak_guard):
        db = _db()
        store = ColumnStore.place(db)
        try:
            _assert_same_columns(db, store.database)
            attached = ColumnStore.attach(store.descriptor())
            try:
                _assert_same_columns(db, attached.database)
                assert attached.database.store is attached
                assert not attached.owner and store.owner
            finally:
                attached.close()
        finally:
            store.unlink()

    def test_descriptor_is_small_plain_data(self, leak_guard):
        import json
        import pickle

        store = ColumnStore.place(_db(100_000))
        try:
            descriptor = store.descriptor()
            # ~100 bytes per flat array, independent of the row count
            assert len(json.dumps(descriptor)) < 200 * len(
                store.segment_names
            )
            assert json.loads(json.dumps(descriptor)) == descriptor
            assert pickle.loads(pickle.dumps(descriptor)) == descriptor
        finally:
            store.unlink()

    def test_ragged_and_empty_columns(self, leak_guard):
        trajs = [
            Trajectory(
                user_id=i,
                day=0,
                slots=tuple((j, (i + j) % 7) for j in range(1 + i % 4)),
            )
            for i in range(17)
        ]
        ragged = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
        empty = ragged.slice_records(0, 0)
        for db in (ragged, empty):
            store = ColumnStore.place(db)
            try:
                attached = ColumnStore.attach(store.descriptor())
                try:
                    _assert_same_columns(db, attached.database)
                    assert len(attached.database) == len(db)
                finally:
                    attached.close()
            finally:
                store.unlink()

    def test_views_are_read_only(self, leak_guard):
        store = ColumnStore.place(_db(50))
        try:
            arr = np.asarray(store.database["age"])
            with pytest.raises(ValueError):
                arr[0] = 1
        finally:
            store.unlink()

    def test_close_and_unlink_idempotent(self, leak_guard):
        store = ColumnStore.place(_db(40))
        attached = ColumnStore.attach(store.descriptor())
        attached.close()
        attached.close()
        # an attacher's close never removes the segments
        reattached = ColumnStore.attach(store.descriptor())
        reattached.close()
        store.unlink()
        store.unlink()
        store.close()

    def test_gc_finalizer_unlinks_owned_segments(self, leak_guard):
        before = _segments()
        db = _db(60).share()
        created = _segments() - before
        assert created, "share() should have created segments"
        del db
        gc.collect()
        assert not (_segments() & created)

    def test_object_columns_are_rejected(self, leak_guard):
        db = ColumnarDatabase.from_records(
            [{"v": 5, "opt_in": True}, {"v": "NA", "opt_in": False}]
        )
        assert not placeable(db)
        with pytest.raises(TypeError, match="object-dtype"):
            ColumnStore.place(db)
        assert placeable(_db(10))

    def test_share_is_idempotent_and_pickles_heap_backed(self, leak_guard):
        import pickle

        shared = _db(30).share()
        assert shared.share() is shared
        clone = pickle.loads(pickle.dumps(shared))
        assert clone.store is None  # handles never cross a pickle
        _assert_same_columns(shared, clone)
        shared.store.unlink()


class TestPoolLifecycle:
    def test_no_leaked_segments_after_pool_close(self, leak_guard):
        sharded = _db(2_000).shard(3)
        with ShardWorkerPool(sharded.shards) as pool:
            assert pool.stats.shm_shards == 3
            sharded.with_executor(pool).mask(_policy())

    def test_no_leaked_segments_after_worker_death(self, leak_guard):
        sharded = _db(1_500).shard(3)
        policy = _policy()
        reference = sharded.mask(policy)
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            assert np.array_equal(pooled.mask(policy), reference)
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            pool._procs[1].join()
            # respawn re-attaches by descriptor — bit-identical, and no
            # segment is duplicated or dropped along the way
            assert np.array_equal(pooled.mask(policy), reference)
            assert pool.stats.respawns == 1

    def test_append_remaps_and_unlinks_old_segments(self, leak_guard):
        db = _db(800, seed=3)
        sharded = db.shard(2)
        before = _segments()
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            pooled.mask(_policy())
            created = _segments() - before
            extra = _db(64, seed=9)
            pooled.append_records(extra)
            after_append = _segments() - before
            # the tail shard's segments were replaced, not accumulated
            assert len(after_append) == len(created)
            assert after_append != created
            pooled.expire_prefix(100)
            # expires are view trims: no segment churn at all
            assert (_segments() - before) == after_append
            reference = ColumnarDatabase.concat([db, extra]).slice_records(
                100, len(db) + len(extra)
            )
            assert np.array_equal(
                pooled.mask(_policy()), reference.mask(_policy())
            )

    def test_headroom_appends_create_zero_new_segments(self, leak_guard):
        """The streaming-tier regression: placing with capacity headroom
        makes N successive appends pure in-place extensions — no new
        ``/dev/shm`` segment per append (the old behaviour remapped and
        re-placed every column on every append) and nothing left behind
        after close."""
        db = _db(600, seed=11)
        before = _segments()
        store = ColumnStore.place(db, headroom=1.0)
        created = _segments() - before
        assert created
        try:
            chunks = [_db(40, seed=100 + i) for i in range(5)]
            current = store.database
            for chunk in chunks:
                extended = store.try_append(chunk)
                assert extended is not None  # fits inside the headroom
                current = extended
                # zero new segments across all N in-place appends
                assert (_segments() - before) == created
            reference = ColumnarDatabase.concat([db, *chunks])
            _assert_same_columns(current, reference)
            # A fresh attach reads the advanced length header and sees
            # every appended record, bit for bit.
            attached = ColumnStore.attach(store.descriptor())
            try:
                _assert_same_columns(attached.database, reference)
            finally:
                attached.close()
        finally:
            store.unlink()
        assert not (_segments() - before)  # leak-free after close

    def test_pool_appends_after_first_remap_are_in_place(self, leak_guard):
        """Through the worker pool: the first append remaps the tail
        shard into a headroom segment, and every append after that is
        in-place — zero segment churn, bit-identical masks."""
        db = _db(800, seed=13)
        sharded = db.shard(2)
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            extras = [_db(32, seed=50 + i) for i in range(6)]
            pooled.append_records(extras[0])  # remap into headroom
            after_remap = _segments()
            for extra in extras[1:]:
                pooled.append_records(extra)
            assert _segments() == after_remap  # N appends, zero churn
            assert pool.stats.in_place_appends == len(extras) - 1
            reference = ColumnarDatabase.concat([db, *extras])
            assert np.array_equal(
                pooled.mask(_policy()), reference.mask(_policy())
            )

    def test_respawn_after_expire_reapplies_the_trim(self, leak_guard):
        db = _db(900, seed=5)
        sharded = db.shard(3)
        policy = _policy()
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            pooled.expire_prefix(400)  # swallows shard 0, trims shard 1
            reference = db.slice_records(400, 900).mask(policy)
            assert np.array_equal(pooled.mask(policy), reference)
            for index in (0, 1):
                os.kill(pool._procs[index].pid, signal.SIGKILL)
                pool._procs[index].join()
            # the respawned workers attach the untouched segments and
            # re-apply the recorded prefix trim
            assert np.array_equal(pooled.mask(policy), reference)
            assert pool.stats.respawns == 2

    def test_shm_true_rejects_object_columns(self, leak_guard):
        db = ColumnarDatabase.from_records(
            [{"v": 5, "opt_in": True}, {"v": "NA", "opt_in": False}]
        )
        with pytest.raises(TypeError, match="object-dtype"):
            ShardWorkerPool(db.shard(2).shards, shm=True)
        # auto mode falls back to the pickle shipment instead
        with ShardWorkerPool(db.shard(2).shards) as pool:
            assert pool.stats.shm_shards == 0

    def test_sharded_backend_serves_from_one_physical_copy(self, leak_guard):
        """The backend shares the db *before* building the pool: the
        parent engine reads the same segments the workers attach —
        never heap originals next to pool-placed copies — and close()
        unlinks them."""
        from repro.api.backends import ShardedBackend

        backend = ShardedBackend(_db(2_000), n_shards=2, workers=True)
        try:
            assert backend.store_mode == "shm"
            assert backend.pool.stats.shm_shards == 2
            for shard in backend.server.db.shards:
                assert shard.store is not None
            # the pool attached the backend's stores in place; it owns
            # (and would duplicate) nothing
            assert not any(backend.pool._owned)
        finally:
            backend.close()

    def test_shared_database_feeds_cohosted_pools_one_copy(self, leak_guard):
        shared = _db(1_200).shard(2).share()
        policy = _policy()
        reference = shared.mask(policy)
        before = _segments()
        pool_a = ShardWorkerPool(shared.shards)
        pool_b = ShardWorkerPool(shared.shards)
        try:
            # neither pool placed anything: both attach the user's copy
            assert _segments() == before
            assert np.array_equal(
                shared.with_executor(pool_a).mask(policy), reference
            )
            assert np.array_equal(
                shared.with_executor(pool_b).mask(policy), reference
            )
        finally:
            pool_a.close()
            pool_b.close()
        # the pools left the user's segments alone
        assert _segments() == before
        for shard in shared.shards:
            shard.store.unlink()


class TestBitIdentity:
    def test_server_responses_bit_identical_shm_vs_heap(self, leak_guard):
        db = _db(1_100, seed=7)
        policy = _policy()
        request = ReleaseRequest(
            "osdp_laplace_l1", 0.5, BINNING, policy, n_trials=3, seed=11
        )
        heap = ReleaseServer(db.shard(3)).handle(request)
        sharded = db.shard(3)
        with ShardWorkerPool(sharded.shards) as pool:
            assert pool.stats.shm_shards == 3
            shm_response = ReleaseServer(
                sharded.with_executor(pool), executor=pool
            ).handle(request)
        assert np.array_equal(shm_response.estimates, heap.estimates)
        assert shm_response.estimates.dtype == heap.estimates.dtype

    def test_histogram_input_bit_identical_on_shm_pool(self, leak_guard):
        db = _db(700, seed=2)
        sharded = db.shard(2)
        query = HistogramQuery(BINNING)
        reference = histogram_input_for(db, query, _policy())
        with ShardWorkerPool(sharded.shards) as pool:
            live = histogram_input_for(
                sharded.with_executor(pool), query, _policy()
            )
        assert np.array_equal(live.x, reference.x)
        assert np.array_equal(live.x_ns, reference.x_ns)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=48),
        policy=st.recursive(
            st.one_of(
                st.integers(0, 99).map(
                    lambda t: AttributePolicy(
                        "age", lambda v, t=t: v <= t, name=f"age<={t}"
                    )
                ),
                st.sets(st.sampled_from(CITIES), max_size=len(CITIES)).map(
                    lambda vs: SensitiveValuePolicy("city", vs)
                ),
                st.just(OptInPolicy()),
                st.just(AllSensitivePolicy()),
                st.just(AllNonSensitivePolicy()),
            ),
            lambda children: st.one_of(
                st.lists(children, min_size=1, max_size=3).map(
                    MinimumRelaxationPolicy
                ),
                st.lists(children, min_size=1, max_size=3).map(
                    IntersectionPolicy
                ),
            ),
            max_leaves=6,
        ),
        width=st.sampled_from((1, 5, 10)),
        seed=st.integers(0, 2**16),
    )
    def test_shm_database_bit_identical_across_policy_algebra(
        self, n, policy, width, seed
    ):
        """place → attach preserves every mask, index and histogram the
        engine can compute, over random databases and random algebra
        policies (opaque predicate leaves included — attach is
        in-process, no spec round trip involved)."""
        rng = np.random.default_rng(seed)
        db = ColumnarDatabase(
            {
                "age": rng.integers(0, 100, n),
                "city": rng.choice(CITIES, n),
                "opt_in": rng.integers(0, 2, n).astype(bool),
            }
        )
        query = HistogramQuery(IntegerBinning("age", 0, 100, width))
        store = ColumnStore.place(db)
        try:
            attached = ColumnStore.attach(store.descriptor())
            try:
                for twin in (store.database, attached.database):
                    assert np.array_equal(
                        policy.evaluate_batch(twin), policy.evaluate_batch(db)
                    )
                    assert np.array_equal(
                        query.binning.bin_indices(twin),
                        query.binning.bin_indices(db),
                    )
                    mine = HistogramInput.from_columnar(twin, query, policy)
                    reference = HistogramInput.from_columnar(
                        db, query, policy
                    )
                    assert np.array_equal(mine.x, reference.x)
                    assert np.array_equal(mine.x_ns, reference.x_ns)
            finally:
                attached.close()
        finally:
            store.unlink()
