"""The kernel tier: backend registry, fused counts, compiled parity.

Three lanes:

* **Registry** — import-time selection honors ``REPRO_KERNEL``
  (subprocess checks so the env var is seen at import), explicit
  selection is strict, ``use_backend`` restores.
* **Fused bit-identity** (hypothesis) — the fused ``(x, x_ns)`` paths
  (``hist_pair``, ``int_bin_pair``, ``HistogramInput.from_columnar``)
  are byte-identical to the classic two-bincount construction and to
  the per-record paper-semantics reference, across the policy algebra,
  integer/categorical/ragged-final-bin binnings, and sparse/dense/
  sharded layouts.
* **Compiled parity** (``-m compiled``-tagged, skips with a reason when
  numba is absent) — the numba backend's integer kernels are
  byte-identical to numpy's, its samplers are seeded-deterministic, and
  their outputs pass the same chi-squared distribution checks the numpy
  lane pins.
"""

from __future__ import annotations

import os
import subprocess
import sys
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    IntersectionPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.data.columnar import ColumnarDatabase
from repro.mechanisms import batch_sampling, kernels
from repro.mechanisms.kernels import KernelBackendError
from repro.queries.histogram import (
    CategoricalBinning,
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    counts_from_mask,
)

MAX_EXAMPLES = 30
CITIES = ("amber", "blue", "coral", "dune")

requires_numba = pytest.mark.skipif(
    not kernels.numba_available(),
    reason=(
        "numba not importable in this environment; the compiled kernel "
        "lane needs the [compiled] extra (pip install 'repro-osdp[compiled]')"
    ),
)


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()

    def test_active_backend_is_available(self):
        assert kernels.active_backend() in kernels.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelBackendError, match="bogus"):
            kernels.select_backend("bogus")

    def test_numba_strict_when_missing(self):
        if kernels.numba_available():
            pytest.skip("numba installed; strict selection succeeds here")
        with pytest.raises(KernelBackendError, match="numba"):
            kernels.select_backend("numba")

    def test_use_backend_restores_previous(self):
        before = kernels.active_backend()
        with kernels.use_backend("numpy"):
            assert kernels.active_backend() == "numpy"
        assert kernels.active_backend() == before

    def _run(self, code: str, env_value: str | None) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env.pop("REPRO_KERNEL", None)
        if env_value is not None:
            env["REPRO_KERNEL"] = env_value
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
        )

    def test_env_forces_numpy_at_import(self):
        proc = self._run(
            "from repro.mechanisms import kernels; print(kernels.active_backend())",
            "numpy",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "numpy"

    def test_env_rejects_unknown_name_at_import(self):
        proc = self._run("import repro.mechanisms.kernels", "bogus")
        assert proc.returncode != 0
        assert "REPRO_KERNEL" in proc.stderr and "bogus" in proc.stderr

    def test_env_numba_is_strict_at_import(self):
        proc = self._run(
            "from repro.mechanisms import kernels; print(kernels.active_backend())",
            "numba",
        )
        if kernels.numba_available():
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == "numba"
        else:
            assert proc.returncode != 0
            assert "numba" in proc.stderr

    def test_auto_never_fails(self):
        proc = self._run(
            "from repro.mechanisms import kernels; print(kernels.active_backend())",
            "auto",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() in ("numpy", "numba")


# ----------------------------------------------------------------------
# Fused counts vs the two-bincount reference (hypothesis)
# ----------------------------------------------------------------------


@st.composite
def indexed_masks(draw):
    """(bin_indices, ns_mask, n_bins) with sparse and dense regimes."""
    n_bins = draw(st.integers(1, 40))
    n = draw(st.integers(0, 200))
    idx = draw(
        st.lists(st.integers(0, n_bins - 1), min_size=n, max_size=n)
    )
    mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return (
        np.asarray(idx, dtype=np.int64),
        np.asarray(mask, dtype=bool),
        n_bins,
    )


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(case=indexed_masks())
def test_hist_pair_matches_two_bincounts(case):
    idx, mask, n_bins = case
    x, x_ns = kernels.hist_pair(idx, mask, n_bins)
    x_ref = np.bincount(idx, minlength=n_bins)
    x_ns_ref = np.bincount(idx[mask], minlength=n_bins)
    assert x.dtype == np.int64 and x_ns.dtype == np.int64
    assert x.tobytes() == np.ascontiguousarray(x_ref, np.int64).tobytes()
    assert x_ns.tobytes() == np.ascontiguousarray(x_ns_ref, np.int64).tobytes()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    low=st.integers(-20, 20),
    span=st.integers(1, 60),
    width=st.integers(1, 9),
    n=st.integers(0, 150),
    data=st.data(),
)
def test_int_bin_pair_matches_unfused(low, span, width, n, data):
    """Fused binning+count == IntegerBinning.bin_indices + hist_pair.

    ``span % width != 0`` exercises the ragged final bin: values under
    ``high`` but past the last full bin edge must land in the final
    (short) bin, exactly as the unfused path puts them.
    """
    high = low + span
    binning = IntegerBinning("v", low, high, width)
    values = np.asarray(
        data.draw(st.lists(st.integers(low, high - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    mask = np.asarray(
        data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    x, x_ns = kernels.int_bin_pair(
        values, low, width, high, binning.n_bins, mask
    )
    idx = binning.bin_indices(ColumnarDatabase({"v": values}))
    x_ref, x_ns_ref = kernels.hist_pair(idx, mask, binning.n_bins)
    assert x.tobytes() == x_ref.tobytes()
    assert x_ns.tobytes() == x_ns_ref.tobytes()


def test_int_bin_pair_rejects_exactly_like_unfused():
    binning = IntegerBinning("v", 0, 10, 3)  # ragged final bin [9, 10)
    mask = np.ones(1, dtype=bool)
    for bad in (-1, 10, 11):
        with pytest.raises(ValueError, match=r"outside \[0, 10\)"):
            kernels.int_bin_pair(
                np.array([bad]), 0, 3, 10, binning.n_bins, mask
            )
        with pytest.raises(ValueError):
            binning.bin_indices(ColumnarDatabase({"v": np.array([bad])}))
    # 9 is valid (final short bin), and both paths agree on it.
    x, x_ns = kernels.int_bin_pair(np.array([9]), 0, 3, 10, binning.n_bins, mask)
    assert x[binning.n_bins - 1] == 1 and x_ns[binning.n_bins - 1] == 1


def test_hist_pair_rejects_out_of_range_indices():
    with pytest.raises(ValueError, match=r"outside \[0, 4\)"):
        kernels.hist_pair(np.array([0, 4]), np.zeros(2, bool), 4)
    with pytest.raises(ValueError, match=r"outside \[0, 4\)"):
        kernels.hist_pair(np.array([-1]), np.zeros(1, bool), 4)


def test_counts_from_mask_still_validates_lengths():
    with pytest.raises(ValueError):
        counts_from_mask(np.array([0, 1]), np.zeros(3, bool), 2)


# ----------------------------------------------------------------------
# The full fused path vs the per-record reference (policy algebra)
# ----------------------------------------------------------------------


@st.composite
def flat_records(draw):
    n = draw(st.integers(min_value=1, max_value=48))
    ages = draw(st.lists(st.integers(0, 99), min_size=n, max_size=n))
    cities = draw(st.lists(st.sampled_from(CITIES), min_size=n, max_size=n))
    opted = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return [
        {"age": a, "city": c, "opt_in": o}
        for a, c, o in zip(ages, cities, opted)
    ]


def flat_policies():
    leaves = st.one_of(
        st.integers(0, 99).map(
            lambda t: AttributePolicy(
                "age", lambda v, t=t: v <= t, name=f"age<={t}"
            )
        ),
        st.sets(st.sampled_from(CITIES), max_size=len(CITIES)).map(
            lambda vs: SensitiveValuePolicy("city", vs)
        ),
        st.just(OptInPolicy()),
        st.just(AllSensitivePolicy()),
        st.just(AllNonSensitivePolicy()),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                MinimumRelaxationPolicy
            ),
            st.lists(children, min_size=1, max_size=3).map(IntersectionPolicy),
        ),
        max_leaves=6,
    )


def binnings():
    return st.one_of(
        # width 7 leaves a ragged final bin over [0, 100); width 1 is
        # the dense/sparse extreme (100 bins over <= 48 records).
        st.sampled_from((1, 5, 7, 10)).map(
            lambda w: IntegerBinning("age", 0, 100, w)
        ),
        st.just(CategoricalBinning("city", CITIES)),
    )


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    records=flat_records(),
    policy=flat_policies(),
    binning=binnings(),
    k=st.integers(1, 9),
)
def test_fused_histogram_input_matches_per_record(records, policy, binning, k):
    """from_columnar (fused kernel path) == from_database (per-record)."""
    db = ColumnarDatabase.from_records(records)
    query = HistogramQuery(binning)
    ref = HistogramInput.from_database(db, query, policy)
    fused = HistogramInput.from_columnar(db, query, policy)
    sharded = HistogramInput.from_columnar(db.shard(k), query, policy)
    for got in (fused, sharded):
        assert np.array_equal(got.x, ref.x)
        assert np.array_equal(got.x_ns, ref.x_ns)
        assert np.array_equal(got.sensitive_bin_mask, ref.sensitive_bin_mask)


def test_fused_counts_bails_to_none_off_the_fast_path():
    ints = np.arange(6)
    db_float = ColumnarDatabase({"v": ints.astype(np.float64)})
    db_int = ColumnarDatabase({"v": ints})
    mask = np.ones(6, dtype=bool)
    binning = IntegerBinning("v", 0, 6, 2)
    # Float column: not the integer fast path.
    assert db_float.fused_counts(binning, mask) is None
    # Categorical binning: no closed-form bin arithmetic to fuse.
    cat = CategoricalBinning("v", tuple(range(6)))
    assert db_int.fused_counts(cat, mask) is None

    # A subclass overriding bin_indices must not be silently bypassed.
    class Shifted(IntegerBinning):
        def bin_indices(self, columns):
            return super().bin_indices(columns)

    assert db_int.fused_counts(Shifted("v", 0, 6, 2), mask) is None
    # The plain binning on the plain column does fuse.
    assert db_int.fused_counts(binning, mask) is not None


def test_fused_counts_rejects_mask_length_mismatch():
    db = ColumnarDatabase({"v": np.arange(4)})
    with pytest.raises(ValueError, match="mask"):
        db.fused_counts(IntegerBinning("v", 0, 4, 1), np.ones(3, dtype=bool))


# ----------------------------------------------------------------------
# Compiled lane: numba parity and distribution checks
# ----------------------------------------------------------------------


def _exact_pmf(n: int, p: float) -> np.ndarray:
    return np.array(
        [comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(n + 1)]
    )


def _chi2_ok(obs: np.ndarray, expected: np.ndarray) -> None:
    keep = expected > 5
    chi2 = float(((obs[keep] - expected[keep]) ** 2 / expected[keep]).sum())
    dof = int(keep.sum()) - 1
    assert dof >= 1
    assert chi2 < dof + 6 * np.sqrt(2 * dof), (chi2, dof)


@pytest.mark.compiled
@requires_numba
class TestCompiledParity:
    """numba backend vs numpy backend, on the same inputs."""

    def test_integer_kernels_byte_identical(self):
        rng = np.random.default_rng(11)
        idx = rng.integers(0, 31, size=4001)
        mask = rng.random(idx.shape) < 0.3
        with kernels.use_backend("numpy"):
            ref = kernels.hist_pair(idx, mask, 31)
        with kernels.use_backend("numba"):
            got = kernels.hist_pair(idx, mask, 31)
        assert ref[0].tobytes() == got[0].tobytes()
        assert ref[1].tobytes() == got[1].tobytes()

        values = rng.integers(-5, 17, size=3777)
        with kernels.use_backend("numpy"):
            ref = kernels.int_bin_pair(values, -5, 4, 17, 6, mask[: len(values)])
        with kernels.use_backend("numba"):
            got = kernels.int_bin_pair(values, -5, 4, 17, 6, mask[: len(values)])
        assert ref[0].tobytes() == got[0].tobytes()
        assert ref[1].tobytes() == got[1].tobytes()

    def test_binomial_rows_byte_identical(self):
        counts = np.random.default_rng(5).integers(1, 200, size=64)
        with kernels.use_backend("numpy"):
            ref = batch_sampling.binomial_inverse_cdf_rows(
                np.random.default_rng(42), counts, 0.37, 50
            )
        with kernels.use_backend("numba"):
            got = batch_sampling.binomial_inverse_cdf_rows(
                np.random.default_rng(42), counts, 0.37, 50
            )
        assert ref.tobytes() == got.tobytes()

    def test_samplers_seed_deterministic_per_backend(self):
        base = np.linspace(-3.0, 3.0, 32)
        with kernels.use_backend("numba"):
            a = batch_sampling.laplace_rows(
                np.random.default_rng(9), 2.0, base, 40
            ).copy()
            b = batch_sampling.laplace_rows(
                np.random.default_rng(9), 2.0, base, 40
            ).copy()
            c = batch_sampling.one_sided_rows(
                np.random.default_rng(9), 2.0, base, 40
            ).copy()
            d = batch_sampling.one_sided_rows(
                np.random.default_rng(9), 2.0, base, 40
            ).copy()
        assert a.tobytes() == b.tobytes()
        assert c.tobytes() == d.tobytes()

    def test_compiled_laplace_chi_squared(self):
        scale = 1.7
        with kernels.use_backend("numba"):
            draws = batch_sampling.laplace_rows(
                np.random.default_rng(23), scale, np.zeros(500), 400
            ).ravel()
        edges = np.linspace(-6 * scale, 6 * scale, 25)
        obs = np.histogram(draws, bins=edges)[0]
        cdf = np.where(
            edges < 0,
            0.5 * np.exp(edges / scale),
            1 - 0.5 * np.exp(-edges / scale),
        )
        expected = np.diff(cdf) * draws.size
        _chi2_ok(obs, expected)

    def test_compiled_one_sided_chi_squared(self):
        scale = 2.3
        with kernels.use_backend("numba"):
            draws = batch_sampling.one_sided_rows(
                np.random.default_rng(29), scale, np.zeros(500), 400
            ).ravel()
        assert (draws <= 0).all()  # strictly one-sided
        edges = -np.linspace(0, 8 * scale, 25)[::-1]
        obs = np.histogram(draws, bins=edges)[0]
        cdf = np.exp(edges / scale)  # P(X <= t) = e^{t/scale}, t <= 0
        expected = np.diff(cdf) * draws.size
        _chi2_ok(obs, expected)

    def test_compiled_binomial_chi_squared(self):
        n, p = 12, 0.632
        with kernels.use_backend("numba"):
            draws = batch_sampling.binomial_inverse_cdf_rows(
                np.random.default_rng(7), np.full(500, n), p, 400
            ).ravel()
        obs = np.bincount(draws.astype(int), minlength=n + 1)
        _chi2_ok(obs, _exact_pmf(n, p) * draws.size)
