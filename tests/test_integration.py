"""Integration tests: full pipelines crossing module boundaries."""

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import OptInPolicy
from repro.core.policy_language import compile_policy
from repro.data.database import Database
from repro.data.dpbench import generate_dpbench
from repro.data.sampling import m_sampling
from repro.data.tippers import TippersConfig, generate_tippers
from repro.evaluation.metrics import mean_relative_error
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import HybridOsdpLaplace
from repro.mechanisms.osdp_rr import OsdpRR
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
)


class TestPolicySpecToReleasePipeline:
    """Declarative policy -> database views -> budget-audited releases."""

    def test_end_to_end(self, rng):
        spec = {
            "any": [
                {"attr": "age", "op": "<=", "value": 17},
                {"attr": "opt_in", "op": "==", "value": False},
            ]
        }
        policy = compile_policy(spec, name="gdpr")
        db = Database(
            {
                "age": int(rng.integers(12, 80)),
                "opt_in": bool(rng.random() < 0.8),
                "region": int(rng.integers(0, 8)),
            }
            for _ in range(3000)
        )
        accountant = PrivacyAccountant(total_epsilon=1.5)

        # Release a truthful sample.
        sample = OsdpRR(policy, epsilon=0.5).sample(
            db.records, rng, accountant=accountant
        )
        assert sample
        assert all(policy.is_non_sensitive(r) for r in sample)

        # Release a region histogram with the hybrid mechanism.
        query = HistogramQuery(IntegerBinning("region", 0, 8))
        hist = HistogramInput.from_database(db, query, policy)
        mech = HybridOsdpLaplace(epsilon=1.0, policy=policy)
        estimate = mech.release(hist, rng)
        mech.charge(accountant, label="region histogram")

        assert estimate.shape == (8,)
        assert accountant.remaining == pytest.approx(0.0, abs=1e-9)
        composed = accountant.composed_guarantee()
        assert composed.epsilon == pytest.approx(1.5)

    def test_budget_enforced_across_pipeline(self, rng):
        policy = OptInPolicy()
        db = Database({"opt_in": True, "region": 0} for _ in range(100))
        accountant = PrivacyAccountant(total_epsilon=0.4)
        OsdpRR(policy, epsilon=0.3).sample(db.records, rng, accountant=accountant)
        from repro.core.accountant import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            OsdpRR(policy, epsilon=0.3).sample(
                db.records, rng, accountant=accountant
            )


class TestBenchmarkPipeline:
    """DPBench data -> policy simulation -> mechanism pool -> metrics."""

    def test_osdp_beats_dp_on_sparse_close_input(self, rng):
        x = generate_dpbench("adult", seed=2).astype(float)
        x_ns = m_sampling(x, 0.9, rng).x_ns.astype(float)
        hist = HistogramInput(x=x, x_ns=x_ns)

        from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram

        osdp_err = np.mean(
            [
                mean_relative_error(
                    x,
                    OsdpLaplaceL1Histogram(1.0, ns_ratio=0.9).release(hist, rng),
                )
                for _ in range(5)
            ]
        )
        dp_err = np.mean(
            [
                mean_relative_error(x, LaplaceHistogram(1.0).release(hist, rng))
                for _ in range(5)
            ]
        )
        assert osdp_err < dp_err / 10

    def test_dawaz_guarantee_and_accuracy_chain(self, rng):
        x = generate_dpbench("nettrace", seed=1).astype(float)
        x_ns = m_sampling(x, 0.75, rng).x_ns.astype(float)
        hist = HistogramInput(x=x, x_ns=x_ns)
        mech = DawaZ(epsilon=1.0, rho=0.1)
        estimate = mech.release(hist, rng)
        assert estimate.shape == x.shape
        assert np.all(estimate >= 0.0)
        assert mech.guarantee.epsilon == pytest.approx(1.0)


class TestTrajectoryPipeline:
    """TIPPERS generation -> policy -> trajectory release -> analysis."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_tippers(TippersConfig(n_users=150, n_days=25, seed=9))

    def test_release_then_classify(self, dataset, rng):
        from repro.classification.features import (
            TrajectoryFeaturizer,
            resident_labels,
        )
        from repro.classification.logistic import LogisticRegression
        from repro.classification.metrics import roc_auc

        policy = dataset.policy_for_fraction(90)
        sample = OsdpRR(policy, epsilon=1.0).sample(dataset.trajectories, rng)
        assert all(policy.is_non_sensitive(t) for t in sample)

        labels = dataset.heuristic_resident_labels()
        featurizer = TrajectoryFeaturizer(min_support=10)
        X_train = featurizer.fit_transform(sample)
        y_train = resident_labels(sample, labels)
        model = LogisticRegression(lam=1e-3).fit(X_train, y_train)

        X_all = featurizer.transform(dataset.trajectories)
        y_all = resident_labels(dataset.trajectories, labels)
        auc = roc_auc(y_all, model.decision_function(X_all))
        assert auc > 0.8  # truthful data carries nearly full signal

    def test_release_then_ngram_counts(self, dataset, rng):
        from repro.queries.ngram import NGramCounter, sparse_mre

        policy = dataset.policy_for_fraction(90)
        counter = NGramCounter(n=3, n_aps=dataset.config.n_aps)
        truth = counter.count(dataset.trajectories)
        sample = OsdpRR(policy, epsilon=1.0).sample(dataset.trajectories, rng)
        estimate = counter.count(sample)
        error = sparse_mre(truth, estimate.counts)
        assert 0.0 < error < 1.0
        # The sample's support is a subset of the truth's.
        assert estimate.support() <= truth.support()

    def test_event_histogram_release(self, dataset, rng):
        from repro.evaluation.experiments.fig4_5_tippers import (
            build_histogram_input,
        )

        policy = dataset.policy_for_fraction(75)
        hist = build_histogram_input(dataset, policy)
        estimate = HybridOsdpLaplace(1.0).release(hist, rng)
        error = mean_relative_error(hist.x, estimate)
        dp_error = mean_relative_error(
            hist.x, LaplaceHistogram(1.0).release(hist, rng)
        )
        assert error < dp_error
