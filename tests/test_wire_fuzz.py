"""Wire-frame robustness lane: corrupt bytes must fail loudly, fast.

Every malformed frame — truncated, oversized, corrupt header, lying
array descriptor — must raise ``EOFError`` (peer vanished) or
``WireError`` (stream is garbage) within the socket timeout.  What is
never acceptable: a hang, or a silent desync where the reader
misparses and keeps going.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    WireError,
    encode_message,
    recv_message,
)

pytestmark = pytest.mark.faults

_U32 = struct.Struct(">I")


@pytest.fixture
def pair():
    """A connected socketpair; the read side times out loudly."""
    reader, writer = socket.socketpair()
    reader.settimeout(5.0)
    try:
        yield reader, writer
    finally:
        for sock in (reader, writer):
            try:
                sock.close()
            except OSError:
                pass


def _feed_and_close(writer, payload: bytes):
    writer.sendall(payload)
    writer.close()


def _frame(header: dict, *array_payloads: bytes) -> bytes:
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([_U32.pack(len(blob)), blob, *array_payloads])


VALID = encode_message(
    {"op": "release", "estimates": np.arange(12, dtype=np.int64)}
)


class TestTruncation:
    @pytest.mark.parametrize(
        "cut",
        [1, 3, 4, 5, len(VALID) // 2, len(VALID) - 1],
        ids=lambda c: f"cut_at_{c}",
    )
    def test_truncated_frame_raises_eof_not_hang(self, pair, cut):
        reader, writer = pair
        _feed_and_close(writer, VALID[:cut])
        with pytest.raises(EOFError, match="mid-frame"):
            recv_message(reader)

    def test_empty_stream_raises_eof(self, pair):
        reader, writer = pair
        writer.close()
        with pytest.raises(EOFError):
            recv_message(reader)


class TestCorruptHeader:
    def test_non_json_header_bytes(self, pair):
        reader, writer = pair
        junk = b"\xff\xfe not json at all \x00"
        _feed_and_close(writer, _U32.pack(len(junk)) + junk)
        with pytest.raises(WireError, match="undecodable header"):
            recv_message(reader)

    def test_json_but_not_an_object(self, pair):
        reader, writer = pair
        blob = b"[1, 2, 3]"
        _feed_and_close(writer, _U32.pack(len(blob)) + blob)
        with pytest.raises(WireError, match="expected an object"):
            recv_message(reader)

    def test_wrong_wire_version(self, pair):
        reader, writer = pair
        _feed_and_close(
            writer, _frame({"v": WIRE_VERSION + 1, "arrays": [], "body": {}})
        )
        with pytest.raises(WireError, match="wire version"):
            recv_message(reader)

    def test_oversized_header_prefix_is_refused_before_allocation(
        self, pair
    ):
        reader, writer = pair
        _feed_and_close(writer, _U32.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(WireError, match="exceeds bound"):
            recv_message(reader)


class TestLyingArrayDescriptors:
    def _header(self, **descriptor):
        base = {"dtype": "<i8", "shape": [2], "nbytes": 16}
        base.update(descriptor)
        return {
            "v": WIRE_VERSION,
            "arrays": [base],
            "body": {"__array__": 0},
        }

    def test_oversized_array_nbytes(self, pair):
        reader, writer = pair
        _feed_and_close(
            writer, _frame(self._header(nbytes=MAX_FRAME_BYTES + 1))
        )
        with pytest.raises(WireError, match="exceeds bound"):
            recv_message(reader)

    def test_negative_array_nbytes(self, pair):
        reader, writer = pair
        _feed_and_close(writer, _frame(self._header(nbytes=-8)))
        with pytest.raises(WireError, match="exceeds bound"):
            recv_message(reader)

    def test_unknown_dtype(self, pair):
        reader, writer = pair
        _feed_and_close(
            writer, _frame(self._header(dtype="not-a-dtype"), b"\0" * 16)
        )
        with pytest.raises(WireError, match="malformed array descriptor"):
            recv_message(reader)

    def test_shape_that_contradicts_nbytes(self, pair):
        reader, writer = pair
        _feed_and_close(
            writer, _frame(self._header(shape=[999]), b"\0" * 16)
        )
        with pytest.raises(WireError, match="does not match its descriptor"):
            recv_message(reader)

    def test_missing_descriptor_fields(self, pair):
        reader, writer = pair
        header = {
            "v": WIRE_VERSION,
            "arrays": [{"dtype": "<i8"}],  # no shape, no nbytes
            "body": None,
        }
        _feed_and_close(writer, _frame(header))
        with pytest.raises(WireError, match="malformed array descriptor"):
            recv_message(reader)

    def test_arrays_field_of_the_wrong_type(self, pair):
        reader, writer = pair
        _feed_and_close(
            writer,
            _frame({"v": WIRE_VERSION, "arrays": {"a": 1}, "body": None}),
        )
        with pytest.raises(WireError, match="'arrays' is not a list"):
            recv_message(reader)

    def test_body_referencing_a_missing_array(self, pair):
        reader, writer = pair
        header = {"v": WIRE_VERSION, "arrays": [], "body": {"__array__": 3}}
        _feed_and_close(writer, _frame(header))
        with pytest.raises(WireError, match="malformed message body"):
            recv_message(reader)


class TestFuzzedMutations:
    """Hypothesis-driven bit flips and truncations of a valid frame.

    The contract under fuzz: the reader either returns a decoded
    message (the mutation hit a don't-care byte), or raises
    ``EOFError``/``WireError`` — never anything else, and never a
    hang (the 5s socket timeout converts one into TimeoutError, which
    would fail the test loudly).
    """

    @settings(max_examples=30, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=len(VALID) - 1),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_single_byte_corruption_never_hangs_or_escapes(
        self, position, flip
    ):
        corrupted = bytearray(VALID)
        corrupted[position] ^= flip
        reader, writer = socket.socketpair()
        reader.settimeout(5.0)
        try:
            thread = threading.Thread(
                target=_feed_and_close, args=(writer, bytes(corrupted))
            )
            thread.start()
            try:
                recv_message(reader)  # mutation may land in padding
            except (EOFError, WireError):
                pass  # the loud, expected failure modes
            thread.join(timeout=5.0)
        finally:
            for sock in (reader, writer):
                try:
                    sock.close()
                except OSError:
                    pass

    @settings(max_examples=20, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=len(VALID) - 1))
    def test_every_truncation_point_raises_eof(self, cut):
        reader, writer = socket.socketpair()
        reader.settimeout(5.0)
        try:
            _feed_and_close(writer, VALID[:cut])
            with pytest.raises(EOFError):
                recv_message(reader)
        finally:
            try:
                reader.close()
            except OSError:
                pass
