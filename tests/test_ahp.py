"""Tests for AHP-lite and its recipe instantiation AhpZ."""

import numpy as np
import pytest

from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.mechanisms.ahp import Ahp, AhpZ
from repro.queries.histogram import HistogramInput


class TestAhp:
    def test_guarantee(self):
        assert Ahp(0.8).guarantee == DPGuarantee(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ahp(1.0, split=0.0)
        with pytest.raises(ValueError):
            Ahp(1.0, cluster_width=0.0)

    def test_release_shape(self, small_hist, rng):
        out = Ahp(1.0).release(small_hist, rng)
        assert out.shape == small_hist.x.shape

    def test_clusters_partition_domain(self, rng):
        x = rng.poisson(10, size=128).astype(float)
        hist = HistogramInput(x=x, x_ns=np.zeros(128))
        result = Ahp(1.0).release_with_partition(hist, rng)
        indices = np.concatenate(result.clusters)
        assert sorted(indices.tolist()) == list(range(128))

    def test_similar_scattered_values_clustered_together(self, rng):
        """AHP's strength over DAWA: equal values at distant bins share
        a cluster."""
        x = np.zeros(64)
        x[[3, 40, 61]] = 1000.0
        hist = HistogramInput(x=x, x_ns=np.zeros(64))
        result = Ahp(5.0).release_with_partition(hist, rng)
        containing = [
            frozenset(c.tolist()) for c in result.clusters if 3 in c
        ]
        assert containing and {40, 61} <= set(containing[0])

    def test_accurate_at_high_epsilon(self, rng):
        x = np.zeros(64)
        x[[3, 40, 61]] = 1000.0
        hist = HistogramInput(x=x, x_ns=np.zeros(64))
        out = Ahp(100.0).release(hist, rng)
        assert np.abs(out - x).sum() < 0.05 * x.sum()

    def test_ignores_x_ns(self, rng):
        x = rng.poisson(5, size=32).astype(float)
        a = Ahp(1.0).release(
            HistogramInput(x=x, x_ns=np.zeros(32)), np.random.default_rng(1)
        )
        b = Ahp(1.0).release(
            HistogramInput(x=x, x_ns=x.copy()), np.random.default_rng(1)
        )
        assert np.array_equal(a, b)


class TestAhpZ:
    def test_guarantee_is_osdp(self):
        mech = AhpZ(1.0)
        assert isinstance(mech.guarantee, OSDPGuarantee)
        assert mech.guarantee.epsilon == pytest.approx(1.0)

    def test_budget_split(self):
        mech = AhpZ(1.0, rho=0.2)
        assert mech.epsilon_zero == pytest.approx(0.2)
        assert mech.dp_algorithm.epsilon == pytest.approx(0.8)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            AhpZ(1.0, rho=0.0)

    def test_zero_injection(self, rng):
        x = np.zeros(128)
        x[::8] = 500.0
        hist = HistogramInput(x=x, x_ns=x.copy())
        out = AhpZ(2.0).release(hist, rng)
        empty = x == 0
        assert np.mean(out[empty] == 0.0) > 0.9

    def test_beats_plain_ahp_on_sparse_confident_input(self, rng):
        x = np.zeros(512)
        x[::32] = 300.0
        hist = HistogramInput(x=x, x_ns=x.copy())
        eps = 0.2
        ahpz_err = np.mean(
            [np.abs(AhpZ(eps).release(hist, rng) - x).sum() for _ in range(8)]
        )
        ahp_err = np.mean(
            [np.abs(Ahp(eps).release(hist, rng) - x).sum() for _ in range(8)]
        )
        assert ahpz_err < ahp_err

    def test_release_shape(self, small_hist, rng):
        assert AhpZ(1.0).release(small_hist, rng).shape == small_hist.x.shape
