"""Shard-worker runtime: bit-identity, wire discipline, incremental updates.

Three contracts under test:

* **Equivalence** — every ``map_shards`` consumer (masks, bin indices,
  histograms, ``HistogramInput``, full releases through the server)
  returns bit-identical results whether the sharded database runs
  serially or on a :class:`repro.data.workers.ShardWorkerPool`.
* **Wire discipline** — after the one-time shard shipment, requests are
  specs: per-request bytes are small and *independent of the record
  count* (the instrumented transfer-size test), and the recognized
  callables never fall back to pickled closures.
* **Incremental updates** — appends/expires forwarded to the workers
  keep pool results bit-identical to a from-scratch rebuild on the
  updated data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import (
    AttributePolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.core.policy_language import compile_policy
from repro.data.columnar import ColumnarDatabase
from repro.data.sharding import ShardedColumnarDatabase
from repro.data.tippers import SensitiveAPPolicy, Trajectory, trajectory_columns
from repro.data.workers import ShardWorkerPool, WorkerError
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    Product2DBinning,
    CategoricalBinning,
    histogram_input_for,
)
from repro.service import ReleaseRequest, ReleaseServer


def _db(n: int = 1009, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "city": rng.choice(list("abcd"), n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _policy():
    return MinimumRelaxationPolicy(
        [
            SensitiveValuePolicy("city", {"a", "c"}),
            OptInPolicy(),
            compile_policy({"attr": "age", "op": "<=", "value": 17}),
        ]
    )


BINNING = IntegerBinning("age", 0, 100, 10)


def _long_trajectory_sensitive(record) -> bool:
    """Module-level (picklable) per-record predicate over Trajectory."""
    return record.duration_slots > 2


@pytest.fixture(scope="module")
def pooled():
    """One pool + serially-evaluated twin shared by the equivalence tests."""
    db = _db()
    sharded = db.shard(3)
    with ShardWorkerPool(sharded.shards) as pool:
        yield sharded, sharded.with_executor(pool), pool


class TestEquivalence:
    def test_masks_bit_identical(self, pooled):
        serial, on_pool, _ = pooled
        policy = _policy()
        a = serial.mask(policy)
        b = on_pool.mask(policy)
        assert np.array_equal(a, b)
        assert a.dtype == b.dtype

    def test_bin_indices_bit_identical(self, pooled):
        serial, on_pool, _ = pooled
        binning = Product2DBinning(BINNING, CategoricalBinning("city", "abcd"))
        assert np.array_equal(
            serial.bin_indices(binning), on_pool.bin_indices(binning)
        )

    def test_histogram_bit_identical(self, pooled):
        serial, on_pool, _ = pooled
        assert np.array_equal(
            serial.histogram(BINNING), on_pool.histogram(BINNING)
        )

    def test_histogram_input_bit_identical(self, pooled):
        serial, on_pool, _ = pooled
        query = HistogramQuery(BINNING)
        a = histogram_input_for(serial, query, _policy())
        b = histogram_input_for(on_pool, query, _policy())
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.x_ns, b.x_ns)
        assert np.array_equal(a.sensitive_bin_mask, b.sensitive_bin_mask)

    def test_ragged_trajectories_on_pool(self):
        trajs = [
            Trajectory(
                user_id=i, day=0, slots=tuple((j, (i + j) % 7) for j in range(1 + i % 4))
            )
            for i in range(41)
        ]
        db = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
        sharded = db.shard(2)
        policy = SensitiveAPPolicy({1, 5})
        reference = sharded.mask(policy)
        with ShardWorkerPool(sharded.shards) as pool:
            assert np.array_equal(
                sharded.with_executor(pool).mask(policy), reference
            )

    def test_record_carrying_shards_keep_the_pickle_path(self):
        """Auto shm must not drop row-record objects: a shard with
        attached records ships pickled (records intact), so per-record
        fallbacks — opaque policies through the generic call request —
        keep working exactly as before shm existed."""
        from repro.data.workers import shard_shm_eligible

        trajs = [
            Trajectory(
                user_id=i, day=0, slots=tuple((j, (i + j) % 5) for j in range(2))
            )
            for i in range(30)
        ]
        db = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
        sharded = db.shard(2)
        assert not shard_shm_eligible(sharded.shards[0], None)
        # a picklable per-record policy: no spec, no batch form — it
        # reaches the worker as a pickled callable and iterates the
        # shipped record objects (which an shm descriptor cannot carry)
        from repro.core.policy import LambdaPolicy

        opaque = LambdaPolicy(_long_trajectory_sensitive, name="per-record")
        reference = sharded.mask(opaque)
        with ShardWorkerPool(sharded.shards) as pool:
            assert pool.stats.shm_shards == 0
            assert np.array_equal(
                sharded.with_executor(pool).mask(opaque), reference
            )

    def test_generic_callable_fallback(self, pooled):
        serial, on_pool, pool = pooled
        before = pool.stats.pickled_callables
        assert on_pool.map_shards(len) == serial.map_shards(len)
        assert pool.stats.pickled_callables == before + on_pool.n_shards


class TestWireDiscipline:
    def test_request_bytes_independent_of_record_count(self):
        """Per-request wire traffic is specs only: the same request
        costs the same bytes on a 100x larger database.  On the default
        shared-memory path the one-time startup shipment is a segment
        descriptor, so it does not scale with the data either — O(1)
        bytes per worker, the PR-5 acceptance bar."""
        policy = _policy()
        sizes = {}
        for n in (300, 30_000):
            sharded = _db(n).shard(2)
            with ShardWorkerPool(sharded.shards) as pool:
                sharded.with_executor(pool).mask(policy)
                sizes[n] = pool.stats.as_dict()
        small, large = sizes[300], sizes[30_000]
        assert large["request_bytes"] == small["request_bytes"]
        if small["shm_shards"]:
            # zero-copy attach: descriptors only, whatever the size
            # (the few-byte wiggle is the shape integers' digit count)
            assert abs(large["startup_bytes"] - small["startup_bytes"]) < 100
            assert large["startup_bytes"] < 2_000
        # a mask request is a ~hundreds-of-bytes spec
        assert small["request_bytes"] < 2_000
        assert small["pickled_callables"] == 0

    def test_pickle_startup_scales_with_data_shm_startup_does_not(self):
        """The forced pickle path still ships the columns once (its
        startup scales with the table); the shm path ships descriptors
        regardless of scale — both serve bit-identical masks."""
        policy = _policy()
        stats = {}
        for n in (300, 30_000):
            sharded = _db(n).shard(2)
            reference = sharded.mask(policy)
            for shm in (False, None):
                with ShardWorkerPool(sharded.shards, shm=shm) as pool:
                    got = sharded.with_executor(pool).mask(policy)
                    assert np.array_equal(got, reference)
                    stats[(n, shm)] = pool.stats.as_dict()
        assert (
            stats[(30_000, False)]["startup_bytes"]
            > 50 * stats[(300, False)]["startup_bytes"]
        )
        assert stats[(30_000, False)]["shm_shards"] == 0
        if stats[(300, None)]["shm_shards"]:
            assert (
                abs(
                    stats[(30_000, None)]["startup_bytes"]
                    - stats[(300, None)]["startup_bytes"]
                )
                < 100
            )
            assert stats[(30_000, None)]["startup_bytes"] < 2_000

    def test_spec_requests_counted(self, pooled):
        _, on_pool, pool = pooled
        before = pool.stats.spec_requests
        on_pool.mask(OptInPolicy())
        assert pool.stats.spec_requests == before + on_pool.n_shards

    def test_opaque_policy_cannot_cross(self, pooled):
        _, on_pool, _ = pooled
        opaque = AttributePolicy("age", lambda v: v < 18)
        with pytest.raises(Exception):
            on_pool.mask(opaque)

    def test_foreign_shards_rejected(self, pooled):
        _, _, pool = pooled
        other = _db(97, seed=5).shard(3)
        with pytest.raises(WorkerError):
            pool.map_resident(other.shards, OptInPolicy().evaluate_batch)


class TestIncrementalUpdates:
    def _reference(self, db, extra, expire):
        full = ColumnarDatabase.concat([db, extra]) if extra is not None else db
        return full.slice_records(expire, len(full))

    def test_append_and_expire_match_scratch_rebuild(self):
        db = _db(751, seed=3)
        sharded = db.shard(3)
        policy = _policy()
        query = HistogramQuery(BINNING)
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            pooled.mask(policy)  # warm the worker caches
            extra = _db(48, seed=9)
            pooled.append_records(extra)
            pooled.expire_prefix(130)
            reference = self._reference(db, extra, 130)
            assert len(pooled) == len(reference)
            assert np.array_equal(
                pooled.mask(policy), policy.evaluate_batch(reference)
            )
            a = histogram_input_for(pooled, query, policy)
            b = histogram_input_for(reference.shard(1), query, policy)
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.x_ns, b.x_ns)

    def test_expire_whole_shard_keeps_worker_count(self):
        sharded = _db(60, seed=1).shard(3)
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            pooled.expire_prefix(25)  # swallows shard 0 and part of 1
            assert pooled.n_shards == 3
            assert pool.n_workers == 3
            assert len(pooled.shards[0]) == 0
            assert np.array_equal(
                pooled.mask(OptInPolicy()),
                pooled.to_columnar().mask(OptInPolicy()),
            )

    def test_updates_ship_only_the_delta(self):
        sharded = _db(20_000, seed=2).shard(2)
        with ShardWorkerPool(sharded.shards) as pool:
            pooled = sharded.with_executor(pool)
            before = pool.stats.request_bytes
            pooled.append_records(_db(10, seed=4))
            appended = pool.stats.request_bytes - before
            # ten records' columns, not ten thousand
            assert appended < 5_000


class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = ShardWorkerPool(_db(50).shard(2).shards)
        pool.close()
        pool.close()
        with pytest.raises(WorkerError):
            pool.map_resident([], OptInPolicy().evaluate_batch)

    def test_worker_error_reports_and_pool_survives(self, pooled):
        _, on_pool, _ = pooled
        bad = IntegerBinning("age", 0, 10)  # most ages out of range
        with pytest.raises(WorkerError, match="outside"):
            on_pool.bin_indices(bad)
        # the pool still answers afterwards
        assert len(on_pool.mask(OptInPolicy())) == len(on_pool)


class TestServerOnPool:
    def test_server_responses_bit_identical(self):
        db = _db(903, seed=7)
        policy = _policy()
        request = ReleaseRequest(
            "osdp_laplace_l1", 0.5, BINNING, policy, n_trials=3, seed=11
        )
        serial = ReleaseServer(db.shard(3)).handle(request)
        sharded = db.shard(3)
        with ShardWorkerPool(sharded.shards) as pool:
            server = ReleaseServer(sharded, executor=pool)
            response = server.handle(request)
            assert np.array_equal(response.estimates, serial.estimates)
            # histogram assembly went through spec requests, and the
            # parent never pulled per-record arrays
            assert pool.stats.pickled_callables == 0

    def test_server_spec_requests_and_updates(self):
        db = _db(640, seed=8)
        policy = _policy()
        sharded = db.shard(2)
        with ShardWorkerPool(sharded.shards) as pool:
            server = ReleaseServer(sharded, executor=pool)
            wire_request = ReleaseRequest(
                "osdp_rr",
                0.5,
                BINNING.to_spec(),
                policy.to_spec(),
                n_trials=2,
                seed=3,
            )
            first = server.handle(wire_request)
            extra = _db(31, seed=10)
            server.append_records(extra)
            server.expire_prefix(100)
            updated = server.handle(wire_request)
            reference_db = ColumnarDatabase.concat([db, extra]).slice_records(
                100, len(db) + 31
            )
            reference = ReleaseServer(reference_db.shard(2)).handle(
                ReleaseRequest(
                    "osdp_rr", 0.5, BINNING, policy, n_trials=2, seed=3
                )
            )
            assert np.array_equal(updated.estimates, reference.estimates)
            assert not np.array_equal(first.estimates, updated.estimates)


def _return_unpicklable(shard):
    """Module-level (picklable) callable whose *result* cannot pickle."""
    return lambda: shard


class TestReviewRegressions:
    def test_derived_selection_runs_serially_not_on_pool(self, pooled):
        """non_sensitive()/sensitive() shards are new objects the pool
        does not hold; the derived database must drop the pool."""
        serial, on_pool, _ = pooled
        policy = compile_policy({"attr": "age", "op": "<=", "value": 17})
        derived = on_pool.non_sensitive(policy)
        assert derived.executor is None
        reference = serial.non_sensitive(policy)
        assert len(derived) == len(reference)
        assert np.array_equal(
            derived.mask(OptInPolicy()), reference.mask(OptInPolicy())
        )

    def test_unpicklable_result_does_not_kill_worker(self, pooled):
        _, on_pool, _ = pooled
        with pytest.raises(WorkerError, match="unpicklable"):
            on_pool.map_shards(_return_unpicklable)
        # the workers survived and keep serving
        assert len(on_pool.mask(OptInPolicy())) == len(on_pool)

    def test_expire_commits_per_shard(self):
        """A hook failure must leave already-trimmed shards committed."""

        class FailsOnSecond:
            def __init__(self):
                self.calls = 0

            def expire_shard_prefix(self, index, n, new_shard):
                self.calls += 1
                if self.calls == 2:
                    raise WorkerError("worker died")

        db = _db(90, seed=0)
        sharded = ShardedColumnarDatabase.from_columnar(db, 3)
        sharded._executor = FailsOnSecond()
        with pytest.raises(WorkerError):
            sharded.expire_prefix(45)  # shard 0 (30) + half of shard 1
        # shard 0's trim was committed, shard 1's was not
        assert sharded.shard_versions == (1, 0, 0)
        assert len(sharded.shards[0]) == 0
        assert len(sharded) == 60


class TestCountsCacheAndFailover:
    """PR-4 satellites: worker-side (x, x_ns) caching and respawn."""

    def _fresh(self, n=900, n_shards=3):
        sharded = _db(n).shard(n_shards)
        pool = ShardWorkerPool(sharded.shards)
        return sharded.with_executor(pool), pool

    def test_hist_counts_cached_with_exact_miss_counts(self):
        on_pool, pool = self._fresh()
        with pool:
            query = HistogramQuery(BINNING)
            policy = OptInPolicy()
            first = histogram_input_for(on_pool, query, policy)
            for stats in pool.worker_cache_stats():
                assert stats["counts_misses"] == 1
                assert stats["counts_hits"] == 0
            # repeated histogram traffic is O(1) per worker: the pair
            # comes straight from the counts cache, no mask/index reuse
            second = histogram_input_for(on_pool, query, policy)
            for stats in pool.worker_cache_stats():
                assert stats["counts_misses"] == 1
                assert stats["counts_hits"] == 1
                assert stats["mask_misses"] == 1
                assert stats["index_misses"] == 1
            assert np.array_equal(first.x, second.x)
            assert np.array_equal(first.x_ns, second.x_ns)

    def test_counts_cache_advances_through_append_and_expire(self):
        on_pool, pool = self._fresh()
        with pool:
            query = HistogramQuery(BINNING)
            policy = OptInPolicy()
            histogram_input_for(on_pool, query, policy)
            rng = np.random.default_rng(77)
            on_pool.append_records(
                ColumnarDatabase(
                    {
                        "age": rng.integers(0, 100, 120),
                        "city": rng.choice(list("abcd"), 120),
                        "opt_in": rng.integers(0, 2, 120).astype(bool),
                    }
                )
            )
            on_pool.expire_prefix(150)
            updated = histogram_input_for(on_pool, query, policy)
            # appends/expires maintained the cached pairs incrementally:
            # zero extra misses, and the result matches a from-scratch
            # rebuild bit for bit
            for stats in pool.worker_cache_stats():
                assert stats["counts_misses"] == 1
            reference = histogram_input_for(
                on_pool.to_columnar(), query, policy
            )
            assert np.array_equal(updated.x, reference.x)
            assert np.array_equal(updated.x_ns, reference.x_ns)

    def test_distinct_specs_miss_separately(self):
        on_pool, pool = self._fresh()
        with pool:
            policy = OptInPolicy()
            histogram_input_for(on_pool, HistogramQuery(BINNING), policy)
            wide = IntegerBinning("age", 0, 100, 5)
            histogram_input_for(on_pool, HistogramQuery(wide), policy)
            for stats in pool.worker_cache_stats():
                assert stats["counts_misses"] == 2
                assert stats["mask_misses"] == 1  # policy mask reused

    def test_killed_worker_respawns_mid_request(self):
        import os
        import signal

        on_pool, pool = self._fresh(n=1200)
        with pool:
            policy = _policy()
            reference = on_pool.mask(policy)
            os.kill(pool._procs[2].pid, signal.SIGKILL)
            pool._procs[2].join()
            # the dead worker is respawned from the parent's resident
            # copy and the request answered bit-identically (cold
            # caches degrade it to a recompute, never a crash)
            again = on_pool.mask(policy)
            assert pool.stats.respawns == 1
            assert np.array_equal(again, reference)
            # subsequent updates and requests keep working on the
            # respawned worker
            rng = np.random.default_rng(5)
            on_pool.append_records(
                ColumnarDatabase(
                    {
                        "age": rng.integers(0, 100, 30),
                        "city": rng.choice(list("abcd"), 30),
                        "opt_in": rng.integers(0, 2, 30).astype(bool),
                    }
                )
            )
            assert len(on_pool.mask(policy)) == len(on_pool)

    def test_killed_worker_respawns_for_single_worker_ops(self):
        import os
        import signal

        on_pool, pool = self._fresh(n=600)
        with pool:
            os.kill(pool._procs[-1].pid, signal.SIGKILL)
            pool._procs[-1].join()
            rng = np.random.default_rng(9)
            on_pool.append_records(
                ColumnarDatabase(
                    {
                        "age": rng.integers(0, 100, 40),
                        "city": rng.choice(list("abcd"), 40),
                        "opt_in": rng.integers(0, 2, 40).astype(bool),
                    }
                )
            )
            assert pool.stats.respawns == 1
            reference = histogram_input_for(
                on_pool.to_columnar(), HistogramQuery(BINNING), OptInPolicy()
            )
            live = histogram_input_for(
                on_pool, HistogramQuery(BINNING), OptInPolicy()
            )
            assert np.array_equal(live.x, reference.x)
            assert np.array_equal(live.x_ns, reference.x_ns)

    def test_drain_preserves_worker_order(self):
        """The overlapped drain must reassemble results in shard order."""
        on_pool, pool = self._fresh(n=800, n_shards=4)
        with pool:
            serial = ShardedColumnarDatabase(on_pool.shards)
            for _ in range(3):
                assert np.array_equal(
                    on_pool.mask(_policy()), serial.mask(_policy())
                )
                assert np.array_equal(
                    on_pool.bin_indices(BINNING), serial.bin_indices(BINNING)
                )

    def test_worker_caches_are_lru_bounded(self):
        sharded = _db(400).shard(2)
        pool = ShardWorkerPool(sharded.shards, cache_limit=3)
        on_pool = sharded.with_executor(pool)
        with pool:
            policy = OptInPolicy()
            binnings = [
                IntegerBinning("age", 0, 100, w) for w in (4, 5, 10, 20, 25)
            ]
            for binning in binnings:
                live = histogram_input_for(
                    on_pool, HistogramQuery(binning), policy
                )
                reference = histogram_input_for(
                    on_pool.to_columnar(), HistogramQuery(binning), policy
                )
                assert np.array_equal(live.x, reference.x)
                assert np.array_equal(live.x_ns, reference.x_ns)
            for stats in pool.worker_cache_stats():
                assert stats["index_entries"] <= 3
                assert stats["counts_entries"] <= 3
                assert stats["mask_entries"] <= 3
            # evicted binnings still answer correctly (recompute)
            early = histogram_input_for(
                on_pool, HistogramQuery(binnings[0]), policy
            )
            reference = histogram_input_for(
                on_pool.to_columnar(), HistogramQuery(binnings[0]), policy
            )
            assert np.array_equal(early.x, reference.x)
