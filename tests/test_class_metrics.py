"""Tests for ROC/AUC and cross-validation utilities."""

import numpy as np
import pytest

from repro.classification.logistic import LogisticRegression
from repro.classification.metrics import (
    cross_validated_auc,
    roc_auc,
    roc_curve,
    stratified_kfold,
)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_ties_give_half_credit(self):
        assert roc_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_random_scores_near_half(self, rng):
        y = (rng.random(5000) < 0.5).astype(int)
        scores = rng.random(5000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.5, 0.6])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc([0, 1], [0.5])

    def test_invariant_to_monotone_transform(self, rng):
        y = (rng.random(200) < 0.4).astype(int)
        scores = rng.normal(size=200)
        assert roc_auc(y, scores) == pytest.approx(
            roc_auc(y, np.exp(scores)), abs=1e-12
        )


class TestRocCurve:
    def test_endpoints(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.1, 0.9, 0.3, 0.7])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        y = (rng.random(100) < 0.5).astype(int)
        scores = rng.random(100)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_auc_matches_trapezoid(self, rng):
        y = (rng.random(500) < 0.3).astype(int)
        scores = rng.normal(size=500) + y
        fpr, tpr, _ = roc_curve(y, scores)
        trap = np.trapezoid(tpr, fpr)
        assert roc_auc(y, scores) == pytest.approx(trap, abs=1e-9)


class TestStratifiedKFold:
    def test_partition_covers_everything(self, rng):
        y = (rng.random(103) < 0.3).astype(int)
        seen = []
        for _train, test in stratified_kfold(y, 5, rng):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(103))

    def test_train_test_disjoint(self, rng):
        y = (rng.random(60) < 0.5).astype(int)
        for train, test in stratified_kfold(y, 4, rng):
            assert not set(train) & set(test)

    def test_class_balance_preserved(self, rng):
        y = np.array([1] * 30 + [0] * 70)
        for _train, test in stratified_kfold(y, 5, rng):
            ratio = np.mean(y[test])
            assert ratio == pytest.approx(0.3, abs=0.1)

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 1]), 1, rng))


class TestCrossValidatedAuc:
    def test_separable_data_high_auc(self, rng):
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        auc = cross_validated_auc(
            lambda: LogisticRegression(lam=1e-4), X, y, k=5, rng=rng
        )
        assert auc > 0.95

    def test_noise_data_auc_half(self, rng):
        X = rng.normal(size=(400, 3))
        y = (rng.random(400) < 0.5).astype(int)
        auc = cross_validated_auc(
            lambda: LogisticRegression(), X, y, k=5, rng=rng
        )
        assert auc == pytest.approx(0.5, abs=0.12)
