"""Socket lane for overload admission control and per-op latency.

The acceptance contract of the admission gate: a flood beyond
``admission_limit`` gets **fast, retryable** ``ServerOverloaded``
refusals carrying a ``retry_after`` hint — never a queue pile-up and
never a hang — while a retrying client rides the hint to completion
with **exactly-once** accountant charging (an overload refusal must
not poison the idempotent-reply cache, or a retried ``req_id`` would
replay the refusal forever).  ``ping``/``transport_stats`` stay exempt
so an operator can always observe a saturated server.  The same lane
pins the per-op latency percentiles in ``transport_stats`` and the
``budget`` op's full ledger view (per-entry analyst attribution,
quota table).
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.api import (
    OsdpClient,
    RemoteBackend,
    ReleaseRequest,
    RetryPolicy,
    ServerOverloaded,
)
from repro.core.accountant import (
    AnalystQuotaExceededError,
    PrivacyAccountant,
)
from repro.data.columnar import ColumnarDatabase
from repro.queries.histogram import IntegerBinning
from repro.service.rpc import RpcServer
from repro.service.server import ReleaseServer

pytestmark = pytest.mark.rpc


def _loopback_available() -> str | None:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


_SKIP_REASON = _loopback_available()
if _SKIP_REASON:
    pytestmark = [pytest.mark.rpc, pytest.mark.skip(reason=_SKIP_REASON)]


BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _db(n: int = 2000, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _serve(accountant=None, **rpc_kwargs):
    server = ReleaseServer(_db().shard(2), accountant=accountant)
    rpc = RpcServer(server, **rpc_kwargs)
    thread = threading.Thread(target=rpc.serve_forever, daemon=True)
    thread.start()
    return rpc


def _request(epsilon=0.25, seed=1, n_trials=1, **kw) -> ReleaseRequest:
    return ReleaseRequest(
        "osdp_laplace_l1", epsilon, BINNING_SPEC, POLICY_SPEC,
        n_trials=n_trials, seed=seed, **kw,
    )


class TestAdmissionGate:
    def test_flood_beyond_gate_gets_fast_retryable_refusals(self):
        rpc = _serve(admission_limit=1, admission_retry_after=0.02)
        host, port = rpc.address
        # Stall each admitted release so the single gate slot is held
        # long enough for the flood to pile up behind it — without
        # this the GIL can serialize 8 fast releases into zero
        # collisions and the test proves nothing.
        original = rpc.release_server.handle

        def slow_handle(request):
            time.sleep(0.05)
            return original(request)

        rpc.release_server.handle = slow_handle
        barrier = threading.Barrier(8)
        try:
            overloads, successes = [], []

            def worker(i: int) -> None:
                # max_attempts=1: surface the refusal instead of letting
                # the backend transparently retry it into a success.
                with OsdpClient.connect(
                    host, port, retry=RetryPolicy(max_attempts=1)
                ) as client:
                    barrier.wait(timeout=30)
                    for j in range(4):
                        try:
                            client.release(
                                request=_request(seed=i * 10 + j)
                            )
                            successes.append(i)
                        except ServerOverloaded as exc:
                            overloads.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            start = time.monotonic()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.monotonic() - start
            assert successes, "gate of 1 still serves work"
            assert overloads, "8-way flood past a gate of 1 must refuse"
            # Refusals are retryable and carry the server's hint.
            for exc in overloads:
                assert exc.retry_after == 0.02
            # Fast refusal, not a queue: the whole flood resolves in
            # bounded time (the hang guard would catch a pile-up).
            assert elapsed < 60.0
            assert (
                rpc.transport_stats["overload_rejections"] == len(overloads)
            )
        finally:
            rpc.release_server.handle = original
            rpc.close()

    def test_retrying_client_completes_with_exactly_once_charge(self):
        accountant = PrivacyAccountant(total_epsilon=100.0)
        rpc = _serve(
            accountant=accountant,
            admission_limit=1,
            admission_retry_after=0.005,
        )
        host, port = rpc.address
        try:
            # Keep the gate contended from a no-retry client...
            stop = threading.Event()

            def contend() -> None:
                with OsdpClient.connect(host, port) as client:
                    seed = 0
                    while not stop.is_set():
                        seed += 1
                        try:
                            client.release(
                                request=_request(seed=seed, n_trials=50)
                            )
                        except ServerOverloaded:
                            pass

            contender = threading.Thread(target=contend, daemon=True)
            contender.start()
            # ...while a retrying client pushes 5 releases through.  If
            # an overload refusal were cached against the effectful
            # req_id, the retry would replay the refusal forever; if
            # retries re-ran charged work, the ledger would overcount.
            with OsdpClient.connect(
                host,
                port,
                retry=RetryPolicy(max_attempts=60, base_delay=0.005),
            ) as client:
                for seed in range(1000, 1005):
                    client.release(request=_request(seed=seed))
            stop.set()
            contender.join(timeout=30)
            charged = [
                e for e in accountant.ledger if int(e.epsilon * 100) == 25
            ]
            # Exactly one charge per completed release, no replayed
            # refusals and no double charges.
            completed = len(accountant.ledger)
            assert accountant.spent == completed * 0.25
            assert len(charged) == completed
            assert completed >= 5
        finally:
            rpc.close()

    def test_observability_ops_are_exempt_from_the_gate(self):
        rpc = _serve(admission_limit=1)
        host, port = rpc.address
        original = rpc.release_server.handle
        try:
            release = threading.Event()

            def stalling_handle(request):
                release.wait(timeout=30)
                return original(request)

            rpc.release_server.handle = stalling_handle
            with RemoteBackend(host, port) as backend:
                slow = threading.Thread(
                    target=lambda: backend.handle(_request(seed=3)),
                    daemon=True,
                )
                slow.start()
                time.sleep(0.2)  # the gate's one slot is now held
                # ping and transport_stats still answer.
                with RemoteBackend(host, port) as probe:
                    assert probe.ping()["server"] == "repro.service.rpc"
                    stats = probe.transport_stats()
                    assert "overload_rejections" in stats
                release.set()
                slow.join(timeout=30)
        finally:
            rpc.release_server.handle = original
            rpc.close()

    def test_gate_validation(self):
        server = ReleaseServer(_db().shard(2))
        with pytest.raises(ValueError):
            RpcServer(server, admission_limit=0)
        with pytest.raises(ValueError):
            RpcServer(server, admission_retry_after=0.0)


class TestOpLatency:
    def test_transport_stats_carry_per_op_percentiles(self):
        rpc = _serve()
        host, port = rpc.address
        try:
            with OsdpClient.connect(host, port) as client:
                for seed in range(5):
                    client.release(request=_request(seed=seed))
                stats = client.backend.transport_stats()
            latency = stats["op_latency"]
            assert latency["release"]["count"] == 5
            for q in ("p50", "p95", "p99"):
                assert latency["release"][q] >= 0.0
            assert (
                latency["release"]["p50"] <= latency["release"]["p99"]
            )
        finally:
            rpc.close()


class TestBudgetView:
    def test_budget_op_returns_full_ledger_view(self):
        accountant = PrivacyAccountant(
            total_epsilon=10.0, quotas={"alice": 1.0}
        )
        rpc = _serve(accountant=accountant)
        host, port = rpc.address
        try:
            with OsdpClient.connect(host, port, analyst="alice") as client:
                client.release(request=_request(epsilon=0.5, seed=2))
                view = client.budget()
                assert view["total"] == 10.0
                assert view["spent"] == 0.5
                (entry,) = view["entries"]
                assert entry["analyst"] == "alice"
                assert entry["epsilon"] == 0.5
                assert entry["label"] == "osdp_laplace_l1"
                assert view["quotas"]["alice"]["remaining"] == 0.5
                # The scalar surface still works on the dict reply.
                assert client.backend.budget_remaining == 9.5
                # Quota refusals cross the wire typed.
                with pytest.raises(AnalystQuotaExceededError):
                    client.release(request=_request(epsilon=0.75, seed=3))
        finally:
            rpc.close()

    def test_unmetered_server_returns_none(self):
        rpc = _serve()
        host, port = rpc.address
        try:
            with OsdpClient.connect(host, port) as client:
                assert client.budget() is None
                assert client.backend.budget_remaining is None
        finally:
            rpc.close()

    def test_header_analyst_stamps_requests_request_field_wins(self):
        accountant = PrivacyAccountant(total_epsilon=10.0)
        rpc = _serve(accountant=accountant)
        host, port = rpc.address
        try:
            with OsdpClient.connect(host, port, analyst="alice") as client:
                client.release(request=_request(seed=4))
                client.release(request=_request(seed=5, analyst="bob"))
            assert [e.analyst for e in accountant.ledger] == [
                "alice",
                "bob",
            ]
        finally:
            rpc.close()
