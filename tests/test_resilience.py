"""Unit lane for :mod:`repro.api.resilience` (no sockets, no skips).

Clock-injected throughout: breaker windows and deadlines advance via a
fake monotonic clock, and retry sleeps are recorded, not slept — the
whole lane is deterministic and fast.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.resilience import (
    DEAD,
    HEALTHY,
    SUSPECT,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    HealthMonitor,
    RetryPolicy,
    call_with_retries,
)


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FixedRandom:
    """A 'random' source pinned to one value in [0, 1)."""

    def __init__(self, value: float):
        self.value = value

    def random(self) -> float:
        return self.value


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        delays = [policy.delay(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_spreads_symmetrically_and_stays_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25, max_delay=10.0)
        assert policy.delay(0, rng=FixedRandom(0.0)) == pytest.approx(0.75)
        assert policy.delay(0, rng=FixedRandom(0.5)) == pytest.approx(1.0)
        # upper edge: (1 - j) + 2j * u for u -> 1 approaches 1 + j
        assert policy.delay(0, rng=FixedRandom(1.0)) == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1)


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.require("anything")  # never raises

    def test_countdown_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="2.0s deadline"):
            deadline.require("the request")


class TestCallWithRetries:
    def test_returns_first_success_without_sleeping(self):
        sleeps: list[float] = []
        result = call_with_retries(
            lambda: 42,
            RetryPolicy(max_attempts=3),
            sleep=sleeps.append,
        )
        assert result == 42
        assert sleeps == []

    def test_retries_only_retryable_and_reraises_last(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise OSError(f"boom {calls['n']}")

        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        with pytest.raises(OSError, match="boom 3"):
            call_with_retries(flaky, policy, sleep=sleeps.append)
        assert calls["n"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def typo():
            calls["n"] += 1
            raise ValueError("bad spec")

        with pytest.raises(ValueError, match="bad spec"):
            call_with_retries(
                typo, RetryPolicy(max_attempts=5), retryable=(OSError,),
                sleep=lambda s: None,
            )
        assert calls["n"] == 1

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def eventually():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert (
            call_with_retries(
                eventually,
                RetryPolicy(max_attempts=5, jitter=0.0),
                sleep=lambda s: None,
            )
            == "ok"
        )
        assert calls["n"] == 3

    def test_deadline_converts_exhaustion_to_deadline_exceeded(self):
        clock = FakeClock()

        def failing():
            clock.advance(3.0)  # each attempt burns wall-clock
            raise OSError("slow failure")

        deadline = Deadline(5.0, clock=clock)
        with pytest.raises(DeadlineExceeded, match="5.0s deadline"):
            call_with_retries(
                failing,
                RetryPolicy(max_attempts=10, jitter=0.0),
                sleep=lambda s: None,
                deadline=deadline,
            )


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens_after_reset(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after=10.0, clock=clock
        )
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # fail-fast while open
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # exactly one probe per window
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_after"):
            CircuitBreaker(reset_after=-1)


class TestHealthMonitor:
    def test_state_machine_healthy_suspect_dead_and_back(self):
        monitor = HealthMonitor(["a"], dead_after=3)
        assert monitor.state("a") == HEALTHY
        monitor.record_failure("a", OSError("refused"))
        assert monitor.state("a") == SUSPECT
        monitor.record_failure("a")
        assert monitor.state("a") == SUSPECT
        monitor.record_failure("a")
        assert monitor.state("a") == DEAD
        assert "OSError: refused" in monitor.status()["a"]["last_error"]
        monitor.record_success("a")
        assert monitor.state("a") == HEALTHY
        assert monitor.status()["a"]["consecutive_failures"] == 0

    def test_ranked_puts_live_replicas_first_and_is_stable(self):
        monitor = HealthMonitor(["a", "b", "c", "d"], dead_after=2)
        for _ in range(2):
            monitor.record_failure("a")
        monitor.record_failure("c")
        ranked = monitor.ranked(["a", "b", "c", "d"])
        assert ranked == ["b", "d", "c", "a"]  # healthy, suspect, dead

    def test_background_probe_restores_a_dead_endpoint(self):
        healthy_again = threading.Event()
        outcomes = {"a": OSError("still down")}

        def probe(key):
            error = outcomes[key]
            if error is not None:
                raise error
            healthy_again.set()

        monitor = HealthMonitor(
            ["a"], probe=probe, interval=0.01, dead_after=1
        )
        monitor.record_failure("a")
        assert monitor.state("a") == DEAD
        with monitor.start():
            # first let a failing probe run (state stays dead) ...
            deadline = threading.Event()
            deadline.wait(0.05)
            assert monitor.state("a") == DEAD
            # ... then the endpoint comes back and one probe heals it
            outcomes["a"] = None
            assert healthy_again.wait(5.0)
        assert monitor.state("a") == HEALTHY
        assert monitor.status()["a"]["probes"] >= 1

    def test_probes_target_only_unhealthy_endpoints(self):
        probed: list[str] = []
        done = threading.Event()

        def probe(key):
            probed.append(key)
            done.set()

        monitor = HealthMonitor(
            ["well", "sick"], probe=probe, interval=0.01, dead_after=1
        )
        monitor.record_failure("sick")
        with monitor.start():
            assert done.wait(5.0)
        assert set(probed) == {"sick"}

    def test_start_without_probe_is_an_error(self):
        with pytest.raises(ValueError, match="probe"):
            HealthMonitor(["a"]).start()


class TestHalfOpenUnderContention:
    def test_exactly_one_probe_per_window_under_thread_hammer(self):
        """Many threads race ``allow()`` on a half-open breaker: the
        window must admit exactly one probe — a thundering herd onto a
        barely recovered endpoint would re-kill it.  The clock is
        frozen per window, so any over-admission is deterministic."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=1.0, clock=clock
        )
        breaker.record_failure()  # open
        n_threads = 16
        for window in range(5):
            clock.advance(1.0)  # the window elapses: half-open
            assert breaker.state == "half-open"
            barrier = threading.Barrier(n_threads)
            admitted: list[bool] = []
            lock = threading.Lock()

            def hammer():
                barrier.wait()
                verdict = breaker.allow()
                with lock:
                    admitted.append(verdict)

            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert admitted.count(True) == 1, f"window {window}"
            # The failed probe re-opens the same accounting.
            breaker.record_failure()


class TestRetryDeterminism:
    def test_seeded_rng_reproduces_the_jittered_schedule(self):
        """The PR-8 satellite: every backoff consumer threads an
        injectable rng through to ``RetryPolicy.delay``, so a seeded
        run's sleep schedule replays exactly."""
        import random

        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.5
        )

        def schedule(seed: int) -> list[float]:
            sleeps: list[float] = []
            attempts = {"n": 0}

            def flaky():
                attempts["n"] += 1
                if attempts["n"] < 5:
                    raise OSError("transient")
                return "ok"

            result = call_with_retries(
                flaky,
                policy,
                rng=random.Random(seed),
                sleep=sleeps.append,
            )
            assert result == "ok"
            return sleeps

        first, second = schedule(7), schedule(7)
        assert first == second
        assert len(first) == 4
        assert schedule(8) != first  # the jitter really draws
