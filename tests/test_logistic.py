"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.classification.logistic import LogisticRegression


def make_separable(rng, n=400, d=5, margin=2.0):
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w + margin * 0 > 0).astype(int)
    return X, y, w


class TestFit:
    def test_learns_separable_data(self, rng):
        X, y, _ = make_separable(rng)
        model = LogisticRegression(lam=1e-4).fit(X, y)
        acc = np.mean(model.predict(X) == y)
        assert acc > 0.95

    def test_signed_label_input(self, rng):
        X, y, _ = make_separable(rng)
        signed = np.where(y > 0, 1, -1)
        model = LogisticRegression(lam=1e-4).fit(X, signed)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_rejects_non_binary_labels(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, np.arange(10))

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            LogisticRegression(lam=-0.1)

    def test_unfitted_prediction_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(rng.normal(size=(3, 2)))


class TestIntercept:
    def test_intercept_handles_shifted_data(self, rng):
        X = rng.normal(size=(500, 2)) + 10.0
        y = (X[:, 0] > 10.0).astype(int)
        with_b = LogisticRegression(lam=1e-4, fit_intercept=True).fit(X, y)
        assert np.mean(with_b.predict(X) == y) > 0.9

    def test_weights_dimension(self, rng):
        X, y, _ = make_separable(rng, d=4)
        with_b = LogisticRegression(fit_intercept=True).fit(X, y)
        without_b = LogisticRegression(fit_intercept=False).fit(X, y)
        assert len(with_b.weights) == 5
        assert len(without_b.weights) == 4


class TestRegularization:
    def test_large_lambda_shrinks_weights(self, rng):
        X, y, _ = make_separable(rng)
        small = LogisticRegression(lam=1e-6).fit(X, y)
        large = LogisticRegression(lam=10.0).fit(X, y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)


class TestProbabilities:
    def test_probabilities_in_unit_interval(self, rng):
        X, y, _ = make_separable(rng)
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))

    def test_decision_sign_matches_prediction(self, rng):
        X, y, _ = make_separable(rng)
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X), (scores >= 0).astype(int))
