"""Tests for the Suppress PDP baseline (Section 3.4, Fig 10)."""

import math

import numpy as np
import pytest

from repro.core.policy import LambdaPolicy
from repro.mechanisms.suppress import Suppress, SuppressHistogram
from repro.queries.histogram import HistogramInput

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")


class TestSuppressRecordLevel:
    def test_retained_drops_all_sensitive(self):
        suppress = Suppress(ODD, tau=10.0)
        assert suppress.retained([0, 1, 2, 3, 4]) == [0, 2, 4]

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            Suppress(ODD, tau=-1.0)

    def test_tau_none_means_infinity(self):
        suppress = Suppress(ODD, tau=None)
        assert suppress.exclusion_freedom_phi == math.inf

    def test_pdp_guarantee_structure(self):
        suppress = Suppress(ODD, tau=10.0)
        g = suppress.guarantee
        assert g.epsilon_of(2) == math.inf  # non-sensitive
        assert g.epsilon_of(1) == 10.0  # sensitive

    def test_output_distribution_deterministic(self):
        suppress = Suppress(ODD, tau=None)
        dist = suppress.output_distribution((0, 1, 2))
        assert dist == {(0, 2): 1.0}

    def test_output_distribution_finite_tau_unimplemented(self):
        with pytest.raises(NotImplementedError):
            Suppress(ODD, tau=5.0).output_distribution((0,))


class TestSuppressHistogram:
    def test_large_tau_approaches_exact_x_ns(self, small_hist, rng):
        mech = SuppressHistogram(tau=10_000.0)
        out = mech.release(small_hist, rng)
        assert np.allclose(out, small_hist.x_ns, atol=0.1)

    def test_noise_scale_is_2_over_tau(self, rng):
        x = np.zeros(4096)
        hist = HistogramInput(x=x, x_ns=x.copy())
        mech = SuppressHistogram(tau=10.0)
        out = mech.release(hist, rng)
        # Clipped |Lap(0.2)| has mean scale/2 = 0.1.
        assert np.mean(out) == pytest.approx(0.1, rel=0.1)

    def test_name_embeds_tau(self):
        assert SuppressHistogram(tau=100.0).name == "suppress100"

    def test_ns_ratio_scaling(self, rng):
        x = np.full(16, 100.0)
        x_ns = np.full(16, 25.0)
        hist = HistogramInput(x=x, x_ns=x_ns)
        mech = SuppressHistogram(tau=10_000.0, ns_ratio=0.25)
        out = mech.release(hist, rng)
        assert np.allclose(out, 100.0, atol=1.0)

    def test_more_accurate_than_matched_osdp_but_weaker_protection(
        self, small_hist, rng
    ):
        """Fig 10's tradeoff: Suppress100 is accurate because tau = 100
        buys 100x weaker exclusion-attack freedom than (P, 1)-OSDP."""
        from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram

        suppress = SuppressHistogram(tau=100.0)
        osdp = OsdpLaplaceL1Histogram(epsilon=1.0)
        sup_err = np.mean(
            [
                np.abs(suppress.release(small_hist, rng) - small_hist.x_ns).sum()
                for _ in range(50)
            ]
        )
        osdp_err = np.mean(
            [
                np.abs(osdp.release(small_hist, rng) - small_hist.x_ns).sum()
                for _ in range(50)
            ]
        )
        assert sup_err < osdp_err
        record_level = Suppress(ODD, tau=100.0)
        assert record_level.exclusion_freedom_phi == 100.0  # vs phi = 1
