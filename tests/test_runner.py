"""Tests for the trial runner and table formatter."""

import numpy as np
import pytest

from repro.evaluation.runner import average_over_trials, format_table, spawn_rngs


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(7, 3)]
        b = [g.random() for g in spawn_rngs(7, 3)]
        assert a == b

    def test_independent_streams(self):
        values = [g.random() for g in spawn_rngs(7, 10)]
        assert len(set(values)) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestAverageOverTrials:
    def test_averages(self):
        result = average_over_trials(lambda rng: 2.0, n_trials=4, seed=0)
        assert result == 2.0

    def test_deterministic_in_seed(self):
        fn = lambda rng: float(rng.random())  # noqa: E731
        a = average_over_trials(fn, n_trials=10, seed=3)
        b = average_over_trials(fn, n_trials=10, seed=3)
        assert a == b

    def test_uses_different_rngs(self):
        values = []
        average_over_trials(
            lambda rng: values.append(rng.random()) or 0.0, n_trials=5, seed=0
        )
        assert len(set(values)) == 5


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["laplace", 1.2345]])
        assert "name" in text
        assert "laplace" in text
        assert "1.234" in text

    def test_alignment_consistent(self):
        text = format_table(["a", "b"], [["xx", 1.0], ["y", 22.0]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line.strip()}) <= 2

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
