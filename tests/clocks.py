"""Deterministic time for streaming tests.

The test-side implementation of :class:`repro.ingest.clock.Clock`:
time only moves when the test says so, making every watermark,
retention window and release period an instant, exact assertion.
Shared across test modules the same way ``tests/faults.py`` shares the
fault-injection harness.
"""

from __future__ import annotations


class FakeClock:
    """A manually advanced clock; ``sleep`` advances instead of blocking."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Every sleep() duration requested, in order — lets tests
        #: assert on backoff pacing without real waiting.
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds: float) -> "FakeClock":
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += float(seconds)
        return self

    def set(self, timestamp: float) -> "FakeClock":
        if timestamp < self._now:
            raise ValueError("time only moves forward")
        self._now = float(timestamp)
        return self
