"""Tests for the Laplace mechanism (Definition 2.5)."""

import numpy as np
import pytest

from repro.core.guarantees import DPGuarantee
from repro.mechanisms.laplace import LaplaceHistogram, LaplaceMechanism
from repro.queries.histogram import HistogramInput


class TestLaplaceMechanism:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0, sensitivity=1.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)

    def test_scale_is_sensitivity_over_epsilon(self):
        assert LaplaceMechanism(epsilon=0.5, sensitivity=2.0).scale == 4.0

    def test_guarantee(self):
        assert LaplaceMechanism(1.0, 1.0).guarantee == DPGuarantee(1.0)

    def test_scalar_release(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        value = mech.release(10.0, rng)
        assert isinstance(value, float)

    def test_vector_release_shape(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        out = mech.release(np.zeros(16), rng)
        assert out.shape == (16,)

    def test_unbiased(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        outs = [mech.release(5.0, rng) for _ in range(20_000)]
        assert np.mean(outs) == pytest.approx(5.0, abs=0.05)

    def test_noise_magnitude_scales_inverse_epsilon(self, rng):
        big = LaplaceMechanism(epsilon=10.0, sensitivity=1.0)
        small = LaplaceMechanism(epsilon=0.1, sensitivity=1.0)
        err_big = np.mean(
            [abs(big.release(0.0, rng)) for _ in range(4000)]
        )
        err_small = np.mean(
            [abs(small.release(0.0, rng)) for _ in range(4000)]
        )
        assert err_small > 10 * err_big


class TestLaplaceHistogram:
    def test_uses_full_histogram(self, small_hist, rng):
        mech = LaplaceHistogram(epsilon=100.0)
        out = mech.release(small_hist, rng)
        # At enormous epsilon the release is essentially x, not x_ns.
        assert np.allclose(out, small_hist.x, atol=0.5)

    def test_expected_l1_error_matches_theorem_5_1(self, rng):
        """E L1 error = 2 d / eps for a d-bin histogram."""
        epsilon, d = 1.0, 512
        hist = HistogramInput(x=np.zeros(d), x_ns=np.zeros(d))
        mech = LaplaceHistogram(epsilon=epsilon)
        errors = [
            np.abs(mech.release(hist, rng)).sum() for _ in range(60)
        ]
        assert np.mean(errors) == pytest.approx(2.0 * d / epsilon, rel=0.1)
        assert mech.expected_l1_error * d == pytest.approx(2.0 * d / epsilon)

    def test_clip_negative_option(self, small_hist, rng):
        mech = LaplaceHistogram(epsilon=0.01, clip_negative=True)
        out = mech.release(small_hist, rng)
        assert np.all(out >= 0.0)

    def test_unclipped_can_be_negative(self, small_hist, rng):
        mech = LaplaceHistogram(epsilon=0.01)
        out = mech.release(small_hist, rng)
        assert np.any(out < 0.0)

    def test_guarantee_epsilon(self):
        assert LaplaceHistogram(0.7).guarantee.epsilon == 0.7
