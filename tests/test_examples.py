"""Smoke tests: every example script must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"


def test_all_six_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "smart_building.py",
        "opt_in_histograms.py",
        "exclusion_attack_demo.py",
        "policy_composition.py",
        "cluster_quickstart.py",
    } <= names


class TestExampleOutputs:
    """Spot-check that the walkthroughs demonstrate what they claim."""

    def _run(self, name: str) -> str:
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        return result.stdout

    def test_quickstart_shows_budget_ledger(self):
        out = self._run("quickstart.py")
        assert "OsdpRR released" in out
        assert "overall guarantee" in out

    def test_exclusion_demo_contrasts_mechanisms(self):
        out = self._run("exclusion_attack_demo.py")
        assert "INFINITY" in out
        assert "Theorem 3.1" in out

    def test_policy_composition_reports_composed_guarantee(self):
        out = self._run("policy_composition.py")
        assert "composed guarantee" in out
        assert "minimum relaxation" in out

    def test_cluster_quickstart_survives_a_kill_bit_identically(self):
        out = self._run("cluster_quickstart.py")
        assert "write acked with hi-r0 dead" in out
        assert "resync verdicts: {'hi-r0': True}" in out
        assert out.count("bit-identical") >= 3
        assert "through a kill, a restart, and a resync" in out
