"""Tests for the privacy budget accountant."""

import pytest

from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy import AllSensitivePolicy, LambdaPolicy

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")


class TestBudget:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(total_epsilon=0.0)

    def test_spend_and_remaining(self):
        acct = PrivacyAccountant(total_epsilon=1.0)
        acct.charge(ODD, 0.4, label="first")
        assert acct.spent == pytest.approx(0.4)
        assert acct.remaining == pytest.approx(0.6)

    def test_exact_budget_allowed_despite_float_error(self):
        acct = PrivacyAccountant(total_epsilon=1.0)
        acct.charge(ODD, 0.1)
        acct.charge(ODD, 0.9)  # 0.1 + 0.9 is not exactly 1.0 in floats
        assert acct.remaining == pytest.approx(0.0, abs=1e-9)

    def test_over_budget_raises_and_keeps_ledger(self):
        acct = PrivacyAccountant(total_epsilon=0.5)
        acct.charge(ODD, 0.5)
        with pytest.raises(BudgetExceededError):
            acct.charge(ODD, 0.1)
        assert len(acct.ledger) == 1

    def test_non_positive_charge_rejected(self):
        acct = PrivacyAccountant(total_epsilon=1.0)
        with pytest.raises(ValueError):
            acct.charge(ODD, 0.0)


class TestComposedGuarantee:
    def test_composed_epsilon_sums(self):
        acct = PrivacyAccountant(total_epsilon=2.0)
        acct.charge(ODD, 0.5, label="a")
        acct.charge(AllSensitivePolicy(), 0.7, label="b")
        composed = acct.composed_guarantee()
        assert composed.epsilon == pytest.approx(1.2)

    def test_composed_policy_is_minimum_relaxation(self):
        acct = PrivacyAccountant(total_epsilon=2.0)
        acct.charge(ODD, 0.5)
        acct.charge(AllSensitivePolicy(), 0.5)
        composed = acct.composed_guarantee()
        # minimum relaxation of (odd, all): sensitive only where odd.
        assert composed.policy(3) == 0
        assert composed.policy(2) == 1

    def test_composed_without_charges_raises(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(total_epsilon=1.0).composed_guarantee()

    def test_summary_mentions_labels(self):
        acct = PrivacyAccountant(total_epsilon=1.0)
        acct.charge(ODD, 0.25, label="zero-detection")
        text = acct.summary()
        assert "zero-detection" in text
        assert "0.25" in text


class TestMechanismCharging:
    def test_mechanism_charge_helper(self, small_hist, rng):
        from repro.mechanisms.laplace import LaplaceHistogram
        from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram

        acct = PrivacyAccountant(total_epsilon=1.0)
        dp_mech = LaplaceHistogram(0.3)
        dp_mech.charge(acct, label="dp part")
        osdp_mech = OsdpLaplaceL1Histogram(0.7, policy=ODD)
        osdp_mech.charge(acct, label="osdp part")
        assert acct.remaining == pytest.approx(0.0, abs=1e-9)
        assert acct.composed_guarantee().epsilon == pytest.approx(1.0)

    def test_charge_none_accountant_is_noop(self):
        from repro.mechanisms.laplace import LaplaceHistogram

        LaplaceHistogram(0.3).charge(None)  # must not raise
