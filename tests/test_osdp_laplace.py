"""Tests for OsdpLaplace / OsdpLaplaceL1 (Algorithm 2) and the hybrid."""

import math

import numpy as np
import pytest

from repro.core.policy import LambdaPolicy
from repro.mechanisms.osdp_laplace import (
    HybridOsdpLaplace,
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
)
from repro.queries.histogram import HistogramInput

ODD = LambdaPolicy(lambda r: r % 2 == 1)


class TestOsdpLaplace:
    def test_noise_strictly_non_positive(self, small_hist, rng):
        mech = OsdpLaplaceHistogram(epsilon=1.0)
        for _ in range(20):
            out = mech.release(small_hist, rng)
            assert np.all(out <= small_hist.x_ns + 1e-12)

    def test_theorem_5_2_density_ratio(self):
        """One-sided neighbors increase x_ns by <= 1; the density ratio of
        the release at any output is bounded by e^eps (Theorem 5.2)."""
        epsilon = 0.8
        mech = OsdpLaplaceHistogram(epsilon=epsilon)
        noise = mech.noise
        # Output y <= x_ns <= x'_ns: ratio pdf(y - x)/pdf(y - x') = e^(eps * (x' - x)).
        x, x_prime = 5.0, 6.0
        for y in np.linspace(0.0, 4.9, 25):
            ratio = noise.pdf(y - x) / noise.pdf(y - x_prime)
            assert ratio <= math.exp(epsilon) * (1 + 1e-12)

    def test_noise_variance_matches_paper(self):
        mech = OsdpLaplaceHistogram(epsilon=2.0)
        assert mech.noise_variance == pytest.approx(0.25)

    def test_ns_ratio_scaling(self, rng):
        x = np.full(16, 100.0)
        x_ns = np.full(16, 50.0)
        hist = HistogramInput(x=x, x_ns=x_ns)
        mech = OsdpLaplaceHistogram(epsilon=100.0, ns_ratio=0.5)
        out = mech.release(hist, rng)
        assert np.allclose(out, 100.0, atol=1.0)

    def test_invalid_ns_ratio(self):
        with pytest.raises(ValueError):
            OsdpLaplaceHistogram(epsilon=1.0, ns_ratio=0.0)


class TestOsdpLaplaceL1:
    def test_zero_counts_stay_exactly_zero(self, rng):
        """Algorithm 2 step 2: true zeros are released as exact zeros."""
        x = np.array([0.0, 10.0, 0.0, 5.0])
        hist = HistogramInput(x=x, x_ns=x.copy())
        mech = OsdpLaplaceL1Histogram(epsilon=0.5)
        for _ in range(50):
            out = mech.release(hist, rng)
            assert out[0] == 0.0
            assert out[2] == 0.0

    def test_output_non_negative(self, small_hist, rng):
        mech = OsdpLaplaceL1Histogram(epsilon=0.3)
        for _ in range(20):
            assert np.all(mech.release(small_hist, rng) >= 0.0)

    def test_median_correction_value(self):
        mech = OsdpLaplaceL1Histogram(epsilon=2.0)
        assert mech.median_correction == pytest.approx(math.log(2.0) / 2.0)

    def test_debias_restores_median(self, rng):
        """For large counts the debiased release has median ~ x_ns."""
        x = np.full(2000, 50.0)
        hist = HistogramInput(x=x, x_ns=x.copy())
        mech = OsdpLaplaceL1Histogram(epsilon=1.0)
        out = mech.release(hist, rng)
        assert np.median(out) == pytest.approx(50.0, abs=0.15)

    def test_no_debias_median_shifted(self, rng):
        x = np.full(2000, 50.0)
        hist = HistogramInput(x=x, x_ns=x.copy())
        mech = OsdpLaplaceL1Histogram(epsilon=1.0, debias=False)
        out = mech.release(hist, rng)
        assert np.median(out) == pytest.approx(50.0 - math.log(2.0), abs=0.15)

    def test_lower_error_than_laplace_on_zero_heavy_input(self, rng):
        """The §5.1 motivation: much less noise than the DP Laplace
        histogram when x_ns tracks x (here: identical, very sparse)."""
        from repro.mechanisms.laplace import LaplaceHistogram

        x = np.zeros(1024)
        x[::64] = 100.0
        hist = HistogramInput(x=x, x_ns=x.copy())
        osdp_err = np.abs(
            OsdpLaplaceL1Histogram(1.0).release(hist, rng) - x
        ).sum()
        dp_err = np.abs(LaplaceHistogram(1.0).release(hist, rng) - x).sum()
        assert osdp_err < dp_err / 4


class TestHybrid:
    def _hist_with_mask(self):
        x = np.array([10.0, 20.0, 7.0, 0.0])
        x_ns = np.array([0.0, 20.0, 7.0, 0.0])  # bin 0 purely sensitive
        mask = np.array([True, False, False, False])
        return HistogramInput(x=x, x_ns=x_ns, sensitive_bin_mask=mask)

    def test_sensitive_bins_get_two_sided_noise(self, rng):
        hist = self._hist_with_mask()
        mech = HybridOsdpLaplace(epsilon=1.0)
        outs = np.stack([mech.release(hist, rng) for _ in range(500)])
        # Bin 0 is estimated from x (10), not x_ns (0).
        assert np.mean(outs[:, 0]) == pytest.approx(10.0, abs=1.0)

    def test_non_sensitive_bins_one_sided(self, rng):
        hist = self._hist_with_mask()
        mech = HybridOsdpLaplace(epsilon=1.0)
        for _ in range(50):
            out = mech.release(hist, rng)
            assert out[3] == 0.0  # empty non-sensitive bin stays zero

    def test_fallback_without_mask(self, small_hist, rng):
        mech = HybridOsdpLaplace(epsilon=1.0)
        out = mech.release(small_hist, rng)
        # Behaves like OsdpLaplaceL1: bounded by x_ns + correction.
        assert np.all(out <= small_hist.x_ns + mech.epsilon_os**-1 * 2 + 1.0)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            HybridOsdpLaplace(epsilon=1.0, split=0.0)

    def test_budget_split(self):
        mech = HybridOsdpLaplace(epsilon=1.0, split=0.3)
        assert mech.epsilon_dp == pytest.approx(0.3)
        assert mech.epsilon_os == pytest.approx(0.7)
        assert mech.guarantee.epsilon == pytest.approx(1.0)
