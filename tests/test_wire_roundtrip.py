"""Property-based round trip of the request/response wire format.

The protocol contract of :mod:`repro.api.wire`: for any serializable
policy/binning (algebra objects or raw spec dicts), a
:class:`ReleaseRequest` survives ``request_to_wire`` -> JSON text ->
``request_from_wire`` with **bit-identical handling** (same estimates
from a cold server, same seed), responses survive with bit-exact
estimate buffers, the socket framing reassembles arbitrary
array-bearing messages exactly (even through fragmented reads), and
the failure payloads — most importantly
:class:`BatchBudgetExceededError` with its charged prefix — rebuild
faithfully.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import wire
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.queries.histogram import IntegerBinning, Product2DBinning
from repro.service import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
)
from test_spec_roundtrip import (
    binnings,
    flat_records,
    predicate_specs,
    serializable_policies,
)

MAX_EXAMPLES = 25


def _clip_to_domain(records, binning):
    """Drop records a random integer binning cannot place."""

    def in_domain(record, b):
        if isinstance(b, IntegerBinning):
            return b.low <= record["age"] < b.high
        if isinstance(b, Product2DBinning):
            return in_domain(record, b.first) and in_domain(record, b.second)
        return True

    return [r for r in records if in_domain(r, binning)]


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    records=flat_records(),
    policy=serializable_policies(),
    binning=binnings(),
    seed=st.integers(0, 2**31 - 1),
    mechanism=st.sampled_from(["laplace", "osdp_laplace_l1", "osdp_rr"]),
)
def test_request_json_round_trip_handles_bit_identically(
    records, policy, binning, seed, mechanism
):
    from repro.data.columnar import ColumnarDatabase

    records = _clip_to_domain(records, binning)
    if not records:
        return
    db = ColumnarDatabase.from_records(records)
    request = ReleaseRequest(
        mechanism, 0.5, binning, policy, n_trials=2, seed=seed
    )
    doc = wire.request_to_wire(request)
    text = wire.dumps(doc)
    rebuilt = wire.request_from_wire(wire.loads(text))
    # two cold servers over the same data: live objects vs the request
    # that crossed the wire as pure JSON must release identical bits
    got = ReleaseServer(db.shard(2)).handle(rebuilt)
    want = ReleaseServer(db.shard(2)).handle(request)
    assert np.array_equal(got.estimates, want.estimates)
    # and the wire form is canonical: re-serializing reproduces it
    assert wire.request_to_wire(rebuilt) == json.loads(json.dumps(doc))


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(spec=predicate_specs(), records=flat_records())
def test_spec_dict_requests_round_trip(spec, records):
    """Requests carrying raw spec dicts (the transport-native form)."""
    from repro.data.columnar import ColumnarDatabase

    db = ColumnarDatabase.from_records(records)
    binning = IntegerBinning("age", 0, 100, 10)
    request = ReleaseRequest(
        "osdp_laplace_l1", 0.5, binning.to_spec(), spec, n_trials=1, seed=7
    )
    rebuilt = wire.request_from_wire(
        wire.loads(wire.dumps(wire.request_to_wire(request)))
    )
    got = ReleaseServer(db.shard(1)).handle(rebuilt)
    want = ReleaseServer(db.shard(1)).handle(request)
    assert np.array_equal(got.estimates, want.estimates)


# ----------------------------------------------------------------------
# Responses (bit-exact estimate buffers)
# ----------------------------------------------------------------------


def _finite_matrices():
    return st.tuples(
        st.integers(1, 4), st.integers(1, 8), st.integers(0, 2**32 - 1)
    ).map(
        lambda t: np.random.default_rng(t[2]).standard_normal((t[0], t[1]))
        * 10.0 ** np.random.default_rng(t[2] + 1).integers(-8, 8)
    )


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(estimates=_finite_matrices(), cache_hit=st.booleans())
def test_response_round_trip_is_bit_exact(estimates, cache_hit):
    response = ReleaseResponse(
        request=ReleaseRequest(
            "laplace",
            0.5,
            IntegerBinning("age", 0, 100, 10).to_spec(),
            {"kind": "opt_in", "attr": "opt_in"},
            n_trials=estimates.shape[0],
            seed=3,
        ),
        estimates=estimates,
        epsilon_spent=0.5,
        budget_remaining=1.25,
        cache_hit=cache_hit,
    )
    doc = wire.loads(wire.dumps(wire.response_to_wire(response)))
    back = wire.response_from_wire(doc)
    assert back.estimates.dtype == estimates.dtype
    assert back.estimates.shape == estimates.shape
    assert back.estimates.tobytes() == estimates.tobytes()
    assert back.cache_hit == cache_hit
    assert back.request.mechanism == "laplace"
    assert back.request.n_trials == estimates.shape[0]


def test_integer_and_float32_arrays_round_trip():
    for arr in (
        np.arange(12, dtype=np.int64).reshape(3, 4),
        np.float32([[1.5, np.pi]]),
        np.array([], dtype=np.float64),
    ):
        back = wire.array_from_jsonable(
            json.loads(json.dumps(wire.array_to_jsonable(arr)))
        )
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert back.tobytes() == arr.tobytes()


def test_object_arrays_are_rejected():
    with pytest.raises(wire.WireError, match="object-dtype"):
        wire.array_to_jsonable(np.array([{"a": 1}], dtype=object))


# ----------------------------------------------------------------------
# Socket framing
# ----------------------------------------------------------------------


class _FragmentingSocket:
    """A fake socket serving a byte buffer in tiny fragments."""

    def __init__(self, data: bytes, fragment: int = 7):
        self._data = data
        self._pos = 0
        self._fragment = fragment

    def recv(self, n: int) -> bytes:
        take = min(n, self._fragment, len(self._data) - self._pos)
        chunk = self._data[self._pos : self._pos + take]
        self._pos += take
        return chunk


@st.composite
def wire_messages(draw):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**53), 2**53),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(max_size=8),
    )
    arrays = st.tuples(st.integers(0, 5), st.integers(0, 2**16)).map(
        lambda t: np.random.default_rng(t[1]).integers(
            -1000, 1000, size=t[0], dtype=np.int64
        )
    )
    return draw(
        st.recursive(
            st.one_of(scalars, arrays),
            lambda children: st.one_of(
                st.lists(children, max_size=3),
                st.dictionaries(st.text(max_size=5), children, max_size=3),
            ),
            max_leaves=8,
        )
    )


def _assert_same(a, b):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert a.tobytes() == b.tobytes()
    elif isinstance(a, dict):
        assert a.keys() == b.keys()
        for key in a:
            _assert_same(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same(x, y)
    else:
        assert a == b


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(message=wire_messages())
def test_framing_round_trip_through_fragmented_reads(message):
    data = wire.encode_message(message)
    back = wire.recv_message(_FragmentingSocket(data))
    _assert_same(message, back)


def test_recv_rejects_wrong_version_and_truncation():
    data = bytearray(wire.encode_message({"hello": np.arange(3)}))
    with pytest.raises(EOFError):
        wire.recv_message(_FragmentingSocket(bytes(data[:-2])))
    bad = wire.encode_message({"x": 1}).replace(b'"v":1', b'"v":9')
    with pytest.raises(wire.WireError, match="wire version"):
        wire.recv_message(_FragmentingSocket(bad))


# ----------------------------------------------------------------------
# Failure payloads
# ----------------------------------------------------------------------


def _batch_error() -> BatchBudgetExceededError:
    from repro.data.columnar import ColumnarDatabase

    rng = np.random.default_rng(0)
    db = ColumnarDatabase(
        {
            "age": rng.integers(0, 100, 500),
            "opt_in": rng.integers(0, 2, 500).astype(bool),
        }
    )
    server = ReleaseServer(
        db.shard(1), accountant=PrivacyAccountant(total_epsilon=0.6)
    )
    requests = [
        ReleaseRequest(
            "laplace",
            0.25,
            IntegerBinning("age", 0, 100, 10).to_spec(),
            {"kind": "opt_in", "attr": "opt_in"},
            seed=s,
        )
        for s in range(4)
    ]
    with pytest.raises(BatchBudgetExceededError) as excinfo:
        server.handle_batch(requests)
    return excinfo.value


def test_batch_budget_error_wire_round_trip():
    exc = _batch_error()
    assert len(exc.responses) == 2
    doc = wire.loads(wire.dumps(wire.error_to_wire(exc)))
    back = wire.exception_from_wire(doc)
    assert isinstance(back, BatchBudgetExceededError)
    assert isinstance(back, BudgetExceededError)
    assert str(back) == str(exc)
    assert len(back.responses) == 2
    for got, want in zip(back.responses, exc.responses):
        assert np.array_equal(got.estimates, want.estimates)
        assert got.budget_remaining == want.budget_remaining
    assert back.failed_request.seed == exc.failed_request.seed
    assert back.failed_request.mechanism == exc.failed_request.mechanism


def test_batch_budget_error_pickle_round_trip():
    """The satellite bugfix: the exception must pickle with its payload."""
    exc = _batch_error()
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, BatchBudgetExceededError)
    assert str(clone) == str(exc)
    assert len(clone.responses) == len(exc.responses)
    for got, want in zip(clone.responses, exc.responses):
        assert np.array_equal(got.estimates, want.estimates)
    assert clone.failed_request.epsilon == exc.failed_request.epsilon


def test_plain_error_kinds_round_trip():
    for exc, kind in (
        (BudgetExceededError("over"), BudgetExceededError),
        (ValueError("bad value"), ValueError),
        (KeyError("missing"), KeyError),
    ):
        back = wire.exception_from_wire(
            wire.loads(wire.dumps(wire.error_to_wire(exc)))
        )
        assert isinstance(back, kind)
    unknown = wire.exception_from_wire({"kind": "Exotic", "message": "boom"})
    assert isinstance(unknown, wire.RemoteError)
    assert "Exotic" in str(unknown)
