"""The release server: caching, budget accounting, and exactness.

The service facade must be a pure convenience layer — every response
must be bit-identical to driving the library by hand with the same
seed, and every release must appear in the accountant's ledger under
the right policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy import (
    AttributePolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.data.columnar import ColumnarDatabase
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
)
from repro.service import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseServer,
    default_registry,
)


def _db(n: int = 4000, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase.from_records(
        [
            {"age": int(a), "opt_in": bool(o)}
            for a, o in zip(rng.integers(0, 100, n), rng.integers(0, 2, n))
        ]
    )


@pytest.fixture()
def server() -> ReleaseServer:
    return ReleaseServer(
        _db().shard(4), accountant=PrivacyAccountant(total_epsilon=2.0)
    )


BINNING = IntegerBinning("age", 0, 100, 10)
POLICY = OptInPolicy()


def _request(mechanism="osdp_laplace_l1", epsilon=0.25, **kw) -> ReleaseRequest:
    kw.setdefault("binning", BINNING)
    kw.setdefault("policy", POLICY)
    return ReleaseRequest(mechanism, epsilon, **kw)


class TestHandling:
    def test_response_shape_and_accounting(self, server):
        response = server.handle(_request(n_trials=5, seed=3))
        assert response.estimates.shape == (5, BINNING.n_bins)
        assert response.epsilon_spent == 0.25
        assert response.budget_remaining == pytest.approx(1.75)
        assert not response.cache_hit

    def test_bit_identical_to_library_path(self, server):
        response = server.handle(_request(n_trials=4, seed=9))
        hist = HistogramInput.from_columnar(
            server.db, HistogramQuery(BINNING), POLICY
        )
        reference = OsdpLaplaceL1Histogram(0.25).release_batch(
            hist, np.random.default_rng(9), 4
        )
        assert np.array_equal(response.estimates, reference)

    def test_seedless_requests_differ(self, server):
        a = server.handle(_request(n_trials=1))
        b = server.handle(_request(n_trials=1))
        assert not np.array_equal(a.estimates, b.estimates)

    def test_rejects_zero_trials(self, server):
        with pytest.raises(ValueError):
            server.handle(_request(n_trials=0))

    def test_unknown_mechanism_rejected(self, server):
        with pytest.raises(KeyError):
            server.handle(_request(mechanism="nope"))


class TestCaching:
    def test_mask_cached_per_shard_and_policy(self, server):
        server.handle(_request(seed=1))
        assert server.stats.mask_misses == server.n_shards
        assert server.stats.hist_misses == 1
        # Same policy + binning, different mechanism: everything hits.
        response = server.handle(_request(mechanism="osdp_rr", seed=1))
        assert response.cache_hit
        assert server.stats.mask_misses == server.n_shards
        assert server.stats.hist_hits == 1

    def test_new_binning_reuses_masks(self, server):
        server.handle(_request(seed=1))
        other = IntegerBinning("age", 0, 100, 25)
        response = server.handle(_request(binning=other, seed=1))
        assert not response.cache_hit  # new histogram...
        assert server.stats.mask_misses == server.n_shards  # ...cached masks
        assert server.stats.mask_hits == server.n_shards

    def test_new_policy_recomputes_masks(self, server):
        server.handle(_request(seed=1))
        minors = AttributePolicy("age", lambda v: v < 18, name="minors")
        server.handle(_request(policy=minors, seed=1))
        assert server.stats.mask_misses == 2 * server.n_shards

    def test_equal_objects_share_cache_entries(self, server):
        """Fresh-but-equal binnings/policies (a transport's per-request
        deserialization) hit via cache_key value identity."""
        policy_a = MinimumRelaxationPolicy(
            [SensitiveValuePolicy("age", {1, 2}), OptInPolicy()]
        )
        policy_b = MinimumRelaxationPolicy(
            [SensitiveValuePolicy("age", {1, 2}), OptInPolicy()]
        )
        binning_b = IntegerBinning("age", 0, 100, 10)
        assert policy_a is not policy_b and binning_b is not BINNING
        server.handle(_request(policy=policy_a, seed=1))
        response = server.handle(
            _request(policy=policy_b, binning=binning_b, seed=1)
        )
        assert response.cache_hit
        assert server.stats.mask_misses == server.n_shards

    def test_opaque_policies_fall_back_to_identity(self, server):
        minors = AttributePolicy("age", lambda v: v < 18, name="minors")
        assert minors.cache_key() is None
        server.handle(_request(policy=minors, seed=1))
        twin = AttributePolicy("age", lambda v: v < 18, name="minors")
        response = server.handle(_request(policy=twin, seed=1))
        assert not response.cache_hit

    def test_lru_touch_protects_hot_keys(self):
        """A hot (binning, policy) pair must survive churn from cold
        keys — eviction is LRU, not insertion-order FIFO."""
        server = ReleaseServer(_db(500).shard(2), cache_limit=3)
        hot = _request(seed=0)
        server.handle(hot)
        for i in range(5):
            cold = AttributePolicy("age", lambda v, t=i: v < t, name=f"c{i}")
            server.handle(_request(policy=cold, epsilon=0.1))
            response = server.handle(hot)
            assert response.cache_hit  # the hot pair was never evicted
        assert server.stats.evictions > 0

    def test_cache_limit_bounds_growth_and_evicts(self):
        server = ReleaseServer(
            _db(500).shard(2), cache_limit=3
        )
        for threshold in range(6):
            policy = AttributePolicy(
                "age", lambda v, t=threshold: v < t, name=f"t{threshold}"
            )
            server.handle(_request(policy=policy, epsilon=0.1))
        assert server.stats.evictions > 0
        assert len(server._keyed) <= 3
        # every cache entry still references a live key
        live = set(server._keyed)
        assert all(k[1] in live for k in server._mask_cache)
        assert all(
            b in live and p in live for b, p in server._hist_cache
        )

    def test_batch_traffic_hits_cache(self, server):
        requests = [
            _request(seed=s, n_trials=2) for s in range(4)
        ]
        responses = server.handle_batch(requests)
        assert len(responses) == 4
        assert [r.cache_hit for r in responses] == [False, True, True, True]
        assert server.budget_remaining == pytest.approx(1.0)


class TestBudget:
    def test_exhaustion_raises_and_stops_releasing(self, server):
        server.handle(_request(epsilon=1.9))
        with pytest.raises(BudgetExceededError):
            server.handle(_request(epsilon=0.2))
        assert server.stats.requests == 1

    def test_batch_rejects_malformed_requests_before_charging(self, server):
        """A typo in any batch request must fail fast, before budget is
        spent on the doomed batch."""
        with pytest.raises(KeyError):
            server.handle_batch([_request(seed=1), _request(mechanism="typo")])
        with pytest.raises(ValueError):
            server.handle_batch([_request(seed=1), _request(n_trials=0)])
        with pytest.raises(ValueError):
            server.handle_batch([_request(seed=1), _request(epsilon=-1.0)])
        assert server.accountant.spent == 0.0
        assert server.stats.requests == 0

    def test_batch_failure_keeps_charged_prefix(self, server):
        requests = [
            _request(epsilon=0.9, seed=1),
            _request(epsilon=0.9, seed=2),
            _request(epsilon=0.9, seed=3),  # cannot be afforded
        ]
        with pytest.raises(BatchBudgetExceededError) as excinfo:
            server.handle_batch(requests)
        error = excinfo.value
        assert len(error.responses) == 2
        assert error.failed_request is requests[2]
        # The prefix consumed real budget and its estimates survive.
        assert server.accountant.spent == pytest.approx(1.8)
        assert all(r.estimates.shape == (1, 10) for r in error.responses)

    def test_dp_mechanism_charged_under_p_all(self, server):
        server.handle(_request(mechanism="laplace", epsilon=0.5, seed=0))
        entry = server.accountant.ledger[-1]
        assert entry.policy.name == "P_all"
        assert entry.epsilon == 0.5

    def test_osdp_mechanism_charged_under_request_policy(self, server):
        server.handle(_request(seed=0))
        assert server.accountant.ledger[-1].policy is POLICY

    def test_no_accountant_means_unlimited(self):
        free = ReleaseServer(_db().shard(2))
        for _ in range(4):
            response = free.handle(_request(epsilon=10.0))
        assert response.budget_remaining is None


class TestConstruction:
    def test_wraps_plain_columnar(self):
        server = ReleaseServer(_db(), n_shards=3)
        assert server.n_shards == 3

    def test_registry_covers_the_pool(self):
        names = default_registry().names()
        for name in (
            "laplace",
            "dawa",
            "dawaz",
            "osdp_rr",
            "osdp_laplace",
            "osdp_laplace_l1",
            "osdp_hybrid",
        ):
            assert name in names

    def test_true_histogram_is_exact(self):
        db = _db(1234)
        server = ReleaseServer(db.shard(5))
        query = HistogramQuery(BINNING)
        assert np.array_equal(
            server.query_true_histogram(query), db.histogram(BINNING)
        )


class TestLiveUpdates:
    """append_records/expire_prefix keep the server bit-exact and only
    recompute the touched shards."""

    def _fresh_records(self, n, seed):
        rng = np.random.default_rng(seed)
        return [
            {"age": int(a), "opt_in": bool(o)}
            for a, o in zip(rng.integers(0, 100, n), rng.integers(0, 2, n))
        ]

    def test_append_matches_fresh_server(self):
        records = self._fresh_records(900, 3)
        extra = self._fresh_records(60, 4)
        server = ReleaseServer(
            ColumnarDatabase.from_records(records).shard(3)
        )
        server.handle(_request(seed=1))  # warm every cache
        server.append_records(extra)
        updated = server.handle(_request(seed=5))
        fresh = ReleaseServer(
            ColumnarDatabase.from_records(records + extra).shard(3)
        ).handle(_request(seed=5))
        assert np.array_equal(updated.estimates, fresh.estimates)

    def test_expire_matches_fresh_server(self):
        records = self._fresh_records(900, 6)
        server = ReleaseServer(
            ColumnarDatabase.from_records(records).shard(3)
        )
        server.handle(_request(seed=1))
        touched = server.expire_prefix(320)
        assert touched == [0, 1]
        updated = server.handle(_request(seed=5))
        fresh = ReleaseServer(
            ColumnarDatabase.from_records(records[320:]).shard(3)
        ).handle(_request(seed=5))
        assert np.array_equal(updated.estimates, fresh.estimates)

    def test_append_recomputes_only_the_tail_shard(self, server):
        server.handle(_request(seed=1))
        assert server.stats.mask_misses == server.n_shards
        server.append_records(self._fresh_records(10, 9))
        response = server.handle(_request(seed=1))
        assert not response.cache_hit  # histogram had to re-merge...
        assert server.stats.mask_misses == server.n_shards + 1  # ...one shard
        assert server.stats.mask_hits == server.n_shards - 1
        assert server.stats.index_misses == server.n_shards + 1

    def test_expire_recomputes_only_touched_shards(self, server):
        server.handle(_request(seed=1))
        server.expire_prefix(1)  # trims shard 0 only
        server.handle(_request(seed=1))
        assert server.stats.mask_misses == server.n_shards + 1
        # untouched shards' cached masks still serve
        assert server.stats.mask_hits == server.n_shards - 1

    def test_cache_hits_return_after_update(self, server):
        server.handle(_request(seed=1))
        server.append_records(self._fresh_records(5, 2))
        assert not server.handle(_request(seed=1)).cache_hit
        assert server.handle(_request(seed=1)).cache_hit

    def test_budget_keeps_accumulating_across_updates(self, server):
        server.handle(_request(epsilon=1.0))
        server.append_records(self._fresh_records(5, 2))
        server.handle(_request(epsilon=0.9))
        with pytest.raises(BudgetExceededError):
            server.handle(_request(epsilon=0.2))


class TestSpecRequests:
    def test_spec_shaped_requests_resolve_and_share_caches(self, server):
        live = server.handle(_request(seed=4, n_trials=2))
        wire = server.handle(
            _request(
                binning=BINNING.to_spec(),
                policy=POLICY.to_spec(),
                seed=4,
                n_trials=2,
            )
        )
        assert wire.cache_hit  # value identity across the wire form
        assert np.array_equal(live.estimates, wire.estimates)

    def test_malformed_spec_rejected_before_charging(self, server):
        with pytest.raises(Exception):
            server.handle(_request(policy={"kind": "nope"}))
        assert server.budget_remaining == pytest.approx(2.0)
