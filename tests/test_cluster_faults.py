"""Fault-injection lane: serving survives what kills a process.

Driven by the harness in :mod:`faults` (ChaosProxy, EndpointProcess),
this lane pins the PR's acceptance contract:

* SIGKILL of any single replicated endpoint mid-``release_batch``
  yields a **bit-identical** batch via the replica — zero failed
  requests, exactly one accountant charge per release.
* A shard range with no surviving replica degrades to an explicit
  :class:`PartialClusterError` carrying the already-charged prefix —
  in bounded time, never a hang.
* A retried release after an injected frame truncation never charges
  the accountant twice (idempotent ``req_id`` replay).
* Blackholed replies end in :class:`DeadlineExceeded`, not a hang.
* ``drain()`` answers in-flight requests and refuses new ones; the
  CLI's SIGTERM path drains and leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from faults import (
    ChaosProxy,
    EndpointProcess,
    loopback_skip_reason,
    make_db,
    slice_db,
)
from repro.api import (
    ClusterBackend,
    ClusterEndpoint,
    DeadlineExceeded,
    PartialClusterError,
    ReleaseRequest,
    RemoteBackend,
    RetryPolicy,
)
from repro.api.wire import (
    encode_message,
    recv_message,
    request_to_wire,
    send_message,
)
from repro.core.accountant import PrivacyAccountant
from repro.queries.histogram import IntegerBinning
from repro.service.rpc import RpcServer, connect
from repro.service.server import ReleaseServer

pytestmark = pytest.mark.faults

_SKIP_REASON = loopback_skip_reason()
if _SKIP_REASON:
    pytestmark = [pytest.mark.faults, pytest.mark.skip(reason=_SKIP_REASON)]

#: One demo table, sliced identically by endpoints, replicas, mirrors.
N, SEED = 4000, 0
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _request(n_bins: int = 10, epsilon: float = 0.25, seed: int = 9):
    """Distinct ``n_bins`` values force distinct cluster fan-outs."""
    return ReleaseRequest(
        "osdp_laplace_l1",
        epsilon,
        IntegerBinning("age", 0, 100, n_bins).to_spec(),
        POLICY_SPEC,
        n_trials=3,
        seed=seed,
    )


def _mirror(budget: float | None = 10.0) -> ReleaseServer:
    """A fresh single server over ALL the rows — the bit-identity
    reference for any cluster over slices of the same table."""
    accountant = PrivacyAccountant(budget) if budget is not None else None
    return ReleaseServer(make_db(N, SEED).shard(2), accountant=accountant)


def _assert_batch_identical(responses, reference):
    assert len(responses) == len(reference)
    for got, want in zip(responses, reference):
        assert np.array_equal(got.estimates, want.estimates)
        assert got.estimates.dtype == want.estimates.dtype
        assert got.epsilon_spent == want.epsilon_spent
        assert got.cache_hit == want.cache_hit


# ----------------------------------------------------------------------
# Cluster semantics over live (in-process) endpoints
# ----------------------------------------------------------------------


@pytest.fixture
def inproc_cluster():
    """Two shard ranges x two replicas, served by in-process RpcServers."""
    servers, endpoints = [], []
    for label, lo, hi in (("lo", 0, 2000), ("hi", 2000, 4000)):
        for replica in range(2):
            rpc = RpcServer(
                ReleaseServer(slice_db(N, SEED, lo, hi).shard(2))
            ).start()
            servers.append(rpc)
            endpoints.append(
                ClusterEndpoint(
                    *rpc.address,
                    shard_range=label,
                    name=f"{label}-r{replica}",
                )
            )
    try:
        yield endpoints, servers
    finally:
        for rpc in servers:
            rpc.close()


class TestClusterSemantics:
    def test_cluster_releases_are_bit_identical_to_one_server(
        self, inproc_cluster
    ):
        endpoints, _ = inproc_cluster
        requests = [_request(10), _request(10, seed=11), _request(20)]
        with ClusterBackend(
            endpoints, accountant=PrivacyAccountant(10.0)
        ) as backend:
            single = backend.handle(_request(25))
            batch = backend.handle_batch(requests)
            cluster_hist = backend.true_histogram(
                IntegerBinning("age", 0, 100, 10).to_spec()
            )
            spent = backend.accountant.spent
        mirror = _mirror()
        assert np.array_equal(
            single.estimates, mirror.handle(_request(25)).estimates
        )
        # Fresh mirror for the batch: the per-batch histogram memo
        # mirrors a *cold* single server's cache pattern.
        _assert_batch_identical(batch, _mirror().handle_batch(requests))
        assert [r.cache_hit for r in batch] == [False, True, False]
        assert np.array_equal(
            cluster_hist,
            _mirror().true_histogram(
                IntegerBinning("age", 0, 100, 10).to_spec()
            ),
        )
        assert spent == pytest.approx(4 * 0.25)

    def test_cluster_tier_serves_writes(self, inproc_cluster):
        """The write path (PR 8) replaced the old read-path-only
        refusal: appends and expiries go through the replicated commit
        protocol and reads stay bit-identical to a single server that
        took the same writes.  The full fault matrix lives in
        ``tests/test_cluster_writes.py``."""
        endpoints, _ = inproc_cluster
        with ClusterBackend(endpoints) as backend:
            backend.append_records([{"age": 1, "opt_in": True}])
            backend.expire_prefix(5)
            cluster_hist = backend.true_histogram(
                IntegerBinning("age", 0, 100, 10).to_spec()
            )
        mirror = _mirror()
        mirror.append_records([{"age": 1, "opt_in": True}])
        mirror.expire_prefix(5)
        assert np.array_equal(
            cluster_hist,
            mirror.true_histogram(IntegerBinning("age", 0, 100, 10).to_spec()),
        )


# ----------------------------------------------------------------------
# SIGKILL mid-batch (real endpoint processes)
# ----------------------------------------------------------------------


def _kill_before_fanout(backend, victim, fanout_index: int):
    """SIGKILL ``victim`` right before the Nth distinct histogram
    fan-out — deterministic mid-batch endpoint death."""
    original = backend._merged_histogram
    calls = {"n": 0}

    def hooked(request, memo):
        calls["n"] += 1
        if calls["n"] == fanout_index:
            victim.kill()
        return original(request, memo)

    backend._merged_histogram = hooked


class TestEndpointDeath:
    def test_sigkill_mid_batch_fails_over_bit_identically(self):
        """The acceptance criterion: kill one replicated endpoint in
        the middle of a batch; every request still succeeds, estimates
        are bit-identical to a single server, the accountant is
        charged exactly once per release."""
        procs = [
            EndpointProcess(N, SEED, lo, hi)
            for lo, hi in ((0, 2000), (0, 2000), (2000, 4000), (2000, 4000))
        ]
        endpoints = [
            ClusterEndpoint(
                p.host, p.port, shard_range=label, name=f"{label}-r{i % 2}"
            )
            for p, (label, i) in zip(
                procs, (("lo", 0), ("lo", 1), ("hi", 2), ("hi", 3))
            )
        ]
        requests = [_request(10), _request(20), _request(25)]
        try:
            with ClusterBackend(
                endpoints,
                accountant=PrivacyAccountant(10.0),
                retry=RetryPolicy(
                    max_attempts=3, base_delay=0.01, jitter=0.0
                ),
                timeout=10.0,
            ) as backend:
                # Health ranking is stable, so request 1 lands on the
                # first "lo" replica; killing it between fan-outs 1 and
                # 2 forces request 2 to fail over mid-batch.
                _kill_before_fanout(backend, procs[0], fanout_index=2)
                responses = backend.handle_batch(requests)
                stats = backend.cluster_stats()
                health = backend.health()
                spent = backend.accountant.spent
        finally:
            for proc in procs:
                proc.close()
        mirror = _mirror()
        _assert_batch_identical(responses, mirror.handle_batch(requests))
        assert spent == pytest.approx(3 * 0.25)
        assert stats["failovers"] >= 1
        assert stats["unserved_ranges"] == 0
        assert health["lo-r0"]["state"] != "healthy"
        assert health["lo-r1"]["state"] == "healthy"

    def test_sole_replica_death_degrades_to_partial_error(self):
        """No replica left for a range: an explicit, prefix-carrying
        PartialClusterError in bounded time — never a hang."""
        procs = [
            EndpointProcess(N, SEED, 0, 2000),
            EndpointProcess(N, SEED, 2000, 4000),
        ]
        endpoints = [
            ClusterEndpoint(procs[0].host, procs[0].port, shard_range="lo"),
            ClusterEndpoint(procs[1].host, procs[1].port, shard_range="hi"),
        ]
        requests = [_request(10), _request(20)]
        try:
            with ClusterBackend(
                endpoints,
                accountant=PrivacyAccountant(10.0),
                retry=RetryPolicy(
                    max_attempts=2, base_delay=0.01, jitter=0.0
                ),
                timeout=5.0,
            ) as backend:
                _kill_before_fanout(backend, procs[1], fanout_index=2)
                started = time.monotonic()
                with pytest.raises(PartialClusterError) as excinfo:
                    backend.handle_batch(requests)
                elapsed = time.monotonic() - started
                spent = backend.accountant.spent
        finally:
            for proc in procs:
                proc.close()
        error = excinfo.value
        assert error.shard_range == "hi"
        assert error.failed_request is requests[1]
        assert len(error.responses) == 1  # the charged prefix survives
        mirror = _mirror()
        assert np.array_equal(
            error.responses[0].estimates,
            mirror.handle(requests[0]).estimates,
        )
        assert spent == pytest.approx(0.25)  # prefix charged, tail not
        assert elapsed < 60.0  # bounded by retry policy, not a hang


# ----------------------------------------------------------------------
# Truncation, retries, and the exactly-once charge
# ----------------------------------------------------------------------


@pytest.fixture
def proxied_server():
    """A metered RpcServer reached only through a ChaosProxy."""
    server = ReleaseServer(
        make_db(N, SEED).shard(2), accountant=PrivacyAccountant(10.0)
    )
    with RpcServer(server).start() as rpc:
        with ChaosProxy(*rpc.address) as proxy:
            yield rpc, server, proxy


RETRY = RetryPolicy(max_attempts=5, base_delay=0.02, jitter=0.0)


class TestTruncationNeverDoubleCharges:
    def test_truncated_reply_is_replayed_not_recharged(
        self, proxied_server
    ):
        """The ambiguous failure: the op ran, the reply was lost.  The
        retry must re-serve the cached reply — one charge, same bits."""
        rpc, server, proxy = proxied_server
        with RemoteBackend(
            proxy.host, proxy.port, timeout=10.0, retry=RETRY
        ) as backend:
            proxy.truncate_after(20, direction="s2c")
            response = backend.handle(_request())
        assert np.array_equal(
            response.estimates, _mirror().handle(_request()).estimates
        )
        assert server.accountant.spent == pytest.approx(0.25)
        assert rpc.transport_stats["idempotent_replays"] == 1

    def test_truncated_request_is_resent_without_charge(
        self, proxied_server
    ):
        """The unambiguous failure: the request never arrived whole, so
        the op never ran; the resend is the first execution."""
        rpc, server, proxy = proxied_server
        with RemoteBackend(
            proxy.host, proxy.port, timeout=10.0, retry=RETRY
        ) as backend:
            proxy.truncate_after(30, direction="c2s")
            response = backend.handle(_request())
        assert np.array_equal(
            response.estimates, _mirror().handle(_request()).estimates
        )
        assert server.accountant.spent == pytest.approx(0.25)

    def test_connection_reset_mid_conversation_recovers(
        self, proxied_server
    ):
        rpc, server, proxy = proxied_server
        with RemoteBackend(
            proxy.host, proxy.port, timeout=10.0, retry=RETRY
        ) as backend:
            assert backend.ping()["n_records"] == N
            proxy.reset_connections()
            response = backend.handle(_request())
        assert np.array_equal(
            response.estimates, _mirror().handle(_request()).estimates
        )
        assert server.accountant.spent == pytest.approx(0.25)


class TestDeadlines:
    def test_blackholed_replies_end_in_deadline_not_hang(
        self, proxied_server
    ):
        rpc, server, proxy = proxied_server
        proxy.set_drop(True, direction="s2c")
        with RemoteBackend(
            proxy.host,
            proxy.port,
            timeout=0.2,
            retry=RetryPolicy(
                max_attempts=50, base_delay=0.01, jitter=0.0, deadline=1.0
            ),
        ) as backend:
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded, match="1.0s deadline"):
                backend.ping()
            elapsed = time.monotonic() - started
        assert 0.5 <= elapsed < 30.0

    def test_server_refuses_work_past_the_carried_deadline(self):
        """A request whose client-side patience has already run out is
        rejected before any budget is spent."""
        server = ReleaseServer(
            make_db(N, SEED).shard(2), accountant=PrivacyAccountant(10.0)
        )
        with RpcServer(server).start() as rpc:
            sock = connect(*rpc.address, timeout=10.0)
            try:
                send_message(
                    sock,
                    {
                        "op": "release",
                        "request": request_to_wire(_request()),
                        "deadline": 0.0,
                    },
                )
                reply = recv_message(sock)
            finally:
                sock.close()
            assert reply["err"]["kind"] == "DeadlineExceeded"
            assert server.accountant.spent == 0.0
            assert rpc.transport_stats["deadline_rejections"] == 1


class TestIdempotentReplay:
    def test_same_req_id_runs_once_and_replays_the_reply(self):
        server = ReleaseServer(
            make_db(N, SEED).shard(2), accountant=PrivacyAccountant(10.0)
        )
        message = {
            "op": "release",
            "request": request_to_wire(_request()),
            "req_id": "retry-after-ambiguous-failure",
        }
        with RpcServer(server).start() as rpc:
            sock = connect(*rpc.address, timeout=10.0)
            try:
                send_message(sock, message)
                first = recv_message(sock)
                send_message(sock, message)
                second = recv_message(sock)
            finally:
                sock.close()
            assert rpc.transport_stats["idempotent_replays"] == 1
        assert "ok" in first and "ok" in second
        assert np.array_equal(
            first["ok"]["estimates"], second["ok"]["estimates"]
        )
        assert server.accountant.spent == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_drain_answers_inflight_and_refuses_new_work(self):
        with RpcServer(ReleaseServer(make_db(800, SEED).shard(2))).start() as rpc:
            payload = encode_message({"op": "ping"})
            sock = connect(*rpc.address, timeout=10.0)
            try:
                # Commit an exchange: ship the length prefix plus a
                # partial body, so the handler is mid-read (in-flight).
                sock.sendall(payload[:6])
                deadline = time.monotonic() + 10.0
                while rpc._inflight == 0:
                    assert time.monotonic() < deadline, "never in-flight"
                    time.sleep(0.005)
                drainer = threading.Thread(
                    target=rpc.drain, kwargs={"grace": 10.0}
                )
                drainer.start()
                time.sleep(0.1)  # drain is now waiting on the exchange
                sock.sendall(payload[6:])  # finish the frame
                reply = recv_message(sock)  # ... and still get answered
                drainer.join(timeout=10.0)
                assert not drainer.is_alive()
            finally:
                sock.close()
            assert reply["ok"]["n_records"] == 800
            assert rpc.transport_stats["drains"] == 1
            assert rpc.transport_stats["aborted_in_flight"] == 0
            with pytest.raises(OSError):
                connect(*rpc.address, timeout=2.0)

    def test_read_timeout_unpins_a_stalled_connection(self):
        with RpcServer(
            ReleaseServer(make_db(800, SEED).shard(2)), read_timeout=0.2
        ).start() as rpc:
            payload = encode_message({"op": "ping"})
            sock = connect(*rpc.address, timeout=10.0)
            try:
                sock.sendall(payload[:6])  # stall mid-frame, forever
                deadline = time.monotonic() + 10.0
                while rpc.transport_stats["read_timeouts"] == 0:
                    assert time.monotonic() < deadline, "never timed out"
                    time.sleep(0.01)
                # The server hung up on us, not the other way round.
                sock.settimeout(5.0)
                try:
                    data = sock.recv(1)
                except OSError:  # some stacks surface the cut as a reset
                    data = b""
                assert data == b""
            finally:
                sock.close()


# ----------------------------------------------------------------------
# Connect retries (client startup racing `repro.cli serve`)
# ----------------------------------------------------------------------


class TestConnectRetry:
    def test_connect_retries_bridge_a_late_starting_server(self):
        reserve = socket.socket()
        reserve.bind(("127.0.0.1", 0))
        port = reserve.getsockname()[1]
        reserve.close()
        holder: dict = {}

        def start_late():
            time.sleep(0.4)
            holder["rpc"] = RpcServer(
                ReleaseServer(make_db(800, SEED).shard(2)), port=port
            ).start()

        starter = threading.Thread(target=start_late)
        starter.start()
        try:
            with RemoteBackend(
                "127.0.0.1",
                port,
                timeout=10.0,
                connect_retry=RetryPolicy(
                    max_attempts=10, base_delay=0.1, jitter=0.0
                ),
            ) as backend:
                assert backend.ping()["n_records"] == 800
        finally:
            starter.join(timeout=10.0)
            if "rpc" in holder:
                holder["rpc"].close()

    def test_fail_fast_mode_fails_on_the_first_refusal(self):
        reserve = socket.socket()
        reserve.bind(("127.0.0.1", 0))
        port = reserve.getsockname()[1]
        reserve.close()
        started = time.monotonic()
        with pytest.raises(OSError):
            RemoteBackend("127.0.0.1", port, connect_retry=None)
        assert time.monotonic() - started < 5.0


# ----------------------------------------------------------------------
# The CLI's SIGTERM drain (full subprocess, shm store)
# ----------------------------------------------------------------------


def _live_shm_segments() -> set[str]:
    from repro.data.store import SEGMENT_PREFIX

    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


@pytest.mark.shm
class TestCliSigtermDrain:
    def test_sigterm_drains_and_leaves_dev_shm_clean(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        before = _live_shm_segments()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.cli",
                "serve",
                "--port", "0",
                "--records", "600",
                "--shards", "2",
                "--workers",
                "--shm",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            address = None
            for _ in range(50):  # the banner is the first line printed
                line = proc.stdout.readline()
                assert line, "serve exited before announcing its address"
                match = re.search(
                    r"serving \d+ records on ([\d.]+):(\d+)", line
                )
                if match:
                    address = (match.group(1), int(match.group(2)))
                    break
            assert address is not None
            # Prove it serves, then stop it the orchestrator's way.
            with RemoteBackend(*address, timeout=10.0) as backend:
                response = backend.handle(_request())
                assert response.estimates.shape == (3, 10)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining" in out
        assert "shutdown complete" in out
        leaked = _live_shm_segments() - before
        assert not leaked, f"SIGTERM drain leaked shm segments: {leaked}"
