"""The OsdpClient / Backend surface: one client, bit-identical backends.

The API layer is a routing layer — it must never change *what* is
computed.  These tests pin:

* in-process, sharded and worker-pool backends returning bit-identical
  responses to each other and to the direct library path;
* the keyword/request construction surface of ``OsdpClient.release``;
* ``HistogramMechanism.run`` as the one registry-driven entry point
  (database flavors, specs, trial modes, accounting) and the
  deprecation shims over the old four-way split;
* the public-API snapshot of ``repro.api`` / ``repro`` exports.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
import repro.api
from repro.api import (
    Backend,
    InProcessBackend,
    OsdpClient,
    ReleaseRequest,
    ShardedBackend,
)
from repro.core.accountant import PrivacyAccountant
from repro.core.policy import AllSensitivePolicy, OptInPolicy
from repro.data.columnar import ColumnarDatabase
from repro.data.database import Database
from repro.mechanisms.base import (
    HistogramMechanism,
    register_release_source,
    resolve_histogram_source,
)
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
)


def _db(n: int = 3000, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


BINNING = IntegerBinning("age", 0, 100, 10)
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _reference(db, epsilon=0.25, seed=9, n_trials=4) -> np.ndarray:
    hist = HistogramInput.from_columnar(
        db, HistogramQuery(BINNING), OptInPolicy()
    )
    return OsdpLaplaceL1Histogram(epsilon).release_batch(
        hist, np.random.default_rng(seed), n_trials
    )


class TestClientBackends:
    def test_in_process_bit_identical_to_library(self):
        db = _db()
        with OsdpClient.in_process(db) as client:
            response = client.release(
                mechanism="osdp_laplace_l1",
                epsilon=0.25,
                binning=BINNING,
                policy=POLICY_SPEC,
                n_trials=4,
                seed=9,
            )
        assert np.array_equal(response.estimates, _reference(db))

    def test_sharded_and_pool_backends_match_in_process(self):
        db = _db()
        request = ReleaseRequest(
            "osdp_laplace_l1", 0.25, BINNING.to_spec(), POLICY_SPEC,
            n_trials=4, seed=9,
        )
        with OsdpClient.in_process(db) as base:
            want = base.release(request).estimates
        with OsdpClient.sharded(db, n_shards=3) as sharded:
            assert np.array_equal(sharded.release(request).estimates, want)
        with OsdpClient.sharded(db, n_shards=3, workers=True) as pooled:
            assert isinstance(pooled.backend, ShardedBackend)
            assert pooled.backend.pool is not None
            assert np.array_equal(pooled.release(request).estimates, want)

    def test_backends_satisfy_protocol(self):
        backend = InProcessBackend(_db(200))
        assert isinstance(backend, Backend)

    def test_release_kwargs_and_request_are_exclusive(self):
        client = OsdpClient.in_process(_db(200))
        request = ReleaseRequest(
            "laplace", 0.5, BINNING, AllSensitivePolicy()
        )
        with pytest.raises(ValueError, match="not both"):
            client.release(request, mechanism="laplace")
        # every keyword is rejected next to a request — a silently
        # ignored seed/n_trials would fake reproducibility
        with pytest.raises(ValueError, match="not both"):
            client.release(request, seed=42)
        with pytest.raises(ValueError, match="not both"):
            client.release(request, n_trials=100)
        with pytest.raises(ValueError, match="not both"):
            client.release(request, label="x")
        with pytest.raises(ValueError, match="at least"):
            client.release(epsilon=0.5)

    def test_true_histogram_and_live_updates(self):
        db = _db(1000)
        with OsdpClient.sharded(db, n_shards=2) as client:
            before = client.true_histogram(BINNING)
            assert np.array_equal(before, db.histogram(BINNING, BINNING.n_bins))
            client.append_records(
                [{"age": 5, "opt_in": True}, {"age": 5, "opt_in": False}]
            )
            after = client.true_histogram(BINNING)
            assert after[0] == before[0] + 2
            client.expire_prefix(10)
            assert client.true_histogram(BINNING).sum() == before.sum() - 8

    def test_batch_and_accounting(self):
        client = OsdpClient.in_process(
            _db(), accountant=PrivacyAccountant(total_epsilon=1.0)
        )
        requests = [
            ReleaseRequest(
                "laplace", 0.25, BINNING.to_spec(), POLICY_SPEC, seed=i
            )
            for i in range(3)
        ]
        responses = client.release_batch(requests)
        assert [r.budget_remaining for r in responses] == [0.75, 0.5, 0.25]

    def test_sharded_rejects_conflicting_options(self):
        db = _db(300).shard(2)
        with pytest.raises(ValueError, match="cannot reshard"):
            ShardedBackend(db, n_shards=5)
        with pytest.raises(ValueError, match="not both"):
            ShardedBackend(_db(300), workers=True, executor=object())


class TestMechanismRun:
    """`run` is the single entry point the old four methods folded into."""

    def test_run_single_release_matches_release(self):
        db = _db(500)
        hist = HistogramInput.from_columnar(
            db, HistogramQuery(BINNING), OptInPolicy()
        )
        mech = OsdpLaplaceL1Histogram(0.5)
        want = mech.release(hist, np.random.default_rng(3))
        got = mech.run(hist, np.random.default_rng(3))
        assert np.array_equal(got, want)

    def test_run_from_database_flavors_bit_identical(self):
        columnar = _db(800)
        row = Database(columnar.iter_records())
        sharded = columnar.shard(3)
        mech = OsdpLaplaceL1Histogram(0.5)
        outs = [
            mech.run(
                source,
                np.random.default_rng(11),
                n_trials=3,
                binning=BINNING,
                policy=OptInPolicy(),
            )
            for source in (columnar, row, sharded)
        ]
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])

    def test_run_accepts_specs_and_charges(self):
        accountant = PrivacyAccountant(total_epsilon=1.0)
        out = OsdpLaplaceL1Histogram(0.5).run(
            _db(400),
            np.random.default_rng(0),
            n_trials=2,
            binning=BINNING.to_spec(),
            policy=POLICY_SPEC,
            accountant=accountant,
            label="spec-run",
        )
        assert out.shape == (2, BINNING.n_bins)
        assert accountant.remaining == pytest.approx(0.5)
        assert accountant.ledger[0].label == "spec-run"

    def test_run_sequence_rngs_is_per_trial_mode(self):
        db = _db(400)
        hist = HistogramInput.from_columnar(
            db, HistogramQuery(BINNING), OptInPolicy()
        )
        mech = OsdpLaplaceL1Histogram(0.5)
        rngs = [np.random.default_rng(s) for s in (1, 2)]
        want = np.stack(
            [mech.release(hist, np.random.default_rng(s)) for s in (1, 2)]
        )
        assert np.array_equal(mech.run(hist, rngs), want)

    def test_run_rejects_query_and_binning_together(self):
        with pytest.raises(ValueError, match="not both"):
            LaplaceHistogram(0.5).run(
                _db(100),
                np.random.default_rng(0),
                query=HistogramQuery(BINNING),
                binning=BINNING,
            )

    def test_run_requires_query_and_policy_for_databases(self):
        with pytest.raises(ValueError, match="requires a query"):
            LaplaceHistogram(0.5).run(_db(100), np.random.default_rng(0))

    def test_run_rejects_unknown_sources(self):
        with pytest.raises(TypeError, match="register_release_source"):
            LaplaceHistogram(0.5).run(42, np.random.default_rng(0))

    def test_register_release_source_extends_dispatch(self):
        class PreCounted:
            def __init__(self, x, x_ns):
                self.x, self.x_ns = x, x_ns

        register_release_source(
            lambda source: isinstance(source, PreCounted),
            lambda source, query, policy: HistogramInput.from_arrays(
                source.x, source.x_ns
            ),
        )
        try:
            source = PreCounted([5, 3, 0], [2, 3, 0])
            hist = resolve_histogram_source(source, None, None)
            assert np.array_equal(hist.x, [5, 3, 0])
            out = LaplaceHistogram(0.5).run(source, np.random.default_rng(0))
            assert out.shape == (3,)
        finally:
            from repro.mechanisms import base as base_module

            base_module._SOURCE_BUILDERS.pop()

    def test_deprecated_shims_still_work_and_warn(self):
        db = _db(400)
        mech = OsdpLaplaceL1Histogram(0.5)
        with pytest.warns(DeprecationWarning, match="release_from_database"):
            single = mech.release_from_database(
                db, HistogramQuery(BINNING), OptInPolicy(),
                np.random.default_rng(7),
            )
        assert np.array_equal(
            single,
            mech.run(
                db, np.random.default_rng(7),
                binning=BINNING, policy=OptInPolicy(),
            ),
        )
        with pytest.warns(DeprecationWarning, match="release_batch_from_database"):
            batch = mech.release_batch_from_database(
                db, HistogramQuery(BINNING), OptInPolicy(),
                np.random.default_rng(7), 3,
            )
        assert np.array_equal(
            batch,
            mech.run(
                db, np.random.default_rng(7), n_trials=3,
                binning=BINNING, policy=OptInPolicy(),
            ),
        )


class TestPublicApiSnapshot:
    """Pin the export surface a release would ship."""

    def test_repro_api_exports(self):
        assert sorted(repro.api.__all__) == [
            "Backend",
            "BatchBudgetExceededError",
            "ClusterBackend",
            "ClusterEndpoint",
            "ClusterWriteError",
            "DeadlineExceeded",
            "InProcessBackend",
            "OsdpClient",
            "PartialClusterError",
            "ReleaseRequest",
            "ReleaseResponse",
            "RemoteBackend",
            "RetryPolicy",
            "ServerOverloaded",
            "ShardedBackend",
        ]
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_repro_top_level_exports(self):
        assert sorted(repro.__all__) == [
            "AllSensitivePolicy",
            "AttributePolicy",
            "DPGuarantee",
            "Dawa",
            "DawaZ",
            "HistogramInput",
            "LambdaPolicy",
            "LaplaceHistogram",
            "OSDPGuarantee",
            "OptInPolicy",
            "OsdpClient",
            "OsdpLaplaceHistogram",
            "OsdpLaplaceL1Histogram",
            "OsdpRR",
            "OsdpRRHistogram",
            "Policy",
            "PrivacyAccountant",
            "ReleaseRequest",
            "ReleaseResponse",
            "SuppressHistogram",
            "__version__",
        ]
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_mechanism_surface_is_run_plus_shims(self):
        # The dispatch contract: `run` is the entry point; the old
        # database entry points exist only as deprecation shims.
        assert hasattr(HistogramMechanism, "run")
        for shim in ("release_from_database", "release_batch_from_database"):
            assert "Deprecated" in getattr(HistogramMechanism, shim).__doc__
