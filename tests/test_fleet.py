"""The fleet launcher: topology validation, supervision, restarts.

Covers :mod:`repro.service.fleet` — the process tree behind
``repro.cli cluster``: topology files must describe a contiguous
tiling with unambiguous replica homes; the supervisor starts children
that report real addresses; a SIGKILL'd child is restarted **on its
recorded port** (clients keep their endpoint list); backoff pacing is
deterministic under a seeded rng.
"""

from __future__ import annotations

import os
import random
import signal
import time

import numpy as np
import pytest

from faults import loopback_skip_reason
from repro.api import RemoteBackend, RetryPolicy
from repro.service.fleet import (
    DEFAULT_RESTART_POLICY,
    FleetSupervisor,
    FleetTopology,
    TableSpec,
    build_table,
)

pytestmark = pytest.mark.faults

_SKIP_REASON = loopback_skip_reason()
if _SKIP_REASON:
    pytestmark = [pytest.mark.faults, pytest.mark.skip(reason=_SKIP_REASON)]


def _doc(records: int = 600, replicas: int = 1, wal_root=None) -> dict:
    half = records // 2

    def replica_docs(name):
        return [
            {
                "port": 0,
                **(
                    {"wal_dir": os.path.join(wal_root, f"{name}-r{i}")}
                    if wal_root
                    else {}
                ),
            }
            for i in range(replicas)
        ]

    return {
        "table": {"records": records, "seed": 3, "shards": 2},
        "ranges": [
            {"name": "lo", "lo": 0, "hi": half,
             "replicas": replica_docs("lo")},
            {"name": "hi", "lo": half, "hi": records,
             "replicas": replica_docs("hi")},
        ],
    }


FAST = dict(
    retry=RetryPolicy(
        max_attempts=5, base_delay=0.05, multiplier=1.0, jitter=0.0
    ),
    poll_interval=0.05,
    stable_after=0.5,
)


# ----------------------------------------------------------------------
# Topology files
# ----------------------------------------------------------------------


class TestTopology:
    def test_round_trips_a_valid_doc(self, tmp_path):
        import json

        path = tmp_path / "topology.json"
        path.write_text(json.dumps(_doc(records=600, replicas=2)))
        topology = FleetTopology.from_file(path)
        assert topology.range_order == ("lo", "hi")
        assert [ep.name for ep in topology.endpoints] == [
            "lo-r0", "lo-r1", "hi-r0", "hi-r1",
        ]
        assert topology.endpoints[0].shard_range == (0, 300)
        assert topology.endpoints[-1].shard_range == (300, 600)
        assert topology.table == TableSpec(records=600, seed=3, shards=2)

    def test_ranges_must_tile_contiguously(self):
        doc = _doc()
        doc["ranges"][1]["lo"] = 400  # gap after [0, 300)
        with pytest.raises(ValueError, match="expected 300"):
            FleetTopology.from_dict(doc)
        doc = _doc()
        doc["ranges"][1]["hi"] = 500  # short of the 600-record table
        with pytest.raises(ValueError, match="tile it exactly"):
            FleetTopology.from_dict(doc)
        doc = _doc()
        doc["ranges"][0]["hi"] = 0
        with pytest.raises(ValueError, match="empty"):
            FleetTopology.from_dict(doc)

    def test_replicas_required_and_homes_unique(self, tmp_path):
        doc = _doc()
        doc["ranges"][0]["replicas"] = []
        with pytest.raises(ValueError, match="no replicas"):
            FleetTopology.from_dict(doc)
        doc = _doc(replicas=2, wal_root=str(tmp_path))
        doc["ranges"][0]["replicas"][1]["wal_dir"] = doc["ranges"][0][
            "replicas"
        ][0]["wal_dir"]
        with pytest.raises(ValueError, match="share a wal_dir"):
            FleetTopology.from_dict(doc)
        doc = _doc(replicas=2)
        for rep in doc["ranges"][0]["replicas"]:
            rep["port"] = 7201
        with pytest.raises(ValueError, match="share an address"):
            FleetTopology.from_dict(doc)

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetTopology.from_dict({"table": {"records": 10}})


# ----------------------------------------------------------------------
# The table builder (the replication contract's floor)
# ----------------------------------------------------------------------


class TestBuildTable:
    def test_same_seed_is_bit_identical(self):
        a = build_table(records=500, seed=11)
        b = build_table(records=500, seed=11)
        assert sorted(a.column_names) == sorted(b.column_names)
        for name in a.column_names:
            assert np.array_equal(np.asarray(a[name]), np.asarray(b[name]))

    def test_different_seed_differs(self):
        a = build_table(records=500, seed=11)
        b = build_table(records=500, seed=12)
        assert not np.array_equal(np.asarray(a["age"]), np.asarray(b["age"]))


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------


class TestSupervisor:
    def test_start_serve_drain(self):
        topology = FleetTopology.from_dict(_doc(records=600))
        with FleetSupervisor(topology, **FAST) as supervisor:
            supervisor.start()
            health = supervisor.health()
            assert set(health) == {"lo-r0", "hi-r0"}
            assert all(doc["alive"] for doc in health.values())
            endpoints = supervisor.endpoints()
            assert [ep.shard_range for ep in endpoints] == [
                (0, 300), (300, 600),
            ]
            with RemoteBackend(
                endpoints[0].host, endpoints[0].port, timeout=10.0
            ) as backend:
                assert backend.ping()["n_records"] == 300
            banner = supervisor.events()
            assert any("lo-r0 serving [0,300)" in line for line in banner)
            supervisor.drain(grace=5.0)
            assert not any(
                doc["alive"] for doc in supervisor.health().values()
            )

    def test_sigkilled_child_restarts_on_its_port(self):
        topology = FleetTopology.from_dict(_doc(records=600))
        with FleetSupervisor(topology, **FAST) as supervisor:
            supervisor.start()
            victim = supervisor.health()["lo-r0"]
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while True:
                doc = supervisor.health()["lo-r0"]
                if (
                    doc["alive"]
                    and doc["pid"] != victim["pid"]
                    and doc["restarts"] == 1
                ):
                    break
                assert time.monotonic() < deadline, "child never restarted"
                time.sleep(0.05)
            assert doc["address"] == victim["address"]  # same port
            with RemoteBackend(*doc["address"], timeout=10.0) as backend:
                assert backend.ping()["n_records"] == 300
            log = "\n".join(supervisor.events())
            assert "died" in log and "restart" in log

    def test_backoff_is_seed_deterministic(self):
        topology = FleetTopology.from_dict(_doc(records=600))
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.2, multiplier=2.0, jitter=0.25
        )
        a = FleetSupervisor(topology, retry=policy, rng=random.Random(7))
        b = FleetSupervisor(topology, retry=policy, rng=random.Random(7))
        pauses_a = [a.backoff(i) for i in range(6)]
        pauses_b = [b.backoff(i) for i in range(6)]
        assert pauses_a == pauses_b
        # The jitter actually draws from the rng (not a fixed pause).
        c = FleetSupervisor(topology, retry=policy, rng=random.Random(8))
        assert [c.backoff(i) for i in range(6)] != pauses_a

    def test_default_restart_policy_is_bounded(self):
        assert DEFAULT_RESTART_POLICY.max_attempts == 6
        assert DEFAULT_RESTART_POLICY.max_delay == 5.0
