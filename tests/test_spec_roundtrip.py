"""Property-based round trip of the policy/binning wire format.

The shard-worker runtime's contract is that policies and binnings cross
process boundaries as small dicts losslessly: for any object in the
algebra, ``to_spec`` -> ``json.dumps`` -> ``json.loads`` -> ``from_spec``
yields an object with an **identical** ``cache_key()`` (so caches treat
the reconstruction as the same policy) and **bit-identical** masks/bin
indices on every column bundle.  Hypothesis drives random algebra
policies, predicate-language specs, binnings, and record sets through
that loop; deterministic tests pin the opaque-policy failure mode and
the registry errors.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    IntersectionPolicy,
    LambdaPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
    SpecUnsupported,
)
from repro.core.policy_language import (
    PolicySpecError,
    compile_policy,
    policy_from_spec,
    policy_spec_fingerprint,
    policy_to_spec,
)
from repro.data.columnar import ColumnarDatabase
from repro.data.tippers import SensitiveAPPolicy, Trajectory, trajectory_columns
from repro.queries.histogram import (
    CategoricalBinning,
    IntegerBinning,
    Product2DBinning,
    binning_from_spec,
    binning_to_spec,
)

MAX_EXAMPLES = 40
CITIES = ("amber", "blue", "coral", "dune")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def flat_records(draw):
    n = draw(st.integers(min_value=1, max_value=32))
    return [
        {"age": a, "city": c, "opt_in": o}
        for a, c, o in zip(
            draw(st.lists(st.integers(0, 99), min_size=n, max_size=n)),
            draw(st.lists(st.sampled_from(CITIES), min_size=n, max_size=n)),
            draw(st.lists(st.booleans(), min_size=n, max_size=n)),
        )
    ]


def leaf_specs():
    """Random predicate-language leaves over the flat schema."""
    comparisons = st.sampled_from(["==", "!=", "<", "<=", ">", ">="]).flatmap(
        lambda op: st.integers(0, 99).map(
            lambda v: {"attr": "age", "op": op, "value": v}
        )
    )
    memberships = st.sampled_from(["in", "not_in"]).flatmap(
        lambda op: st.lists(
            st.sampled_from(CITIES), min_size=1, max_size=4, unique=True
        ).map(lambda vs: {"attr": "city", "op": op, "value": vs})
    )
    return st.one_of(comparisons, memberships)


def predicate_specs():
    return st.recursive(
        leaf_specs(),
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                lambda subs: {"any": subs}
            ),
            st.lists(children, min_size=1, max_size=3).map(
                lambda subs: {"all": subs}
            ),
            children.map(lambda sub: {"not": sub}),
        ),
        max_leaves=5,
    )


def serializable_policies():
    """The whole serializable policy algebra over the flat schema."""
    leaves = st.one_of(
        st.sets(st.sampled_from(CITIES), max_size=len(CITIES)).map(
            lambda vs: SensitiveValuePolicy("city", vs)
        ),
        st.sets(st.integers(0, 30), min_size=1, max_size=5).map(
            lambda vs: SensitiveValuePolicy("age", vs)
        ),
        st.just(OptInPolicy()),
        st.just(AllSensitivePolicy()),
        st.just(AllNonSensitivePolicy()),
        predicate_specs().map(compile_policy),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                MinimumRelaxationPolicy
            ),
            st.lists(children, min_size=1, max_size=3).map(IntersectionPolicy),
        ),
        max_leaves=6,
    )


def binnings():
    integer = st.tuples(
        st.integers(0, 10), st.integers(1, 10), st.integers(1, 7)
    ).map(lambda t: IntegerBinning("age", t[0], t[0] + 10 * t[1], t[2]))
    categorical = st.permutations(CITIES).map(
        lambda domain: CategoricalBinning("city", domain)
    )
    flat = st.one_of(integer, categorical)
    return st.one_of(
        flat, st.tuples(flat, flat).map(lambda t: Product2DBinning(*t))
    )


def _json_round_trip(spec):
    return json.loads(json.dumps(spec))


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(records=flat_records(), policy=serializable_policies())
def test_policy_round_trip_masks_and_cache_key(records, policy):
    spec = policy_to_spec(policy)
    rebuilt = policy_from_spec(_json_round_trip(spec))
    assert rebuilt.cache_key() == policy.cache_key()
    assert rebuilt.cache_key() is not None
    db = ColumnarDatabase.from_records(records)
    assert np.array_equal(
        rebuilt.evaluate_batch(db), policy.evaluate_batch(db)
    )
    # per-record semantics survive too
    assert [rebuilt(r) for r in records] == [policy(r) for r in records]


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(policy=serializable_policies())
def test_round_trip_is_idempotent(policy):
    """to_spec of the reconstruction reproduces the spec exactly."""
    spec = policy_to_spec(policy)
    rebuilt = policy_from_spec(_json_round_trip(spec))
    assert policy_to_spec(rebuilt) == spec


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(spec=predicate_specs(), records=flat_records())
def test_predicate_spec_compile_round_trip(spec, records):
    policy = compile_policy(spec)
    rebuilt = policy_from_spec(_json_round_trip(policy_to_spec(policy)))
    assert rebuilt.cache_key() == policy.cache_key()
    db = ColumnarDatabase.from_records(records)
    assert np.array_equal(
        rebuilt.evaluate_batch(db), policy.evaluate_batch(db)
    )
    # the fingerprint (ledger identity) is canonical across the trip
    assert policy_spec_fingerprint(
        _json_round_trip(spec)
    ) == policy_spec_fingerprint(spec)


@settings(max_examples=20, deadline=None)
@given(
    aps=st.sets(st.integers(0, 9), max_size=10),
    lengths=st.lists(st.integers(1, 5), min_size=1, max_size=12),
)
def test_sensitive_ap_policy_round_trip(aps, lengths):
    trajs = [
        Trajectory(
            user_id=i,
            day=0,
            slots=tuple((j, (i * 3 + j) % 10) for j in range(length)),
        )
        for i, length in enumerate(lengths)
    ]
    db = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
    policy = SensitiveAPPolicy(aps)
    rebuilt = policy_from_spec(_json_round_trip(policy_to_spec(policy)))
    assert isinstance(rebuilt, SensitiveAPPolicy)
    assert rebuilt.cache_key() == policy.cache_key()
    assert np.array_equal(
        rebuilt.evaluate_batch(db), policy.evaluate_batch(db)
    )


# ----------------------------------------------------------------------
# Binnings
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(binning=binnings())
def test_binning_round_trip_cache_key(binning):
    rebuilt = binning_from_spec(_json_round_trip(binning_to_spec(binning)))
    assert rebuilt.cache_key() == binning.cache_key()
    assert rebuilt.n_bins == binning.n_bins
    assert binning_to_spec(rebuilt) == binning_to_spec(binning)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(records=flat_records(), binning=binnings())
def test_binning_round_trip_bin_indices(records, binning):
    db = ColumnarDatabase.from_records(records)
    ages = np.asarray(db["age"])
    in_domain = (
        (ages >= binning.low) & (ages < binning.high)
        if isinstance(binning, IntegerBinning)
        else np.ones(len(db), dtype=bool)
    )
    if isinstance(binning, Product2DBinning):
        for factor in (binning.first, binning.second):
            if isinstance(factor, IntegerBinning):
                in_domain &= (ages >= factor.low) & (ages < factor.high)
    if not np.all(in_domain):
        db = db.select(np.flatnonzero(in_domain))
    if len(db) == 0:
        return
    rebuilt = binning_from_spec(_json_round_trip(binning_to_spec(binning)))
    assert np.array_equal(rebuilt.bin_indices(db), binning.bin_indices(db))


# ----------------------------------------------------------------------
# Failure modes and registry behavior
# ----------------------------------------------------------------------


class TestOpaquePolicies:
    def test_attribute_policy_has_no_spec(self):
        policy = AttributePolicy("age", lambda v: v < 18)
        with pytest.raises(SpecUnsupported):
            policy.to_spec()
        with pytest.raises(PolicySpecError):
            policy_to_spec(policy)

    def test_lambda_policy_has_no_spec(self):
        with pytest.raises(PolicySpecError):
            policy_to_spec(LambdaPolicy(lambda r: True))

    def test_combination_with_opaque_child_fails(self):
        policy = MinimumRelaxationPolicy(
            [OptInPolicy(), AttributePolicy("age", lambda v: v < 18)]
        )
        with pytest.raises((SpecUnsupported, PolicySpecError)):
            policy_to_spec(policy)


class TestSpecErrors:
    def test_unknown_policy_kind(self):
        with pytest.raises(PolicySpecError, match="unknown policy kind"):
            policy_from_spec({"kind": "nope"})

    def test_unknown_binning_kind(self):
        with pytest.raises(PolicySpecError, match="unknown binning kind"):
            binning_from_spec({"kind": "nope"})

    def test_non_mapping_rejected(self):
        with pytest.raises(PolicySpecError):
            policy_from_spec([1, 2])
        with pytest.raises(PolicySpecError):
            binning_from_spec("cat")

    def test_bare_predicate_spec_compiles(self):
        policy = policy_from_spec({"attr": "age", "op": "<=", "value": 17})
        assert policy({"age": 10}) == 0
        assert policy({"age": 40}) == 1


class TestCompiledPolicyPickling:
    def test_pickle_round_trip_recompiles(self):
        """Compiled policies cross process boundaries by recompiling
        from their spec (__reduce__), not by pickling closures."""
        import pickle

        policy = compile_policy(
            {"any": [{"attr": "age", "op": "<=", "value": 17},
                     {"attr": "city", "op": "in", "value": ["amber"]}]}
        )
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.cache_key() == policy.cache_key()
        assert clone.name == policy.name
        records = [{"age": 10, "city": "blue"}, {"age": 40, "city": "amber"}]
        db = ColumnarDatabase.from_records(records)
        assert np.array_equal(
            clone.evaluate_batch(db), policy.evaluate_batch(db)
        )
