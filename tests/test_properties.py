"""Property-based tests (hypothesis) on the core invariants.

These cover the cross-cutting guarantees the paper's proofs rely on:

* OsdpRR satisfies the exact OSDP inequality on random tiny universes;
* one-sided noise never inflates non-sensitive counts;
* the zero-preservation invariant of OsdpLaplaceL1 and the mass
  invariant of DAWAz post-processing;
* metric axioms (regret >= 1, MRE scale behavior);
* policy-sampling sub-histogram invariants under random inputs.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.policy import LambdaPolicy
from repro.core.verifier import verify_osdp
from repro.data.sampling import hilo_sampling, m_sampling
from repro.evaluation.metrics import mean_relative_error
from repro.mechanisms.dawa.dawa import DawaResult
from repro.mechanisms.dawaz import apply_zero_postprocessing
from repro.mechanisms.osdp_laplace import (
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
)
from repro.mechanisms.osdp_rr import OsdpRR
from repro.queries.histogram import HistogramInput


@st.composite
def policy_and_database(draw):
    """A random policy (subset of a 5-record universe) and database."""
    universe = tuple(range(5))
    sensitive = draw(
        st.frozensets(st.sampled_from(universe), min_size=1, max_size=4)
    )
    db = tuple(draw(st.lists(st.sampled_from(universe), min_size=1, max_size=2)))
    policy = LambdaPolicy(lambda r, s=sensitive: r in s)
    return policy, db, universe


class TestOsdpRRPrivacyProperty:
    @given(policy_and_database(), st.sampled_from([0.2, 0.7, 1.3]))
    @settings(max_examples=40, deadline=None)
    def test_osdp_inequality_holds_exactly(self, setup, epsilon):
        """Theorem 4.1 over randomly drawn policies and databases."""
        policy, db, universe = setup
        mech = OsdpRR(policy, epsilon)
        result = verify_osdp(
            mech.output_distribution, [db], policy, epsilon, universe
        )
        assert result.satisfied

    @given(policy_and_database())
    @settings(max_examples=20, deadline=None)
    def test_output_distribution_normalized(self, setup):
        policy, db, _ = setup
        dist = OsdpRR(policy, 1.0).output_distribution(db)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in dist.values())


@st.composite
def histogram_input(draw):
    n = draw(st.integers(2, 40))
    x = np.array(draw(st.lists(st.integers(0, 60), min_size=n, max_size=n)), dtype=float)
    fractions = np.array(
        draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n))
    )
    x_ns = np.floor(x * fractions)
    return HistogramInput(x=x, x_ns=x_ns)


class TestOneSidedNoiseProperties:
    @given(histogram_input(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_osdp_laplace_never_exceeds_x_ns(self, hist, seed):
        out = OsdpLaplaceHistogram(1.0).release(
            hist, np.random.default_rng(seed)
        )
        assert np.all(out <= hist.x_ns + 1e-9)

    @given(histogram_input(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_l1_variant_zero_preservation(self, hist, seed):
        """Bins with x_ns = 0 are always released as exactly 0, and the
        output is non-negative."""
        out = OsdpLaplaceL1Histogram(0.7).release(
            hist, np.random.default_rng(seed)
        )
        assert np.all(out >= 0.0)
        assert np.all(out[hist.x_ns == 0] == 0.0)

    @given(histogram_input(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_osdp_rr_histogram_bounded(self, hist, seed):
        from repro.mechanisms.osdp_rr import OsdpRRHistogram

        out = OsdpRRHistogram(1.0).release(hist, np.random.default_rng(seed))
        assert np.all(out >= 0)
        assert np.all(out <= hist.x_ns)


@st.composite
def dawa_result_and_mask(draw):
    n = draw(st.integers(2, 32))
    estimate = np.array(
        draw(st.lists(st.floats(0.0, 100.0), min_size=n, max_size=n))
    )
    # Random contiguous partition.
    cuts = sorted(
        draw(st.sets(st.integers(1, n - 1), max_size=min(5, n - 1)))
    )
    bounds = [0, *cuts, n]
    buckets = list(zip(bounds, bounds[1:]))
    mask = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    return DawaResult(estimate=estimate, buckets=buckets), mask


class TestDawaZPostprocessingProperties:
    @given(dawa_result_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_zeroed_bins_are_zero(self, setup):
        result, mask = setup
        out = apply_zero_postprocessing(result, mask)
        assert np.all(out[mask] == 0.0)

    @given(dawa_result_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_bucket_mass_preserved_unless_fully_zeroed(self, setup):
        result, mask = setup
        out = apply_zero_postprocessing(result, mask)
        for start, end in result.buckets:
            if mask[start:end].all():
                assert out[start:end].sum() == 0.0
            else:
                assert out[start:end].sum() == pytest.approx(
                    result.estimate[start:end].sum(), rel=1e-9, abs=1e-7
                )


class TestSamplingProperties:
    @given(
        st.lists(st.integers(0, 200), min_size=8, max_size=64),
        st.sampled_from([0.9, 0.5, 0.2]),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_m_sampling_sub_histogram(self, counts, rho, seed):
        x = np.array(counts, dtype=np.int64)
        assume(x.sum() > 20)
        sample = m_sampling(x, rho, np.random.default_rng(seed))
        assert np.all(sample.x_ns <= x)
        assert np.all(sample.x_ns >= 0)

    @given(
        st.lists(st.integers(0, 200), min_size=8, max_size=64),
        st.sampled_from([0.9, 0.5, 0.2]),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_hilo_sampling_exact_target(self, counts, rho, seed):
        x = np.array(counts, dtype=np.int64)
        assume(x.sum() > 20)
        sample = hilo_sampling(x, rho, np.random.default_rng(seed))
        assert np.all(sample.x_ns <= x)
        target = max(1, round(rho * int(x.sum())))
        assert int(sample.x_ns.sum()) == target


class TestMetricProperties:
    @given(
        st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50),
        st.floats(min_value=1.001, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mre_scales_with_error_magnitude(self, values, factor):
        x = np.array(values)
        offset = np.ones_like(x)
        small = mean_relative_error(x, x + offset)
        large = mean_relative_error(x, x + factor * offset)
        assert large == pytest.approx(factor * small, rel=1e-9)

    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_mre_identity_is_zero(self, values):
        x = np.array(values)
        assert mean_relative_error(x, x) == 0.0


class TestReleaseProbabilityProperties:
    @given(st.floats(min_value=0.001, max_value=10.0))
    @settings(max_examples=50)
    def test_retention_in_unit_interval(self, epsilon):
        from repro.mechanisms.osdp_rr import release_probability

        p = release_probability(epsilon)
        assert 0.0 < p < 1.0
        assert p == pytest.approx(1.0 - math.exp(-epsilon))
