"""Tests for DAWAz (Algorithm 3) and the generic OSDP recipe."""

import numpy as np
import pytest

from repro.core.guarantees import OSDPGuarantee
from repro.mechanisms.dawa import Dawa, DawaResult
from repro.mechanisms.dawaz import (
    DawaZ,
    TwoPhaseOsdpRecipe,
    apply_zero_postprocessing,
    detect_zero_bins,
)
from repro.queries.histogram import HistogramInput


class TestZeroDetection:
    def test_empty_bins_always_in_zero_set(self, rng):
        x = np.array([0.0, 50.0, 0.0, 50.0])
        hist = HistogramInput(x=x, x_ns=x.copy())
        mask = detect_zero_bins(hist, epsilon=1.0, rng=rng)
        assert mask[0] and mask[2]

    def test_large_counts_rarely_zeroed(self, rng):
        x = np.full(64, 500.0)
        hist = HistogramInput(x=x, x_ns=x.copy())
        mask = detect_zero_bins(hist, epsilon=1.0, rng=rng)
        assert not mask.any()

    def test_osdp_laplace_detector(self, rng):
        x = np.array([0.0, 500.0])
        hist = HistogramInput(x=x, x_ns=x.copy())
        mask = detect_zero_bins(
            hist, epsilon=1.0, rng=rng, detector="osdp_laplace_l1"
        )
        assert mask[0]
        assert not mask[1]

    def test_unknown_detector_rejected(self, rng, small_hist):
        with pytest.raises(ValueError):
            detect_zero_bins(small_hist, 1.0, rng, detector="nope")

    def test_uses_only_x_ns(self, rng):
        """Sensitive-only bins look empty to the detector (they must —
        the zero set is computed under OSDP from non-sensitive data)."""
        x = np.array([100.0, 100.0])
        x_ns = np.array([0.0, 100.0])
        hist = HistogramInput(x=x, x_ns=x_ns)
        mask = detect_zero_bins(hist, epsilon=5.0, rng=rng)
        assert mask[0]
        assert not mask[1]


class TestZeroPostprocessing:
    def test_zeroed_bins_are_zero(self):
        result = DawaResult(
            estimate=np.array([5.0, 5.0, 5.0, 5.0]), buckets=[(0, 4)]
        )
        out = apply_zero_postprocessing(result, np.array([True, False, False, True]))
        assert out[0] == 0.0 and out[3] == 0.0

    def test_bucket_mass_preserved(self):
        """Line 9's rescale: the bucket total is redistributed, not lost."""
        result = DawaResult(
            estimate=np.array([5.0, 5.0, 5.0, 5.0]), buckets=[(0, 4)]
        )
        out = apply_zero_postprocessing(result, np.array([True, False, False, True]))
        assert out.sum() == pytest.approx(20.0)
        assert out[1] == pytest.approx(10.0)

    def test_fully_zeroed_bucket(self):
        result = DawaResult(estimate=np.array([3.0, 3.0]), buckets=[(0, 2)])
        out = apply_zero_postprocessing(result, np.array([True, True]))
        assert np.all(out == 0.0)

    def test_untouched_bucket_unchanged(self):
        result = DawaResult(
            estimate=np.array([1.0, 2.0, 7.0, 8.0]), buckets=[(0, 2), (2, 4)]
        )
        out = apply_zero_postprocessing(
            result, np.array([False, False, False, False])
        )
        assert np.array_equal(out, result.estimate)

    def test_mask_shape_validated(self):
        result = DawaResult(estimate=np.zeros(4), buckets=[(0, 4)])
        with pytest.raises(ValueError):
            apply_zero_postprocessing(result, np.zeros(3, dtype=bool))

    def test_multiple_buckets_independent(self):
        result = DawaResult(
            estimate=np.array([4.0, 4.0, 10.0, 10.0]), buckets=[(0, 2), (2, 4)]
        )
        out = apply_zero_postprocessing(
            result, np.array([True, False, False, False])
        )
        assert out[1] == pytest.approx(8.0)
        assert out[2] == pytest.approx(10.0)  # second bucket untouched


class TestDawaZ:
    def test_guarantee_total_epsilon(self):
        mech = DawaZ(epsilon=1.0, rho=0.1)
        assert isinstance(mech.guarantee, OSDPGuarantee)
        assert mech.guarantee.epsilon == pytest.approx(1.0)

    def test_budget_split(self):
        mech = DawaZ(epsilon=2.0, rho=0.25)
        assert mech.epsilon_zero == pytest.approx(0.5)
        assert mech.epsilon_dp == pytest.approx(1.5)
        assert mech.dp_algorithm.epsilon == pytest.approx(1.5)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            DawaZ(epsilon=1.0, rho=1.0)

    def test_release_shape(self, small_hist, rng):
        out = DawaZ(1.0).release(small_hist, rng)
        assert out.shape == small_hist.x.shape

    def test_zero_bins_forced_to_zero(self, rng):
        """Sparse input with confident non-sensitive mass: DAWAz must
        release exact zeros where x_ns is empty and large counts where
        it is not."""
        x = np.zeros(256)
        x[::16] = 400.0
        hist = HistogramInput(x=x, x_ns=x.copy())
        out = DawaZ(epsilon=2.0).release(hist, rng)
        empty = x == 0.0
        assert np.mean(out[empty] == 0.0) > 0.9

    def test_beats_dawa_on_sparse_data(self, rng):
        """The paper's headline: zero-injection slashes error on sparse
        histograms (Fig 9a's 25x improvements)."""
        x = np.zeros(1024)
        x[::64] = 200.0
        hist = HistogramInput(x=x, x_ns=x.copy())
        epsilon = 0.1
        dawaz_err = np.mean(
            [np.abs(DawaZ(epsilon).release(hist, rng) - x).sum() for _ in range(8)]
        )
        dawa_err = np.mean(
            [np.abs(Dawa(epsilon).release(hist, rng) - x).sum() for _ in range(8)]
        )
        assert dawaz_err < dawa_err

    def test_recipe_with_custom_dp_factory(self, small_hist, rng):
        recipe = TwoPhaseOsdpRecipe(
            epsilon=1.0,
            dp_factory=lambda eps: Dawa(eps, split=0.3),
            rho=0.2,
        )
        out = recipe.release(small_hist, rng)
        assert out.shape == small_hist.x.shape
        assert recipe.dp_algorithm.split == pytest.approx(0.3)

    def test_laplace_l1_detector_variant(self, small_hist, rng):
        mech = DawaZ(1.0, zero_detector="osdp_laplace_l1")
        out = mech.release(small_hist, rng)
        assert out.shape == small_hist.x.shape
