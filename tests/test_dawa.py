"""Tests for DAWA stage 2 and the end-to-end mechanism."""

import numpy as np
import pytest

from repro.core.guarantees import DPGuarantee
from repro.mechanisms.dawa import Dawa, hierarchical_estimate, uniform_bucket_estimate
from repro.mechanisms.dawa.partition import validate_partition
from repro.mechanisms.laplace import LaplaceHistogram
from repro.queries.histogram import HistogramInput


class TestUniformBucketEstimate:
    def test_preserves_bucket_structure(self, rng):
        x = np.array([10.0, 10.0, 0.0, 0.0])
        buckets = [(0, 2), (2, 4)]
        out = uniform_bucket_estimate(x, buckets, epsilon2=1000.0, rng=rng)
        assert out[0] == pytest.approx(out[1])
        assert out[2] == pytest.approx(out[3])
        assert out[0] == pytest.approx(10.0, abs=0.1)

    def test_noise_amortized_across_wide_buckets(self, rng):
        """Per-bin noise of a width-w bucket is total-noise / w."""
        x = np.zeros(1024)
        wide = [(0, 1024)]
        narrow = [(i, i + 1) for i in range(1024)]
        err_wide = np.mean(
            [
                np.abs(uniform_bucket_estimate(x, wide, 1.0, rng)).mean()
                for _ in range(30)
            ]
        )
        err_narrow = np.mean(
            [
                np.abs(uniform_bucket_estimate(x, narrow, 1.0, rng)).mean()
                for _ in range(5)
            ]
        )
        assert err_wide < err_narrow / 50

    def test_epsilon_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_bucket_estimate(np.zeros(4), [(0, 4)], 0.0, rng)

    def test_negative_totals_clipped(self, rng):
        x = np.zeros(8)
        outs = [
            uniform_bucket_estimate(x, [(0, 8)], 0.1, rng) for _ in range(50)
        ]
        assert all(np.all(o >= 0.0) for o in outs)


class TestHierarchicalEstimate:
    def test_shape_preserved(self, rng):
        out = hierarchical_estimate(np.zeros(100), 1.0, rng)
        assert out.shape == (100,)

    def test_high_epsilon_accurate(self, rng):
        x = np.array([5.0, 1.0, 7.0, 3.0, 0.0, 0.0, 2.0, 9.0])
        out = hierarchical_estimate(x, 1000.0, rng)
        assert np.allclose(out, x, atol=0.5)

    def test_range_query_exact_at_high_epsilon(self, rng):
        from repro.mechanisms.dawa.estimate import HierarchicalHistogram

        x = rng.poisson(5, size=100).astype(float)
        tree = HierarchicalHistogram(10_000.0).fit(x, rng)
        for lo, hi in [(0, 100), (3, 17), (50, 51), (0, 1)]:
            assert tree.range_query(lo, hi) == pytest.approx(
                x[lo:hi].sum(), abs=1.0
            )

    def test_range_query_validation(self, rng):
        from repro.mechanisms.dawa.estimate import HierarchicalHistogram

        tree = HierarchicalHistogram(1.0).fit(np.zeros(10), rng)
        with pytest.raises(ValueError):
            tree.range_query(5, 5)
        with pytest.raises(ValueError):
            tree.range_query(-1, 5)

    def test_unfitted_tree_rejects_queries(self):
        from repro.mechanisms.dawa.estimate import HierarchicalHistogram

        with pytest.raises(RuntimeError):
            HierarchicalHistogram(1.0).range_query(0, 1)

    def test_prefix_queries_beat_identity_noise(self, rng):
        """Decomposed prefix answers accumulate polylog noise; identity
        per-bin noise accumulates with the prefix length."""
        from repro.mechanisms.dawa.estimate import HierarchicalHistogram

        n = 4096
        x = rng.poisson(10, size=n).astype(float)
        cuts = list(range(64, n + 1, 64))
        hier_errors, lap_errors = [], []
        for _ in range(5):
            tree = HierarchicalHistogram(1.0).fit(x, rng)
            hier_errors.append(
                np.mean(
                    [abs(tree.range_query(0, k) - x[:k].sum()) for k in cuts]
                )
            )
            flat_hist = HistogramInput(x=x, x_ns=np.zeros(n))
            noisy = LaplaceHistogram(1.0).release(flat_hist, rng)
            lap_errors.append(
                np.mean(
                    [abs(noisy[:k].sum() - x[:k].sum()) for k in cuts]
                )
            )
        assert np.mean(hier_errors) < np.mean(lap_errors)

    def test_epsilon_validation(self, rng):
        with pytest.raises(ValueError):
            hierarchical_estimate(np.zeros(8), -1.0, rng)

    def test_branching_validation(self):
        from repro.mechanisms.dawa.estimate import HierarchicalHistogram

        with pytest.raises(ValueError):
            HierarchicalHistogram(1.0, branching=1)


class TestDawaEndToEnd:
    def test_guarantee_is_dp(self):
        assert Dawa(0.7).guarantee == DPGuarantee(0.7)

    def test_budget_split(self):
        dawa = Dawa(1.0, split=0.25)
        assert dawa.epsilon1 == pytest.approx(0.25)
        assert dawa.epsilon2 == pytest.approx(0.75)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            Dawa(1.0, split=1.0)

    def test_penalty_validation(self):
        with pytest.raises(ValueError):
            Dawa(1.0, penalty_factor=0.0)

    def test_release_shape_and_partition_valid(self, rng):
        x = rng.poisson(5, size=200).astype(float)
        hist = HistogramInput(x=x, x_ns=np.zeros(200))
        result = Dawa(1.0).release_with_partition(hist, rng)
        assert result.estimate.shape == (200,)
        validate_partition(result.buckets, 200)

    def test_beats_laplace_on_piecewise_constant_data(self, rng):
        """DAWA's defining behaviour: smooth regions get wide buckets."""
        x = np.concatenate([np.full(512, 100.0), np.zeros(512)])
        hist = HistogramInput(x=x, x_ns=np.zeros(1024))
        epsilon = 0.1
        dawa_err = np.mean(
            [
                np.abs(Dawa(epsilon).release(hist, rng) - x).sum()
                for _ in range(10)
            ]
        )
        lap_err = np.mean(
            [
                np.abs(LaplaceHistogram(epsilon).release(hist, rng) - x).sum()
                for _ in range(10)
            ]
        )
        assert dawa_err < lap_err / 3

    def test_ignores_x_ns(self, rng):
        """DAWA is a DP algorithm: its output must not depend on x_ns."""
        x = rng.poisson(5, size=64).astype(float)
        hist_a = HistogramInput(x=x, x_ns=np.zeros(64))
        hist_b = HistogramInput(x=x, x_ns=x.copy())
        out_a = Dawa(1.0).release(hist_a, np.random.default_rng(3))
        out_b = Dawa(1.0).release(hist_b, np.random.default_rng(3))
        assert np.array_equal(out_a, out_b)

    def test_deterministic_given_seed(self, rng):
        x = rng.poisson(5, size=64).astype(float)
        hist = HistogramInput(x=x, x_ns=np.zeros(64))
        a = Dawa(1.0).release(hist, np.random.default_rng(11))
        b = Dawa(1.0).release(hist, np.random.default_rng(11))
        assert np.array_equal(a, b)
