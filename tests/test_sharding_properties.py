"""Property-based equivalence: sharded == single-node == per-record.

Hypothesis draws random policies from the whole policy algebra, random
flat and ragged columns, and random shard counts (including more shards
than records, so empty shards are exercised), then asserts the three
evaluation paths are **bit-identical**:

* per-record ``policy(record)`` — the paper-semantics reference;
* single-node ``evaluate_batch`` on a ``ColumnarDatabase``;
* per-shard ``evaluate_batch`` on a ``ShardedColumnarDatabase``,
  merged by concatenation.

The same holds for bin indices, bincounts, the assembled
``HistogramInput``, and — in the spawned-rng exact mode — the released
estimates themselves, which pins down the end-to-end release path, not
just the data plumbing.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    IntersectionPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.data.columnar import ColumnarDatabase
from repro.data.database import Database
from repro.data.tippers import SensitiveAPPolicy, Trajectory, trajectory_columns
from repro.evaluation.runner import spawn_rngs
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.mechanisms.osdp_rr import OsdpRRHistogram
from repro.queries.histogram import (
    CategoricalBinning,
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    histogram_input_for,
)

MAX_EXAMPLES = 30
CITIES = ("amber", "blue", "coral", "dune")

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def flat_records(draw):
    """Mapping records with an int, a categorical, and a bool column."""
    n = draw(st.integers(min_value=1, max_value=48))
    ages = draw(
        st.lists(st.integers(0, 99), min_size=n, max_size=n)
    )
    cities = draw(
        st.lists(st.sampled_from(CITIES), min_size=n, max_size=n)
    )
    opted = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return [
        {"age": a, "city": c, "opt_in": o}
        for a, c, o in zip(ages, cities, opted)
    ]


def _age_leaf():
    return st.integers(0, 99).map(
        lambda t: AttributePolicy("age", lambda v, t=t: v <= t, name=f"age<={t}")
    )


def _city_leaf():
    return st.sets(st.sampled_from(CITIES), max_size=len(CITIES)).map(
        lambda vs: SensitiveValuePolicy("city", vs)
    )


def flat_policies():
    """The policy algebra over the flat-record schema."""
    leaves = st.one_of(
        _age_leaf(),
        _city_leaf(),
        st.just(OptInPolicy()),
        st.just(AllSensitivePolicy()),
        st.just(AllNonSensitivePolicy()),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                MinimumRelaxationPolicy
            ),
            st.lists(children, min_size=1, max_size=3).map(IntersectionPolicy),
        ),
        max_leaves=6,
    )


@st.composite
def trajectories(draw):
    """Ragged-column records: contiguous-slot AP trajectories."""
    n = draw(st.integers(min_value=1, max_value=24))
    trajs = []
    for i in range(n):
        length = draw(st.integers(1, 6))
        start = draw(st.integers(0, 100))
        aps = draw(st.lists(st.integers(0, 9), min_size=length, max_size=length))
        trajs.append(
            Trajectory(
                user_id=i,
                day=0,
                slots=tuple((start + j, ap) for j, ap in enumerate(aps)),
            )
        )
    return trajs


def ap_policies():
    """The algebra over trajectory records (set-membership leaves)."""
    leaves = st.one_of(
        st.sets(st.integers(0, 9), max_size=10).map(SensitiveAPPolicy),
        st.just(AllSensitivePolicy()),
        st.just(AllNonSensitivePolicy()),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                MinimumRelaxationPolicy
            ),
            st.lists(children, min_size=1, max_size=3).map(IntersectionPolicy),
        ),
        max_leaves=5,
    )


shard_counts = st.integers(min_value=1, max_value=9)


# ----------------------------------------------------------------------
# Mask equivalence
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(records=flat_records(), policy=flat_policies(), k=shard_counts)
def test_flat_mask_bit_identical(records, policy, k):
    db = ColumnarDatabase.from_records(records)
    sharded = db.shard(k)
    per_record = np.fromiter(
        (policy(r) for r in records), dtype=np.int8, count=len(records)
    )
    single = policy.evaluate_batch(db)
    merged = policy.evaluate_batch(sharded)
    assert np.array_equal(single, per_record)
    assert np.array_equal(merged, per_record)
    assert merged.dtype == single.dtype
    assert np.array_equal(sharded.mask(policy), per_record)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(trajs=trajectories(), policy=ap_policies(), k=shard_counts)
def test_ragged_mask_bit_identical(trajs, policy, k):
    db = ColumnarDatabase(trajectory_columns(trajs), records=trajs)
    sharded = db.shard(k)
    per_record = np.fromiter(
        (policy(t) for t in trajs), dtype=np.int8, count=len(trajs)
    )
    assert np.array_equal(policy.evaluate_batch(db), per_record)
    assert np.array_equal(policy.evaluate_batch(sharded), per_record)


# ----------------------------------------------------------------------
# Bincount / histogram-input equivalence
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    records=flat_records(),
    policy=flat_policies(),
    k=shard_counts,
    width=st.sampled_from((1, 5, 10)),
)
def test_histogram_input_bit_identical(records, policy, k, width):
    db = ColumnarDatabase.from_records(records)
    sharded = db.shard(k)
    query = HistogramQuery(IntegerBinning("age", 0, 100, width))

    idx_single = query.binning.bin_indices(db)
    idx_sharded = query.binning.bin_indices(sharded)
    assert np.array_equal(idx_single, idx_sharded)
    assert np.array_equal(
        db.histogram(query.binning), sharded.histogram(query.binning)
    )

    h_row = histogram_input_for(Database(records), query, policy)
    h_single = histogram_input_for(db, query, policy)
    h_sharded = histogram_input_for(sharded, query, policy)
    for a, b in ((h_single, h_sharded), (h_single, h_row)):
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.x_ns, b.x_ns)
        assert np.array_equal(a.sensitive_bin_mask, b.sensitive_bin_mask)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(records=flat_records(), k=shard_counts)
def test_categorical_bincount_bit_identical(records, k):
    db = ColumnarDatabase.from_records(records)
    sharded = db.shard(k)
    binning = CategoricalBinning("city", CITIES)
    assert np.array_equal(
        binning.bin_indices(db), binning.bin_indices(sharded)
    )
    assert np.array_equal(db.histogram(binning), sharded.histogram(binning))


# ----------------------------------------------------------------------
# Release equivalence (spawned-rng exact mode)
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    records=flat_records(),
    policy=flat_policies(),
    k=shard_counts,
    seed=st.integers(0, 2**16),
)
def test_spawned_mode_release_bit_identical(records, policy, k, seed):
    """Same trial protocol + same-seed streams + sharded inputs
    => the released estimates match the single-node path bit for bit."""
    db = ColumnarDatabase.from_records(records)
    sharded = db.shard(k)
    query = HistogramQuery(IntegerBinning("age", 0, 100, 10))
    h_single = HistogramInput.from_columnar(db, query, policy)
    h_sharded = HistogramInput.from_columnar(sharded, query, policy)
    for mech in (OsdpLaplaceL1Histogram(1.0), OsdpRRHistogram(1.0)):
        a = mech.release_batch(h_single, spawn_rngs(seed, 2))
        b = mech.release_batch(h_sharded, spawn_rngs(seed, 2))
        assert np.array_equal(a, b)
