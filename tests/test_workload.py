"""Tests for workload matrices."""

import numpy as np
import pytest

from repro.queries.workload import (
    identity_workload,
    prefix_workload,
    random_range_workload,
    range_workload,
    workload_error,
)


class TestIdentity:
    def test_shape(self):
        assert identity_workload(4).shape == (4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            identity_workload(0)


class TestPrefix:
    def test_lower_triangular(self):
        w = prefix_workload(3)
        assert np.array_equal(w, [[1, 0, 0], [1, 1, 0], [1, 1, 1]])

    def test_answers_are_cumsum(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(prefix_workload(3) @ x, np.cumsum(x))


class TestRange:
    def test_indicator_rows(self):
        w = range_workload(5, [(1, 4)])
        assert np.array_equal(w, [[0, 1, 1, 1, 0]])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_workload(5, [(3, 3)])
        with pytest.raises(ValueError):
            range_workload(5, [(0, 6)])

    def test_random_ranges_valid(self, rng):
        w = random_range_workload(16, 10, rng)
        assert w.shape == (10, 16)
        assert np.all(w.sum(axis=1) >= 1)


class TestWorkloadError:
    def test_zero_for_exact_estimate(self):
        x = np.array([1.0, 2.0])
        assert workload_error(identity_workload(2), x, x) == 0.0

    def test_mean_absolute(self):
        x = np.array([1.0, 2.0])
        est = np.array([2.0, 0.0])
        assert workload_error(identity_workload(2), x, est) == pytest.approx(1.5)
