"""Shared fixtures: deterministic RNGs, small policies, toy universes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Deterministic property testing: the suite is a reproduction artifact,
# so example generation must not vary between runs.
settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core.policy import AttributePolicy, LambdaPolicy, OptInPolicy
from repro.queries.histogram import HistogramInput


def _live_shm_segments() -> list[str]:
    """Names of this repo's shared-memory segments currently on disk."""
    import os

    from repro.data.store import SEGMENT_PREFIX

    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # non-Linux: nothing to enumerate
        return []
    try:
        return sorted(
            name
            for name in os.listdir(shm_dir)
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - permissions
        return []


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments_at_suite_exit():
    """The whole suite must leave /dev/shm as it found it.

    Every ColumnStore the tests create — through pools, servers,
    backends, killed workers, GC'd databases — must be unlinked by the
    time the session ends; a lingering segment is storage leaked past
    process death, the failure mode the explicit close()/unlink()
    lifecycle plus GC finalizers exist to prevent.
    """
    import gc

    before = set(_live_shm_segments())
    yield
    gc.collect()  # run any pending store finalizers first
    leaked = [name for name in _live_shm_segments() if name not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


#: Per-test wall-clock bound on the socket lanes.  A hang in a socket
#: test must stall CI with a loud timeout error, not forever.
_HANG_GUARD_MARKS = ("rpc", "shm", "faults")


@pytest.fixture(autouse=True)
def socket_lane_hang_guard(request):
    """SIGALRM-based per-test timeout for rpc/shm/faults-marked tests.

    pytest-timeout is not in the environment, so the guard is built on
    the interval timer: if a socket-lane test runs past the bound
    (``REPRO_TEST_TIMEOUT`` seconds, default 120), the alarm raises in
    the main thread and the test errors out with a traceback pointing
    at the blocked line.  No-op for unmarked tests, off the main
    thread, and on platforms without SIGALRM.
    """
    import os
    import signal
    import threading

    if not any(request.node.get_closest_marker(m) for m in _HANG_GUARD_MARKS):
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    limit = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))

    def _blow_up(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s socket-lane hang guard "
            "(REPRO_TEST_TIMEOUT to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _blow_up)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def minor_policy() -> AttributePolicy:
    """The paper's example: records of minors (age <= 17) are sensitive."""
    return AttributePolicy("age", lambda a: a <= 17, name="minors")


@pytest.fixture
def opt_in_policy() -> OptInPolicy:
    return OptInPolicy()


@pytest.fixture
def parity_policy() -> LambdaPolicy:
    """Integer-record toy policy: odd values are sensitive."""
    return LambdaPolicy(lambda r: r % 2 == 1, name="odd-sensitive")


@pytest.fixture
def small_universe() -> tuple[int, ...]:
    """Tiny integer record universe for exhaustive verification."""
    return (0, 1, 2, 3)


@pytest.fixture
def mixed_records() -> list[dict]:
    """Six records, half minors (sensitive under minor_policy)."""
    return [
        {"age": 15, "opt_in": False},
        {"age": 16, "opt_in": True},
        {"age": 17, "opt_in": False},
        {"age": 25, "opt_in": True},
        {"age": 40, "opt_in": True},
        {"age": 70, "opt_in": False},
    ]


@pytest.fixture
def small_hist() -> HistogramInput:
    x = np.array([10.0, 0.0, 3.0, 7.0, 0.0, 25.0, 1.0, 4.0])
    x_ns = np.array([8.0, 0.0, 2.0, 7.0, 0.0, 20.0, 0.0, 3.0])
    return HistogramInput(x=x, x_ns=x_ns)
