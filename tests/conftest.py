"""Shared fixtures: deterministic RNGs, small policies, toy universes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Deterministic property testing: the suite is a reproduction artifact,
# so example generation must not vary between runs.
settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core.policy import AttributePolicy, LambdaPolicy, OptInPolicy
from repro.queries.histogram import HistogramInput


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def minor_policy() -> AttributePolicy:
    """The paper's example: records of minors (age <= 17) are sensitive."""
    return AttributePolicy("age", lambda a: a <= 17, name="minors")


@pytest.fixture
def opt_in_policy() -> OptInPolicy:
    return OptInPolicy()


@pytest.fixture
def parity_policy() -> LambdaPolicy:
    """Integer-record toy policy: odd values are sensitive."""
    return LambdaPolicy(lambda r: r % 2 == 1, name="odd-sensitive")


@pytest.fixture
def small_universe() -> tuple[int, ...]:
    """Tiny integer record universe for exhaustive verification."""
    return (0, 1, 2, 3)


@pytest.fixture
def mixed_records() -> list[dict]:
    """Six records, half minors (sensitive under minor_policy)."""
    return [
        {"age": 15, "opt_in": False},
        {"age": 16, "opt_in": True},
        {"age": 17, "opt_in": False},
        {"age": 25, "opt_in": True},
        {"age": 40, "opt_in": True},
        {"age": 70, "opt_in": False},
    ]


@pytest.fixture
def small_hist() -> HistogramInput:
    x = np.array([10.0, 0.0, 3.0, 7.0, 0.0, 25.0, 1.0, 4.0])
    x_ns = np.array([8.0, 0.0, 2.0, 7.0, 0.0, 20.0, 0.0, 3.0])
    return HistogramInput(x=x, x_ns=x_ns)
