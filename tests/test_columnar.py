"""Columnar database + vectorized policy equivalence tests.

The contract under test: for every policy class (including composed and
minimum-relaxation policies and compiled policy specs),
``evaluate_batch`` over a columnar layout is **bit-identical** to
per-record ``Policy.__call__`` — on randomized tabular data and on
trajectory data — and the columnar histogram path matches the
row-by-row reference.
"""

import numpy as np
import pytest

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    IntersectionPolicy,
    LambdaPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.core.policy_language import compile_policy
from repro.data.columnar import ColumnarDatabase, RaggedColumn
from repro.data.database import Database
from repro.data.tippers import TippersConfig, generate_tippers
from repro.queries.histogram import (
    CategoricalBinning,
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    Product2DBinning,
)


def random_tabular_records(seed: int, n: int = 400) -> list[dict]:
    rng = np.random.default_rng(seed)
    cities = np.array(["irvine", "tustin", "orange", "anaheim"])
    return [
        {
            "age": int(age),
            "opt_in": bool(opt),
            "city": str(city),
            "income": float(inc),
        }
        for age, opt, city, inc in zip(
            rng.integers(0, 100, n),
            rng.random(n) < 0.4,
            cities[rng.integers(0, len(cities), n)],
            rng.lognormal(10, 1, n),
        )
    ]


def tabular_policies() -> list:
    age = AttributePolicy("age", lambda a: a <= 17)
    opt = OptInPolicy()
    city = SensitiveValuePolicy("city", {"irvine", "orange"})
    rich = AttributePolicy("income", lambda v: v > 60_000, name="rich")
    weird = LambdaPolicy(
        lambda r: (r["age"] % 7 == 0) and not r["opt_in"], name="weird"
    )
    spec = compile_policy(
        {
            "any": [
                {"attr": "age", "op": "<=", "value": 17},
                {
                    "all": [
                        {"attr": "opt_in", "op": "==", "value": False},
                        {"attr": "city", "op": "in", "value": ["irvine"]},
                    ]
                },
                {"not": {"attr": "income", "op": "<", "value": 250_000.0}},
            ]
        }
    )
    return [
        age,
        opt,
        city,
        rich,
        weird,
        spec,
        AllSensitivePolicy(),
        AllNonSensitivePolicy(),
        MinimumRelaxationPolicy([age, opt, city]),
        IntersectionPolicy([age, spec]),
        MinimumRelaxationPolicy([IntersectionPolicy([opt, rich]), spec]),
    ]


class TestRaggedColumn:
    def test_roundtrip_segments(self):
        col = RaggedColumn(
            flat=np.array([1, 2, 3, 4, 5]), offsets=np.array([0, 2, 2, 5])
        )
        assert len(col) == 3
        assert col.segment(0).tolist() == [1, 2]
        assert col.segment(1).tolist() == []
        assert col.segment(2).tolist() == [3, 4, 5]

    def test_segment_any_handles_empty_segments(self):
        col = RaggedColumn(
            flat=np.array([1, 2, 3]), offsets=np.array([0, 1, 1, 3])
        )
        hits = col.segment_any(np.array([False, True, False]))
        assert hits.tolist() == [False, False, True]

    def test_take_reorders(self):
        col = RaggedColumn(
            flat=np.array([1, 2, 3, 4]), offsets=np.array([0, 1, 3, 4])
        )
        sub = col.take(np.array([2, 0]))
        assert sub.segment(0).tolist() == [4]
        assert sub.segment(1).tolist() == [1]

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            RaggedColumn(flat=np.array([1.0]), offsets=np.array([0, 2]))


class TestTabularEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_masks_bit_identical(self, seed):
        records = random_tabular_records(seed)
        cdb = ColumnarDatabase.from_records(records)
        for policy in tabular_policies():
            reference = np.array([policy(r) for r in records], dtype=np.int8)
            batch = policy.evaluate_batch(cdb)
            assert batch.dtype == np.int8
            assert np.array_equal(batch, reference), policy.name

    def test_masks_on_plain_dict_bundle(self):
        records = random_tabular_records(3)
        columns = {
            key: np.asarray([r[key] for r in records]) for key in records[0]
        }
        for policy in tabular_policies():
            reference = np.array([policy(r) for r in records], dtype=np.int8)
            assert np.array_equal(
                policy.evaluate_batch(columns), reference
            ), policy.name

    def test_partition_matches_row_database(self):
        records = random_tabular_records(4)
        cdb = ColumnarDatabase.from_records(records)
        db = Database(records)
        policy = OptInPolicy()
        col_sens, col_ns = cdb.partition(policy)
        row_sens, row_ns = db.partition(policy)
        assert list(col_sens.iter_records()) == list(row_sens)
        assert list(col_ns.iter_records()) == list(row_ns)

    def test_non_broadcastable_predicate_falls_back(self):
        records = random_tabular_records(5)
        cdb = ColumnarDatabase.from_records(records)
        policy = AttributePolicy("city", lambda c: "vin" in c, name="substr")
        reference = np.array([policy(r) for r in records], dtype=np.int8)
        assert np.array_equal(policy.evaluate_batch(cdb), reference)

    def test_aggregate_predicate_detected_by_spot_check(self):
        """A predicate comparing against an aggregate of its input
        broadcasts but is not elementwise; the spot check must route it
        to the exact per-record path."""
        records = [{"v": 1.0}, {"v": 2.0}, {"v": 30.0}]
        cdb = ColumnarDatabase.from_records(records)
        policy = AttributePolicy("v", lambda v: v > np.mean(v), name="agg")
        reference = np.array([policy(r) for r in records], dtype=np.int8)
        assert reference.tolist() == [1, 1, 1]  # scalar mean(v) == v
        assert np.array_equal(policy.evaluate_batch(cdb), reference)

    def test_mixed_type_sensitive_values_fall_back(self):
        """Regression: np.asarray coerces {'a', 3} to strings, which
        would silently un-match the numeric member under np.isin."""
        records = [{"v": 3}, {"v": 4}, {"v": 5}]
        cdb = ColumnarDatabase.from_records(records)
        policy = SensitiveValuePolicy("v", {"a", 3})
        reference = np.array([policy(r) for r in records], dtype=np.int8)
        assert reference.tolist() == [0, 1, 1]
        assert np.array_equal(policy.evaluate_batch(cdb), reference)

    def test_policy_spec_in_with_mixed_members_falls_back(self):
        """Regression: compiled in/not_in specs must not trust np.isin
        when the member list dtype-coerces away from the column."""
        records = [{"age": 25}, {"age": 30}]
        cdb = ColumnarDatabase.from_records(records)
        for op in ("in", "not_in"):
            policy = compile_policy(
                {"attr": "age", "op": op, "value": [25, "unknown"]}
            )
            reference = np.array([policy(r) for r in records], dtype=np.int8)
            assert np.array_equal(
                policy.evaluate_batch(cdb), reference
            ), op

    def test_policy_spec_nan_member_falls_back(self):
        # Python set membership finds NaN by object identity; np.isin
        # (== based) never matches NaN.  With a shared NaN instance the
        # per-record path is sensitive, so batch must fall back.
        nan = float("nan")
        records = [{"x": nan}, {"x": 1.0}]
        cdb = ColumnarDatabase.from_records(records)
        policy = compile_policy({"attr": "x", "op": "in", "value": [nan]})
        reference = np.array([policy(r) for r in records], dtype=np.int8)
        assert reference.tolist() == [0, 1]
        assert np.array_equal(policy.evaluate_batch(cdb), reference)

    def test_mixed_type_columns_stay_objects(self):
        """Regression: [5, 'NA'] must not be stringified to ['5', 'NA']."""
        cdb = ColumnarDatabase.from_records([{"x": 5}, {"x": "NA"}])
        assert cdb["x"].dtype == object
        assert cdb["x"][0] == 5
        policy = compile_policy({"attr": "x", "op": "==", "value": 5})
        reference = np.array([0, 1], dtype=np.int8)
        assert np.array_equal(policy.evaluate_batch(cdb), reference)


class TestTrajectoryEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_tippers(TippersConfig(n_users=150, n_days=25, seed=9))

    @pytest.mark.parametrize("rho", [99, 75, 25])
    def test_ap_policy_bit_identical(self, dataset, rho):
        policy = dataset.policy_for_fraction(rho)
        cdb = dataset.columnar()
        reference = np.array(
            [policy(t) for t in dataset.trajectories], dtype=np.int8
        )
        assert np.array_equal(policy.evaluate_batch(cdb), reference)

    def test_empty_sensitive_set(self, dataset):
        from repro.data.tippers import SensitiveAPPolicy

        policy = SensitiveAPPolicy([])
        cdb = dataset.columnar()
        assert np.all(policy.evaluate_batch(cdb) == 1)

    def test_composed_trajectory_policy(self, dataset):
        p99 = dataset.policy_for_fraction(99)
        p50 = dataset.policy_for_fraction(50)
        combined = MinimumRelaxationPolicy([p99, p50])
        cdb = dataset.columnar()
        reference = np.array(
            [combined(t) for t in dataset.trajectories], dtype=np.int8
        )
        assert np.array_equal(combined.evaluate_batch(cdb), reference)


class TestColumnarHistograms:
    def test_histogram_matches_row_database(self):
        records = random_tabular_records(6)
        cdb = ColumnarDatabase.from_records(records)
        db = Database(records)
        binning = Product2DBinning(
            IntegerBinning("age", 0, 100, 10),
            CategoricalBinning(
                "city", ["irvine", "tustin", "orange", "anaheim"]
            ),
        )
        query = HistogramQuery(binning)
        assert np.array_equal(query.evaluate(cdb), query.evaluate(db))

    def test_from_columnar_matches_from_database(self):
        records = random_tabular_records(7)
        cdb = ColumnarDatabase.from_records(records)
        db = Database(records)
        query = HistogramQuery(IntegerBinning("age", 0, 100))
        policy = OptInPolicy()
        col = HistogramInput.from_columnar(cdb, query, policy)
        row = HistogramInput.from_database(db, query, policy)
        assert np.array_equal(col.x, row.x)
        assert np.array_equal(col.x_ns, row.x_ns)
        assert np.array_equal(col.sensitive_bin_mask, row.sensitive_bin_mask)

    def test_out_of_domain_value_raises(self):
        cdb = ColumnarDatabase.from_records([{"age": 120}])
        query = HistogramQuery(IntegerBinning("age", 0, 100))
        with pytest.raises(ValueError, match="outside"):
            query.evaluate(cdb)

    def test_categorical_out_of_domain_raises(self):
        cdb = ColumnarDatabase.from_records([{"city": "nowhere"}])
        binning = CategoricalBinning("city", ["irvine", "tustin"])
        with pytest.raises(ValueError, match="outside the declared domain"):
            binning.bin_indices(cdb)


class TestColumnarConstruction:
    def test_from_records_requires_shared_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ColumnarDatabase.from_records([{"a": 1}, {"b": 2}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ColumnarDatabase.from_records([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ColumnarDatabase(
                {"a": np.arange(3), "b": np.arange(4)}
            )

    def test_roundtrip_to_database(self):
        records = random_tabular_records(8, n=20)
        cdb = ColumnarDatabase.from_records(records)
        assert list(cdb.to_database()) == records

    def test_from_database_with_trajectories(self):
        dataset = generate_tippers(
            TippersConfig(n_users=40, n_days=10, seed=2)
        )
        cdb = ColumnarDatabase.from_database(Database(dataset.trajectories))
        assert len(cdb) == len(dataset.trajectories)
        assert "aps" in cdb
