"""Tests for the DPBench-1D synthetic dataset generators (Table 2)."""

import numpy as np
import pytest

from repro.data.dpbench import (
    DOMAIN_SIZE,
    DPBENCH_SPECS,
    generate_dpbench,
    load_all,
    measured_sparsity,
)


class TestSpecs:
    def test_seven_datasets(self):
        assert len(DPBENCH_SPECS) == 7

    def test_table_2_scales(self):
        assert DPBENCH_SPECS["adult"].scale == 17_665
        assert DPBENCH_SPECS["income"].scale == 20_787_122
        assert DPBENCH_SPECS["patent"].scale == 27_948_226

    def test_table_2_sparsities(self):
        assert DPBENCH_SPECS["adult"].sparsity == 0.98
        assert DPBENCH_SPECS["patent"].sparsity == 0.06

    def test_support_size(self):
        assert DPBENCH_SPECS["adult"].support_size == round(0.02 * DOMAIN_SIZE)


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(DPBENCH_SPECS))
    def test_scale_exact(self, name):
        x = generate_dpbench(name, seed=0)
        assert int(x.sum()) == DPBENCH_SPECS[name].scale

    @pytest.mark.parametrize("name", sorted(DPBENCH_SPECS))
    def test_sparsity_near_target(self, name):
        x = generate_dpbench(name, seed=0)
        target = DPBENCH_SPECS[name].sparsity
        assert measured_sparsity(x) == pytest.approx(target, abs=0.05)

    @pytest.mark.parametrize("name", sorted(DPBENCH_SPECS))
    def test_domain_size_and_non_negative(self, name):
        x = generate_dpbench(name, seed=3)
        assert x.shape == (DOMAIN_SIZE,)
        assert np.all(x >= 0)

    def test_deterministic_in_seed(self):
        a = generate_dpbench("adult", seed=5)
        b = generate_dpbench("adult", seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_dpbench("adult", seed=1)
        b = generate_dpbench("adult", seed=2)
        assert not np.array_equal(a, b)

    def test_nettrace_sorted_descending(self):
        """§6.3.3.2: Nettrace is a sorted histogram (favoring DAWA)."""
        x = generate_dpbench("nettrace", seed=0)
        assert np.all(np.diff(x) <= 0)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            generate_dpbench("mystery")

    def test_case_insensitive(self):
        assert np.array_equal(
            generate_dpbench("Adult", seed=0), generate_dpbench("adult", seed=0)
        )

    def test_load_all(self):
        datasets = load_all(seed=0)
        assert set(datasets) == set(DPBENCH_SPECS)


class TestShapeFamilies:
    def test_adult_is_clustered(self):
        """Non-zero bins concentrate: the max gap between support points
        is large relative to a uniform spread."""
        x = generate_dpbench("adult", seed=0)
        support = np.flatnonzero(x)
        gaps = np.diff(support)
        assert gaps.max() > 10 * np.median(gaps)

    def test_patent_dense(self):
        x = generate_dpbench("patent", seed=0)
        assert measured_sparsity(x) < 0.15

    def test_heavy_tail_income(self):
        x = generate_dpbench("income", seed=0)
        nonzero = x[x > 0]
        # Top 1% of bins hold a disproportionate share of the mass.
        top = np.sort(nonzero)[-len(nonzero) // 100 :]
        assert top.sum() > 0.1 * nonzero.sum()
