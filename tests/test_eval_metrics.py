"""Tests for the evaluation metrics (MRE, Rel percentiles, regret)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    l1_error,
    l2_error,
    mean_relative_error,
    per_bin_relative_error,
    regret,
    regret_table,
    rel_percentile,
)


class TestPerBinRelativeError:
    def test_delta_floor_on_zero_bins(self):
        x = np.array([0.0, 10.0])
        est = np.array([2.0, 5.0])
        rel = per_bin_relative_error(x, est, delta=1.0)
        assert rel[0] == pytest.approx(2.0)
        assert rel[1] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_bin_relative_error(np.zeros(2), np.zeros(3))


class TestMre:
    def test_exact_estimate(self):
        x = np.array([3.0, 4.0])
        assert mean_relative_error(x, x) == 0.0

    def test_known_value(self):
        x = np.array([10.0, 0.0])
        est = np.array([5.0, 3.0])
        assert mean_relative_error(x, est) == pytest.approx((0.5 + 3.0) / 2)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.poisson(5, size=16).astype(float)
        est = x + rng.normal(size=16)
        assert mean_relative_error(x, est) >= 0.0


class TestRelPercentile:
    def test_median_and_tail(self):
        x = np.ones(100)
        est = x.copy()
        est[:6] += 10.0  # 6% of bins badly wrong
        assert rel_percentile(x, est, 50) == 0.0
        assert rel_percentile(x, est, 95) == pytest.approx(10.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            rel_percentile(np.ones(2), np.ones(2), 101)


class TestNormErrors:
    def test_l1(self):
        assert l1_error(np.array([1.0, 2.0]), np.array([0.0, 4.0])) == 3.0

    def test_l2(self):
        assert l2_error(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0


class TestRegret:
    def test_optimal_algorithm_has_regret_one(self):
        assert regret(2.0, 2.0) == 1.0

    def test_ratio(self):
        assert regret(6.0, 2.0) == 3.0

    def test_zero_optimum(self):
        assert regret(0.0, 0.0) == 1.0
        assert regret(1.0, 0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            regret(-1.0, 1.0)

    def test_regret_table(self):
        table = regret_table({"a": 2.0, "b": 4.0, "c": 10.0})
        assert table["a"] == 1.0
        assert table["b"] == 2.0
        assert table["c"] == 5.0

    def test_regret_table_empty_rejected(self):
        with pytest.raises(ValueError):
            regret_table({})

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.001, max_value=1e6),
            min_size=1,
        )
    )
    @settings(max_examples=40)
    def test_regret_always_at_least_one(self, errors):
        table = regret_table(errors)
        assert all(v >= 1.0 - 1e-12 for v in table.values())
        assert min(table.values()) == pytest.approx(1.0)
