"""Tests for the exact privacy verifier, incl. Theorem 4.1 executable checks."""

import math

import pytest

from repro.core.policy import AllSensitivePolicy, LambdaPolicy
from repro.core.verifier import max_likelihood_ratio, verify_dp, verify_osdp
from repro.mechanisms.osdp_rr import OsdpRR

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")
UNIVERSE = (0, 1, 2, 3)


def randomized_response_mechanism(p_truth: float):
    """Classic binary randomized response over single-bit databases."""

    def mechanism(db: tuple) -> dict:
        bit = db[0]
        return {bit: p_truth, 1 - bit: 1.0 - p_truth}

    return mechanism


class TestMaxLikelihoodRatio:
    def test_identical_distributions(self):
        d = {"a": 0.5, "b": 0.5}
        assert max_likelihood_ratio(d, d) == pytest.approx(1.0)

    def test_unbounded_when_support_differs(self):
        assert max_likelihood_ratio({"a": 1.0}, {"b": 1.0}) == math.inf

    def test_ratio_value(self):
        a = {"x": 0.8, "y": 0.2}
        b = {"x": 0.4, "y": 0.6}
        assert max_likelihood_ratio(a, b) == pytest.approx(2.0)


class TestVerifyDP:
    def test_randomized_response_satisfies_its_epsilon(self):
        p = 0.75
        eps = math.log(p / (1 - p))
        mech = randomized_response_mechanism(p)
        result = verify_dp(mech, [(0,), (1,)], eps, universe=(0, 1))
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(eps))

    def test_randomized_response_fails_smaller_epsilon(self):
        p = 0.75
        eps = math.log(p / (1 - p))
        mech = randomized_response_mechanism(p)
        result = verify_dp(mech, [(0,), (1,)], eps * 0.5, universe=(0, 1))
        assert not result.satisfied
        assert result.violation is not None
        assert result.tight_epsilon == pytest.approx(eps)

    def test_identity_mechanism_not_dp(self):
        mech = lambda db: {db: 1.0}  # noqa: E731 - release everything
        result = verify_dp(mech, [(0,)], 5.0, universe=(0, 1))
        assert not result.satisfied
        assert result.max_ratio == math.inf

    def test_invalid_distribution_rejected(self):
        mech = lambda db: {0: 0.4}  # noqa: E731 - doesn't sum to 1
        with pytest.raises(ValueError):
            verify_dp(mech, [(0,)], 1.0, universe=(0, 1))


class TestTheorem41OsdpRR:
    """Executable version of Theorem 4.1: OsdpRR satisfies (P, eps)-OSDP."""

    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 1.0, 2.0])
    def test_single_record_databases(self, epsilon):
        mech = OsdpRR(ODD, epsilon)
        databases = [(r,) for r in UNIVERSE]
        result = verify_osdp(
            mech.output_distribution, databases, ODD, epsilon, UNIVERSE
        )
        assert result.satisfied

    def test_two_record_databases(self):
        epsilon = 0.8
        mech = OsdpRR(ODD, epsilon)
        databases = [(a, b) for a in UNIVERSE for b in UNIVERSE]
        result = verify_osdp(
            mech.output_distribution, databases, ODD, epsilon, UNIVERSE
        )
        assert result.satisfied

    def test_bound_is_tight(self):
        """Case 2.2 of the proof achieves the ratio e^eps exactly."""
        epsilon = 1.0
        mech = OsdpRR(ODD, epsilon)
        databases = [(r,) for r in UNIVERSE]
        result = verify_osdp(
            mech.output_distribution, databases, ODD, epsilon, UNIVERSE
        )
        assert result.max_ratio == pytest.approx(math.exp(epsilon))

    def test_fails_tighter_epsilon(self):
        epsilon = 1.0
        mech = OsdpRR(ODD, epsilon)
        databases = [(r,) for r in UNIVERSE]
        result = verify_osdp(
            mech.output_distribution, databases, ODD, epsilon / 2, UNIVERSE
        )
        assert not result.satisfied

    def test_osdp_rr_does_not_satisfy_dp(self):
        """Releasing true records can never be DP: outputs disagree."""
        epsilon = 1.0
        mech = OsdpRR(ODD, epsilon)
        result = verify_dp(
            mech.output_distribution, [(0,), (2,)], 10.0, universe=(0, 2)
        )
        assert not result.satisfied
        assert result.max_ratio == math.inf


class TestRevealAllFailsOSDP:
    """Suppress with tau = inf (reveal all non-sensitive) is not OSDP."""

    def test_reveal_all_violates_osdp(self):
        from repro.core.exclusion import reveal_non_sensitive_mechanism

        mech = reveal_non_sensitive_mechanism(ODD)
        databases = [(r,) for r in UNIVERSE]
        result = verify_osdp(mech, databases, ODD, epsilon=100.0, universe=UNIVERSE)
        assert not result.satisfied
        assert result.max_ratio == math.inf

    def test_all_sensitive_policy_makes_reveal_trivially_constant(self):
        from repro.core.exclusion import reveal_non_sensitive_mechanism

        mech = reveal_non_sensitive_mechanism(AllSensitivePolicy())
        result = verify_osdp(
            mech,
            [(r,) for r in UNIVERSE],
            AllSensitivePolicy(),
            epsilon=0.01,
            universe=UNIVERSE,
        )
        # Releasing nothing is perfectly private.
        assert result.satisfied
