"""Unit tests for the discrete geometric noise distributions."""

import math

import numpy as np
import pytest

from repro.distributions.geometric import OneSidedGeometric, TwoSidedGeometric


class TestTwoSided:
    def test_rejects_bad_alpha(self):
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                TwoSidedGeometric(alpha=alpha)

    def test_from_epsilon(self):
        dist = TwoSidedGeometric.from_epsilon(1.0, sensitivity=2.0)
        assert dist.alpha == pytest.approx(math.exp(-0.5))

    def test_pmf_sums_to_one(self):
        dist = TwoSidedGeometric(alpha=0.6)
        ks = np.arange(-200, 201)
        assert dist.pmf(ks).sum() == pytest.approx(1.0, abs=1e-9)

    def test_pmf_symmetric(self):
        dist = TwoSidedGeometric(alpha=0.4)
        assert dist.pmf(5) == pytest.approx(dist.pmf(-5))

    def test_privacy_ratio(self):
        """pmf(k)/pmf(k+1) <= 1/alpha = e^eps at sensitivity 1."""
        epsilon = 0.8
        dist = TwoSidedGeometric.from_epsilon(epsilon)
        for k in range(-10, 10):
            ratio = dist.pmf(k) / dist.pmf(k + 1)
            assert ratio <= math.exp(epsilon) + 1e-12

    def test_sample_integer_and_variance(self, rng):
        dist = TwoSidedGeometric(alpha=0.5)
        samples = dist.sample(rng, size=200_000)
        assert samples.dtype.kind == "i"
        assert np.var(samples) == pytest.approx(dist.variance, rel=0.05)

    def test_scalar_sample(self, rng):
        assert isinstance(TwoSidedGeometric(alpha=0.5).sample(rng), int)


class TestOneSided:
    def test_no_mass_on_positive(self):
        dist = OneSidedGeometric(alpha=0.5)
        assert dist.pmf(1) == 0.0
        assert dist.pmf(7) == 0.0

    def test_pmf_sums_to_one(self):
        dist = OneSidedGeometric(alpha=0.7)
        ks = np.arange(-400, 1)
        assert dist.pmf(ks).sum() == pytest.approx(1.0, abs=1e-9)

    def test_samples_non_positive_integers(self, rng):
        samples = OneSidedGeometric(alpha=0.6).sample(rng, size=5_000)
        assert np.all(samples <= 0)

    def test_moments(self, rng):
        dist = OneSidedGeometric(alpha=0.5)
        samples = dist.sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(dist.mean, abs=0.02)
        assert np.var(samples) == pytest.approx(dist.variance, rel=0.05)

    def test_from_epsilon_ratio(self):
        epsilon = 1.2
        dist = OneSidedGeometric.from_epsilon(epsilon)
        # Shifting the true count up by one scales the pmf by e^eps.
        assert dist.pmf(-3) / dist.pmf(-4) == pytest.approx(math.exp(epsilon))
