"""Tests for the declarative policy-specification language."""

import pytest

from repro.core.policy_language import (
    PolicySpecError,
    compile_policy,
    policy_spec_fingerprint,
    validate_spec,
)

MINOR = {"attr": "age", "op": "<=", "value": 17}
OPT_OUT = {"attr": "opt_in", "op": "==", "value": False}


class TestLeafSpecs:
    def test_comparison_operators(self):
        record = {"age": 20}
        cases = [
            ("==", 20, True),
            ("!=", 20, False),
            ("<", 25, True),
            ("<=", 20, True),
            (">", 19, True),
            (">=", 21, False),
        ]
        for op, value, sensitive in cases:
            policy = compile_policy({"attr": "age", "op": op, "value": value})
            assert policy.is_sensitive(record) == sensitive, (op, value)

    def test_in_operator(self):
        policy = compile_policy(
            {"attr": "race", "op": "in", "value": ["NativeAmerican"]}
        )
        assert policy.is_sensitive({"race": "NativeAmerican"})
        assert policy.is_non_sensitive({"race": "Other"})

    def test_not_in_operator(self):
        policy = compile_policy(
            {"attr": "region", "op": "not_in", "value": ["EU", "UK"]}
        )
        assert policy.is_sensitive({"region": "US"})
        assert policy.is_non_sensitive({"region": "EU"})

    def test_missing_keys_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy({"attr": "age", "op": "<="})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy({"attr": "age", "op": "~", "value": 1})


class TestCombinators:
    def test_any_is_union_of_sensitive(self):
        """The paper's example 2 policy: opted-out OR Native American."""
        policy = compile_policy({"any": [MINOR, OPT_OUT]})
        assert policy.is_sensitive({"age": 15, "opt_in": True})
        assert policy.is_sensitive({"age": 30, "opt_in": False})
        assert policy.is_non_sensitive({"age": 30, "opt_in": True})

    def test_all_requires_every_condition(self):
        policy = compile_policy({"all": [MINOR, OPT_OUT]})
        assert policy.is_sensitive({"age": 15, "opt_in": False})
        assert policy.is_non_sensitive({"age": 15, "opt_in": True})

    def test_not_negates(self):
        policy = compile_policy({"not": MINOR})
        assert policy.is_sensitive({"age": 40})
        assert policy.is_non_sensitive({"age": 10})

    def test_nested_composition(self):
        spec = {"any": [{"all": [MINOR, OPT_OUT]}, {"not": OPT_OUT, }]}
        # Sensitive when (minor AND opted out) OR opted in.
        policy = compile_policy(spec)
        assert policy.is_sensitive({"age": 10, "opt_in": False})
        assert policy.is_sensitive({"age": 40, "opt_in": True})
        assert policy.is_non_sensitive({"age": 40, "opt_in": False})

    def test_empty_combinator_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy({"any": []})

    def test_ambiguous_combinators_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy({"any": [MINOR], "all": [OPT_OUT]})

    def test_non_mapping_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy({"any": ["nonsense"]})


class TestUtilities:
    def test_validate_accepts_good_spec(self):
        validate_spec({"any": [MINOR, OPT_OUT]})

    def test_validate_rejects_bad_spec(self):
        with pytest.raises(PolicySpecError):
            validate_spec({"nope": 1})

    def test_fingerprint_stable_and_order_insensitive(self):
        a = {"attr": "age", "op": "<=", "value": 17}
        b = {"value": 17, "op": "<=", "attr": "age"}
        assert policy_spec_fingerprint(a) == policy_spec_fingerprint(b)
        assert len(policy_spec_fingerprint(a)) == 16

    def test_fingerprint_differs_across_specs(self):
        assert policy_spec_fingerprint(MINOR) != policy_spec_fingerprint(OPT_OUT)

    def test_custom_name(self):
        policy = compile_policy(MINOR, name="minors")
        assert policy.name == "minors"

    def test_default_name_embeds_spec(self):
        policy = compile_policy(MINOR)
        assert "age" in policy.name
