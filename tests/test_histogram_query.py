"""Tests for histogram queries and HistogramInput."""

import numpy as np
import pytest

from repro.core.policy import AttributePolicy
from repro.data.database import Database
from repro.queries.histogram import (
    CategoricalBinning,
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    Product2DBinning,
    flatten_2d,
)


class TestCategoricalBinning:
    def test_bin_of(self):
        binning = CategoricalBinning("color", ["red", "green", "blue"])
        assert binning.bin_of({"color": "green"}) == 1
        assert binning.n_bins == 3

    def test_unknown_value_rejected(self):
        binning = CategoricalBinning("color", ["red"])
        with pytest.raises(ValueError):
            binning.bin_of({"color": "pink"})

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ValueError):
            CategoricalBinning("c", ["a", "a"])


class TestIntegerBinning:
    def test_unit_width(self):
        binning = IntegerBinning("age", 0, 100)
        assert binning.n_bins == 100
        assert binning.bin_of({"age": 42}) == 42

    def test_wider_bins(self):
        binning = IntegerBinning("age", 0, 100, width=10)
        assert binning.n_bins == 10
        assert binning.bin_of({"age": 35}) == 3

    def test_ceil_division_for_partial_last_bin(self):
        binning = IntegerBinning("v", 0, 95, width=10)
        assert binning.n_bins == 10

    def test_out_of_range(self):
        binning = IntegerBinning("age", 0, 10)
        with pytest.raises(ValueError):
            binning.bin_of({"age": 10})

    def test_validation(self):
        with pytest.raises(ValueError):
            IntegerBinning("v", 5, 5)
        with pytest.raises(ValueError):
            IntegerBinning("v", 0, 5, width=0)


class TestProduct2D:
    def test_row_major_index(self):
        binning = Product2DBinning(
            IntegerBinning("a", 0, 3), IntegerBinning("b", 0, 4)
        )
        assert binning.n_bins == 12
        assert binning.shape == (3, 4)
        assert binning.bin_of({"a": 2, "b": 1}) == 9

    def test_flatten_2d(self):
        grid = np.arange(12).reshape(3, 4)
        assert np.array_equal(flatten_2d(grid), np.arange(12))


class TestHistogramQuery:
    def test_evaluate_counts(self):
        db = Database([{"age": 5}, {"age": 5}, {"age": 7}])
        query = HistogramQuery(IntegerBinning("age", 0, 10))
        assert np.array_equal(
            query.evaluate(db), [0, 0, 0, 0, 0, 2, 0, 1, 0, 0]
        )

    def test_sensitivity_is_two(self):
        query = HistogramQuery(IntegerBinning("age", 0, 10))
        assert query.sensitivity == 2.0


class TestHistogramInput:
    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            HistogramInput(x=np.zeros(3), x_ns=np.zeros(4))

    def test_validation_sub_histogram(self):
        with pytest.raises(ValueError):
            HistogramInput(x=np.array([1.0]), x_ns=np.array([2.0]))

    def test_validation_non_negative(self):
        with pytest.raises(ValueError):
            HistogramInput(x=np.array([-1.0]), x_ns=np.array([-1.0]))

    def test_validation_1d_only(self):
        with pytest.raises(ValueError):
            HistogramInput(x=np.zeros((2, 2)), x_ns=np.zeros((2, 2)))

    def test_x_sensitive(self, small_hist):
        assert np.array_equal(
            small_hist.x_sensitive, small_hist.x - small_hist.x_ns
        )

    def test_non_sensitive_ratio(self):
        hist = HistogramInput(x=np.array([8.0, 2.0]), x_ns=np.array([4.0, 1.0]))
        assert hist.non_sensitive_ratio == pytest.approx(0.5)

    def test_from_database_builds_mask(self):
        records = [
            {"age": 15, "group": 0},  # minor -> sensitive
            {"age": 30, "group": 1},
            {"age": 16, "group": 2},  # minor-only bin
            {"age": 40, "group": 1},
        ]
        db = Database(records)
        policy = AttributePolicy("age", lambda a: a <= 17)
        query = HistogramQuery(IntegerBinning("group", 0, 3))
        hist = HistogramInput.from_database(db, query, policy)
        assert np.array_equal(hist.x, [1, 2, 1])
        assert np.array_equal(hist.x_ns, [0, 2, 0])
        assert np.array_equal(hist.sensitive_bin_mask, [True, False, True])

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError):
            HistogramInput(
                x=np.zeros(3),
                x_ns=np.zeros(3),
                sensitive_bin_mask=np.zeros(4, dtype=bool),
            )
