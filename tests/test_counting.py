"""Tests for scalar OSDP/DP counting queries."""

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import LambdaPolicy
from repro.queries.counting import DpCount, OsdpCount

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")


class TestOsdpCount:
    def test_counts_only_non_sensitive(self, rng):
        query = OsdpCount(ODD, epsilon=1000.0)
        out = query.release(range(10), rng)
        assert out == pytest.approx(5.0, abs=0.1)  # evens only

    def test_predicate_applied(self, rng):
        query = OsdpCount(ODD, epsilon=1000.0, predicate=lambda r: r >= 6)
        # Non-sensitive evens >= 6 within range(10): {6, 8}.
        assert query.release(range(10), rng) == pytest.approx(2.0, abs=0.1)

    def test_noise_is_one_sided(self, rng):
        query = OsdpCount(ODD, epsilon=0.5, clip=False)
        outs = [query.release(range(100), rng) for _ in range(200)]
        assert all(o <= 50.0 for o in outs)

    def test_zero_count_released_exactly_zero(self, rng):
        query = OsdpCount(ODD, epsilon=0.5, predicate=lambda r: r > 100)
        assert query.release(range(10), rng) == 0.0

    def test_integer_variant(self, rng):
        query = OsdpCount(ODD, epsilon=1.0, integer=True)
        outs = [query.release(range(50), rng) for _ in range(50)]
        assert all(float(o).is_integer() for o in outs)
        assert all(o <= 25 for o in outs)

    def test_charges_accountant(self, rng):
        acct = PrivacyAccountant(total_epsilon=1.0)
        OsdpCount(ODD, epsilon=0.4).release(range(10), rng, accountant=acct)
        assert acct.spent == pytest.approx(0.4)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            OsdpCount(ODD, epsilon=0.0)

    def test_guarantee(self):
        g = OsdpCount(ODD, epsilon=0.7).guarantee
        assert g.epsilon == 0.7 and g.policy is ODD

    def test_lower_error_than_dp_at_matched_epsilon(self, rng):
        """Scalar Theorem 5.2: one-sided noise at sensitivity 1 has
        E|noise| = 1/eps vs the DP count's symmetric 1/eps — but the
        one-sided count is exactly zero-preserving and never overshoots,
        so its error on the true non-sensitive count is no worse."""
        epsilon = 0.5
        osdp_err = np.mean(
            [
                abs(OsdpCount(ODD, epsilon, clip=False).release(range(100), rng) - 50)
                for _ in range(300)
            ]
        )
        assert osdp_err == pytest.approx(1 / epsilon, rel=0.2)


class TestDpCount:
    def test_counts_everything(self, rng):
        assert DpCount(epsilon=1000.0).release(range(10), rng) == pytest.approx(
            10.0, abs=0.1
        )

    def test_noise_two_sided(self, rng):
        outs = [
            DpCount(epsilon=0.5, clip=False).release(range(10), rng)
            for _ in range(200)
        ]
        assert any(o > 10 for o in outs)
        assert any(o < 10 for o in outs)

    def test_clipping(self, rng):
        outs = [DpCount(epsilon=0.1).release([], rng) for _ in range(50)]
        assert all(o >= 0.0 for o in outs)

    def test_validation(self):
        with pytest.raises(ValueError):
            DpCount(epsilon=-1.0)
