"""Tests for result persistence and markdown rendering."""

import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.evaluation.reporting import (
    load_results,
    markdown_table,
    nested_dict_to_rows,
    save_results,
)


@dataclass
class Sample:
    name: str
    value: float


class TestRoundTrip:
    def test_dict_round_trip(self, tmp_path):
        results = {"a": 1, "b": [1.5, 2.5], "c": {"nested": True}}
        path = save_results(results, tmp_path / "out.json")
        assert load_results(path) == results

    def test_dataclass_serialized(self, tmp_path):
        path = save_results(Sample("x", 2.0), tmp_path / "out.json")
        assert load_results(path) == {"name": "x", "value": 2.0}

    def test_numpy_values_serialized(self, tmp_path):
        results = {"arr": np.array([1.0, 2.0]), "scalar": np.float64(3.5)}
        path = save_results(results, tmp_path / "out.json")
        assert load_results(path) == {"arr": [1.0, 2.0], "scalar": 3.5}

    def test_nan_becomes_null(self, tmp_path):
        path = save_results({"v": math.nan}, tmp_path / "out.json")
        assert load_results(path) == {"v": None}

    def test_non_string_keys_stringified(self, tmp_path):
        path = save_results({1.0: {99: 0.5}}, tmp_path / "out.json")
        assert load_results(path) == {"1.0": {"99": 0.5}}

    def test_creates_parent_directories(self, tmp_path):
        path = save_results({}, tmp_path / "deep" / "dir" / "out.json")
        assert path.exists()


class TestMarkdown:
    def test_table_structure(self):
        text = markdown_table(["a", "b"], [["x", 1.23456]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "1.235" in lines[2]

    def test_nested_dict_to_rows(self):
        table = {"P99": {"osdp": 0.1, "dp": 0.5}, "P50": {"osdp": 0.3, "dp": 0.5}}
        headers, rows = nested_dict_to_rows(table, row_label="policy")
        assert headers == ["policy", "osdp", "dp"]
        assert rows[0] == ["P99", 0.1, 0.5]

    def test_nested_dict_missing_cells(self):
        table = {"r1": {"a": 1.0}, "r2": {}}
        _headers, rows = nested_dict_to_rows(table)
        assert rows[1] == ["r2", ""]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nested_dict_to_rows({})

    def test_flat_dict_rejected(self):
        with pytest.raises(ValueError):
            nested_dict_to_rows({"a": 1.0})
