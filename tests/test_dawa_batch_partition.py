"""Trial-vectorized DAWA stage 1: exact equivalence with the per-trial DP.

``noisy_costs_batch`` samples all trials' noisy cost levels as
``(n_trials, level)`` matrices and ``optimal_partition_batch`` runs the
partition Bellman recursion once across trials.  Given the *same* noisy
costs, the batched DP must choose exactly the buckets the per-trial
:func:`optimal_partition_array` chooses — float-op-for-float-op — which
is what these tests pin down (the only difference between the paths is
then the noise stream layout, the documented batch-mode contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dpbench import generate_dpbench
from repro.mechanisms.dawa.dawa import Dawa
from repro.mechanisms.dawa.partition import (
    DyadicScaffold,
    optimal_partition_array,
    optimal_partition_batch,
    validate_partition,
)
from repro.mechanisms.dawaz import DawaZ
from repro.queries.histogram import HistogramInput


@pytest.fixture(scope="module")
def adult_x() -> np.ndarray:
    return generate_dpbench("adult", seed=1).astype(float)


class TestBatchCosts:
    def test_shapes_and_level0(self, adult_x):
        scaffold = DyadicScaffold(adult_x)
        costs = scaffold.noisy_costs_batch(0.5, np.random.default_rng(0), 7)
        assert costs.n_trials == 7
        assert costs.n == scaffold.n_padded
        assert len(costs.levels) == scaffold.n_levels
        # Level 0 (singletons) is exactly zero — data-independent, no
        # noise, no budget.
        assert not costs.levels[0].any()
        for level, matrix in enumerate(costs.levels):
            assert matrix.shape == (7, scaffold.n_padded >> level)
            assert (matrix >= 0.0).all()  # clipped like the scalar path

    def test_trial_view_round_trips(self, adult_x):
        scaffold = DyadicScaffold(adult_x)
        costs = scaffold.noisy_costs_batch(0.5, np.random.default_rng(1), 3)
        single = costs.trial(2)
        assert len(single.levels) == len(costs.levels)
        for level, matrix in enumerate(costs.levels):
            assert np.array_equal(single.levels[level], matrix[2])

    def test_rejects_bad_arguments(self, adult_x):
        scaffold = DyadicScaffold(adult_x)
        with pytest.raises(ValueError):
            scaffold.noisy_costs_batch(0.0, np.random.default_rng(0), 3)
        with pytest.raises(ValueError):
            scaffold.noisy_costs_batch(1.0, np.random.default_rng(0), 0)


class TestBatchPartitionExactEquivalence:
    @pytest.mark.parametrize("penalty", [0.0, 1.0, 4.0, 40.0])
    def test_matches_per_trial_path_bit_for_bit(self, adult_x, penalty):
        scaffold = DyadicScaffold(adult_x)
        costs = scaffold.noisy_costs_batch(0.5, np.random.default_rng(2), 6)
        batch = optimal_partition_batch(costs, penalty)
        assert len(batch) == 6
        for t in range(6):
            reference = optimal_partition_array(costs.trial(t), penalty)
            assert np.array_equal(batch[t], reference), f"trial {t}"

    def test_small_synthetic_domain(self):
        x = np.array([5.0, 5.0, 5.0, 5.0, 90.0, 0.0, 0.0, 1.0, 2.0])
        scaffold = DyadicScaffold(x)
        costs = scaffold.noisy_costs_batch(1.0, np.random.default_rng(3), 12)
        batch = optimal_partition_batch(costs, 2.0)
        for t in range(12):
            assert np.array_equal(
                batch[t], optimal_partition_array(costs.trial(t), 2.0)
            )

    def test_partitions_tile_the_padded_domain(self, adult_x):
        scaffold = DyadicScaffold(adult_x)
        costs = scaffold.noisy_costs_batch(0.5, np.random.default_rng(4), 4)
        for buckets in optimal_partition_batch(costs, 4.0):
            validate_partition(buckets, scaffold.n_padded)


class TestBatchedReleases:
    def test_release_with_partition_batch_results(self, adult_x):
        hist = HistogramInput(x=adult_x, x_ns=np.floor(adult_x * 0.6))
        dawa = Dawa(1.0)
        results = dawa.release_with_partition_batch(
            hist, np.random.default_rng(5), 5
        )
        assert len(results) == 5
        for result in results:
            assert result.estimate.shape == adult_x.shape
            validate_partition(result.buckets, len(adult_x))

    def test_dawa_batch_error_comparable_to_sequential(self, adult_x):
        hist = HistogramInput(x=adult_x, x_ns=np.floor(adult_x * 0.6))
        dawa = Dawa(1.0)
        batch = dawa.release_batch(hist, np.random.default_rng(6), 8)
        sequential = np.stack(
            [
                dawa.release(hist, np.random.default_rng(seed))
                for seed in range(8)
            ]
        )
        err_batch = np.abs(batch - adult_x).sum(axis=1).mean()
        err_seq = np.abs(sequential - adult_x).sum(axis=1).mean()
        assert err_batch == pytest.approx(err_seq, rel=0.5)

    def test_dawaz_batch_goes_through_vectorized_stage1(self, adult_x):
        hist = HistogramInput(x=adult_x, x_ns=np.floor(adult_x * 0.6))
        mech = DawaZ(1.0)
        out = mech.release_batch(hist, np.random.default_rng(7), 6)
        assert out.shape == (6, len(adult_x))
        assert np.isfinite(out).all()
        # Zero-detected bins release exact zeros; with rho=0.1 the
        # empty-support bins are always zeroed.
        empty = np.asarray(hist.x_ns) == 0
        assert (out[:, empty] == 0.0).all()


class TestGroupedStage2:
    """Stage 2 batched over trials that share a stage-1 partition."""

    def test_uniform_bucket_estimate_batch_rows(self):
        from repro.mechanisms.dawa.estimate import (
            uniform_bucket_estimate,
            uniform_bucket_estimate_batch,
        )

        x = np.array([4.0, 9.0, 0.0, 0.0, 25.0, 1.0, 1.0, 1.0])
        buckets = [(0, 2), (2, 5), (5, 8)]
        rows = uniform_bucket_estimate_batch(
            x, buckets, 2.0, np.random.default_rng(0), 400
        )
        assert rows.shape == (400, len(x))
        # uniform expansion: constant within each bucket, every trial
        for start, end in buckets:
            assert np.all(rows[:, start:end] == rows[:, start:start + 1])
        # each row distributed as one uniform_bucket_estimate draw:
        # compare bucket-total means against the per-trial reference
        reference = np.stack(
            [
                uniform_bucket_estimate(x, buckets, 2.0, rng)
                for rng in (
                    np.random.default_rng(s) for s in range(400)
                )
            ]
        )
        assert np.allclose(
            rows.mean(axis=0), reference.mean(axis=0), atol=0.35
        )
        assert np.allclose(
            rows.std(axis=0), reference.std(axis=0), rtol=0.25
        )

    def test_gapped_buckets_fall_back_per_trial(self):
        from repro.mechanisms.dawa.estimate import (
            uniform_bucket_estimate,
            uniform_bucket_estimate_batch,
        )

        x = np.arange(6, dtype=float)
        gapped = [(0, 2), (4, 6)]  # does not tile the domain
        batch = uniform_bucket_estimate_batch(
            x, gapped, 1.0, np.random.default_rng(3), 2
        )
        # shared-stream equivalence: the fallback loops the same rng
        rng = np.random.default_rng(3)
        expected = np.stack(
            [uniform_bucket_estimate(x, gapped, 1.0, rng) for _ in range(2)]
        )
        assert np.array_equal(batch, expected)

    def test_grouped_release_preserves_trial_order_and_independence(
        self, adult_x
    ):
        hist = HistogramInput(x=adult_x, x_ns=adult_x)
        dawa = Dawa(0.05)  # noisy stage 1 -> repeated coarse partitions
        results = dawa.release_with_partition_batch(
            hist, np.random.default_rng(5), 12
        )
        assert len(results) == 12
        partitions = {}
        for result in results:
            validate_partition(
                [tuple(b) for b in np.asarray(result.buckets)], len(adult_x)
            )
            partitions.setdefault(
                np.asarray(result.buckets).tobytes(), []
            ).append(result)
        # trials sharing a partition must still be independent draws
        for group in partitions.values():
            for a, b in zip(group, group[1:]):
                assert not np.array_equal(a.estimate, b.estimate)

    def test_dawaz_batch_still_shaped_and_distinct(self, adult_x):
        hist = HistogramInput(x=adult_x, x_ns=np.minimum(adult_x, 50))
        rows = DawaZ(0.1).release_batch(hist, np.random.default_rng(2), 6)
        assert rows.shape == (6, len(adult_x))
        assert not np.array_equal(rows[0], rows[1])
