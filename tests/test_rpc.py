"""Loopback-socket smoke lane for the RPC transport (tier-1, `rpc` mark).

The acceptance contract of the socket layer: a request built from JSON
specs, sent through :class:`repro.api.RemoteBackend` to a live
:class:`repro.service.rpc.RpcServer`, returns responses **bit-identical**
to ``ReleaseServer.handle`` and to the direct library path (same seed),
including batch-budget failures — and killing a pool worker mid-run
respawns it without changing a bit.

Every test skips with a reason where loopback sockets are unavailable
(sandboxed CI); the `rpc` marker keeps the lane addressable
(``-m rpc``) without removing it from tier-1.
"""

from __future__ import annotations

import os
import signal
import socket

import numpy as np
import pytest

from repro.api import OsdpClient, RemoteBackend, ReleaseRequest
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy import OptInPolicy
from repro.data.columnar import ColumnarDatabase
from repro.data.workers import ShardWorkerPool
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
)
from repro.service import BatchBudgetExceededError, ReleaseServer
from repro.service.rpc import RpcServer

pytestmark = pytest.mark.rpc


def _loopback_available() -> str | None:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


_SKIP_REASON = _loopback_available()
if _SKIP_REASON:
    pytestmark = [pytest.mark.rpc, pytest.mark.skip(reason=_SKIP_REASON)]


def _db(n: int = 4000, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


BINNING = IntegerBinning("age", 0, 100, 10)
BINNING_SPEC = BINNING.to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _request(epsilon=0.25, n_trials=4, seed=9, **kw) -> ReleaseRequest:
    return ReleaseRequest(
        "osdp_laplace_l1", epsilon, BINNING_SPEC, POLICY_SPEC,
        n_trials=n_trials, seed=seed, **kw,
    )


@pytest.fixture()
def served():
    """A live loopback server plus a mirror ReleaseServer on the same data.

    The mirror serves the bit-identity reference: same shards, same
    caches-from-cold state, never touched by the remote traffic.
    """
    db = _db()
    server = ReleaseServer(db.shard(2))
    mirror = ReleaseServer(_db().shard(2))
    with RpcServer(server).start() as rpc:
        host, port = rpc.address
        with OsdpClient.connect(host, port) as client:
            yield client, mirror, db


class TestRemoteBitIdentity:
    def test_release_matches_server_and_library(self, served):
        client, mirror, db = served
        request = _request()
        remote = client.release(request)
        local = mirror.handle(request)
        assert np.array_equal(remote.estimates, local.estimates)
        hist = HistogramInput.from_columnar(
            db, HistogramQuery(BINNING), OptInPolicy()
        )
        reference = OsdpLaplaceL1Histogram(0.25).release_batch(
            hist, np.random.default_rng(9), 4
        )
        assert np.array_equal(remote.estimates, reference)
        assert remote.estimates.dtype == reference.dtype
        assert remote.cache_hit == local.cache_hit
        assert remote.epsilon_spent == local.epsilon_spent

    def test_request_built_from_json_text(self, served):
        client, mirror, _ = served
        from repro.api import wire

        doc = wire.loads(wire.dumps(wire.request_to_wire(_request(seed=3))))
        rebuilt = wire.request_from_wire(doc)
        assert np.array_equal(
            client.release(rebuilt).estimates,
            mirror.handle(_request(seed=3)).estimates,
        )

    def test_batch_matches_and_caches(self, served):
        client, mirror, _ = served
        requests = [_request(seed=s, n_trials=2) for s in (1, 2, 3)]
        remote = client.release_batch(requests)
        local = mirror.handle_batch(requests)
        for got, want in zip(remote, local):
            assert np.array_equal(got.estimates, want.estimates)
        assert [r.cache_hit for r in remote] == [r.cache_hit for r in local]

    def test_true_histogram_and_mechanisms(self, served):
        client, _, db = served
        assert np.array_equal(
            client.true_histogram(BINNING),
            db.histogram(BINNING, BINNING.n_bins),
        )
        names = client.backend.mechanisms()
        assert "osdp_laplace_l1" in names and "dawa" in names
        ping = client.backend.ping()
        assert ping["n_records"] == len(db)


class TestRemoteFailures:
    def test_batch_budget_error_reraised_with_charged_prefix(self):
        db = _db(1500)
        server = ReleaseServer(
            db.shard(2), accountant=PrivacyAccountant(total_epsilon=0.6)
        )
        mirror = ReleaseServer(
            _db(1500).shard(2), accountant=PrivacyAccountant(total_epsilon=0.6)
        )
        requests = [_request(seed=s, n_trials=1) for s in range(4)]
        local_exc = _batch_failure(mirror, requests)
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                with pytest.raises(BatchBudgetExceededError) as excinfo:
                    client.release_batch(requests)
        remote_exc = excinfo.value
        assert len(remote_exc.responses) == len(local_exc.responses) == 2
        for got, want in zip(remote_exc.responses, local_exc.responses):
            assert np.array_equal(got.estimates, want.estimates)
        assert remote_exc.failed_request.seed == 2
        # the error is also an ordinary BudgetExceededError to callers
        assert isinstance(remote_exc, BudgetExceededError)

    def test_single_release_budget_error(self):
        server = ReleaseServer(
            _db(500).shard(1), accountant=PrivacyAccountant(total_epsilon=0.1)
        )
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                with pytest.raises(BudgetExceededError):
                    client.release(_request(epsilon=0.5))
                # the connection survives a failed request
                assert client.backend.budget_remaining == pytest.approx(0.1)

    def test_unknown_mechanism_and_malformed_spec(self, served):
        client, _, _ = served
        with pytest.raises(KeyError, match="unknown mechanism"):
            client.release(
                ReleaseRequest("nope", 0.5, BINNING_SPEC, POLICY_SPEC)
            )
        from repro.core.policy_language import PolicySpecError

        with pytest.raises(PolicySpecError):
            client.release(
                ReleaseRequest(
                    "laplace", 0.5, BINNING_SPEC, {"kind": "no-such-kind"}
                )
            )


class TestBrokenConnections:
    def test_mid_exchange_failure_invalidates_the_connection(self):
        """A transport failure must kill the socket, not desync it."""
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def drop_first_connection():
            conn, _ = listener.accept()
            conn.recv(64)  # take part of the request, then hang up
            conn.close()

        thread = threading.Thread(target=drop_first_connection, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        backend = RemoteBackend(host, port)
        try:
            with pytest.raises(ConnectionError, match="mid-flight"):
                backend.ping()
            # the connection is gone for good — no request may ever
            # reuse a desynchronized stream
            with pytest.raises(ConnectionError, match="closed or broken"):
                backend.ping()
        finally:
            backend.close()
            listener.close()
            thread.join(timeout=5)

    def test_close_is_idempotent(self):
        db = _db(200)
        with RpcServer(ReleaseServer(db.shard(1))).start() as rpc:
            backend = RemoteBackend(*rpc.address)
            assert backend.ping()["n_records"] == 200
            backend.close()
            backend.close()
            with pytest.raises(ConnectionError, match="closed or broken"):
                backend.ping()


def _batch_failure(mirror, requests) -> BatchBudgetExceededError:
    """The BatchBudgetExceededError a mirror server raises on `requests`."""
    with pytest.raises(BatchBudgetExceededError) as excinfo:
        mirror.handle_batch(requests)
    return excinfo.value


class TestRemoteLiveData:
    def test_append_and_expire_over_the_socket(self, served):
        client, mirror, db = served
        before = client.true_histogram(BINNING)
        chunk = [{"age": 5, "opt_in": True}] * 3
        assert client.append_records(chunk) == mirror.append_records(chunk)
        assert client.true_histogram(BINNING)[0] == before[0] + 3
        assert client.expire_prefix(7) == mirror.expire_prefix(7)
        assert np.array_equal(
            client.true_histogram(BINNING),
            mirror.true_histogram(BINNING),
        )
        # post-update releases stay bit-identical to the mirror
        request = _request(seed=21)
        assert np.array_equal(
            client.release(request).estimates,
            mirror.handle(request).estimates,
        )

    def test_columnar_append_payload(self, served):
        client, mirror, _ = served
        chunk = ColumnarDatabase(
            {
                "age": np.array([1, 2, 3]),
                "opt_in": np.array([True, False, True]),
            }
        )
        client.append_records(chunk)
        mirror.append_records(chunk)
        assert np.array_equal(
            client.true_histogram(BINNING), mirror.true_histogram(BINNING)
        )


class TestConcurrentReadPath:
    """PR-5: many analysts, one server — shared-lock reads stay exact.

    Load-insensitive correctness only (the ≥2× aggregate-throughput bar
    lives in ``benchmarks/test_pool_startup.py`` under
    ``-m bench_regression``): concurrent seeded releases through one
    *shared* client must be bit-identical to their serial twins, and a
    metered server must never over-subscribe its budget under
    concurrent charging.
    """

    def test_shared_client_concurrent_releases_bit_identical(self):
        import threading

        db = _db(2_000, seed=3)
        server = ReleaseServer(db.shard(2))
        mirror = ReleaseServer(_db(2_000, seed=3).shard(2))
        requests = [_request(seed=s, n_trials=2) for s in range(8)]
        expected = [mirror.handle(r).estimates for r in requests]
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                results: list = [None] * len(requests)

                def run(i: int) -> None:
                    # one OsdpClient shared across threads: each thread
                    # gets its own connection under the hood
                    results[i] = client.release(requests[i]).estimates

                threads = [
                    threading.Thread(target=run, args=(i,))
                    for i in range(len(requests))
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
        for got, want in zip(results, expected):
            assert got is not None
            assert np.array_equal(got, want)

    def test_concurrent_charges_never_oversubscribe_the_budget(self):
        import threading

        total = 1.0
        server = ReleaseServer(
            _db(600).shard(1),
            accountant=PrivacyAccountant(total_epsilon=total),
        )
        n_threads, eps = 8, 0.3  # only 3 of 8 can be afforded
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                outcomes: list = [None] * n_threads

                def run(i: int) -> None:
                    try:
                        client.release(_request(epsilon=eps, seed=i))
                        outcomes[i] = "ok"
                    except BudgetExceededError:
                        outcomes[i] = "rejected"

                threads = [
                    threading.Thread(target=run, args=(i,))
                    for i in range(n_threads)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
        assert outcomes.count("ok") == 3, outcomes
        assert outcomes.count("rejected") == 5
        assert server.accountant.spent == pytest.approx(3 * eps)

    def test_release_after_concurrent_append_sees_consistent_data(self):
        import threading

        db = _db(1_000, seed=4)
        server = ReleaseServer(db.shard(2))
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                stop = threading.Event()
                failures: list = []

                def reader() -> None:
                    while not stop.is_set():
                        try:
                            hist = client.true_histogram(BINNING)
                        except Exception as exc:  # pragma: no cover
                            failures.append(exc)
                            return
                        # appends land 10 records at a time, so any
                        # snapshot a reader observes is a multiple of 10
                        assert hist.sum() % 10 == 0

                threads = [
                    threading.Thread(target=reader) for _ in range(3)
                ]
                for t in threads:
                    t.start()
                chunk = [{"age": 5, "opt_in": True}] * 10
                for _ in range(5):
                    client.append_records(chunk)
                stop.set()
                for t in threads:
                    t.join(timeout=30)
                assert not failures
                assert client.true_histogram(BINNING).sum() == 1_050


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        import threading

        from repro.service.rpc import ReadWriteLock

        lock = ReadWriteLock()
        state = {"readers": 0, "max_readers": 0, "writer_during_read": False}
        gate = threading.Barrier(3)

        def reader() -> None:
            with lock.read():
                state["readers"] += 1
                state["max_readers"] = max(
                    state["max_readers"], state["readers"]
                )
                gate.wait(timeout=10)  # both readers inside at once
                state["readers"] -= 1

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers:
            t.start()
        gate.wait(timeout=10)
        for t in readers:
            t.join(timeout=10)
        assert state["max_readers"] == 2

        with lock.write():
            acquired = []

            def late_reader() -> None:
                with lock.read():
                    acquired.append(True)

            t = threading.Thread(target=late_reader)
            t.start()
            t.join(timeout=0.2)
            assert not acquired  # reader blocked behind the writer
        t.join(timeout=10)
        assert acquired

    def test_max_readers_bounds_concurrency(self):
        import threading

        from repro.service.rpc import ReadWriteLock

        lock = ReadWriteLock(max_readers=1)
        inside = threading.Event()
        release = threading.Event()

        def holder() -> None:
            with lock.read():
                inside.set()
                release.wait(timeout=10)

        second_done = threading.Event()

        def second() -> None:
            with lock.read():
                second_done.set()

        a = threading.Thread(target=holder)
        a.start()
        assert inside.wait(timeout=10)
        b = threading.Thread(target=second)
        b.start()
        b.join(timeout=0.2)
        assert not second_done.is_set()  # capped at one reader
        release.set()
        a.join(timeout=10)
        b.join(timeout=10)
        assert second_done.is_set()

    def test_max_readers_validation(self):
        from repro.service.rpc import ReadWriteLock

        with pytest.raises(ValueError):
            ReadWriteLock(max_readers=0)


class TestWorkerFailover:
    def test_killed_worker_respawns_and_request_is_bit_identical(self):
        """The acceptance scenario: kill one pool worker mid-run."""
        db = _db(3000)
        sharded = db.shard(3)
        pool = ShardWorkerPool(sharded.shards)
        server = ReleaseServer(sharded.with_executor(pool))
        mirror = ReleaseServer(_db(3000).shard(3))
        with RpcServer(server).start() as rpc:
            with OsdpClient.connect(*rpc.address) as client:
                request = _request(seed=13)
                first = client.release(request)
                assert np.array_equal(
                    first.estimates, mirror.handle(request).estimates
                )
                # murder one worker between requests; the next request
                # (fresh seed, fresh binning width so caches miss) must
                # respawn it and still match the mirror bit for bit
                os.kill(pool._procs[1].pid, signal.SIGKILL)
                pool._procs[1].join()
                wide = IntegerBinning("age", 0, 100, 5).to_spec()
                request2 = ReleaseRequest(
                    "osdp_laplace_l1", 0.25, wide, POLICY_SPEC,
                    n_trials=3, seed=29,
                )
                second = client.release(request2)
                assert pool.stats.respawns == 1
                assert np.array_equal(
                    second.estimates, mirror.handle(request2).estimates
                )
                # and the pool keeps serving afterwards
                third = client.release(_request(seed=31))
                assert np.array_equal(
                    third.estimates,
                    mirror.handle(_request(seed=31)).estimates,
                )
        pool.close()


class TestIdempotencyCachePressure:
    def test_unsettled_entry_survives_eviction_pressure(self):
        """PR-8 satellite: an in-flight (unsettled) ``_IdemEntry`` must
        never be evicted, no matter how many settled entries flood in —
        evicting it would let a duplicate of a *running* effectful op
        start a second execution.  Only settled entries may be pruned."""
        import threading

        rpc = RpcServer(
            ReleaseServer(_db(200).shard(2)), idempotency_limit=4
        )
        try:
            release = threading.Event()
            running = threading.Event()
            original_dispatch = rpc.dispatch

            def gated_dispatch(message, received_at=None):
                if message.get("req_id") == "slow":
                    running.set()
                    assert release.wait(30.0)
                return original_dispatch(message, received_at=received_at)

            rpc.dispatch = gated_dispatch
            slow_replies: list = []
            worker = threading.Thread(
                target=lambda: slow_replies.append(
                    rpc.serve_message({"op": "ping", "req_id": "slow"})
                )
            )
            worker.start()
            assert running.wait(10.0)  # "slow" is in flight, unsettled
            # Flood far past the cache bound with settled entries.
            for i in range(20):
                rpc.serve_message({"op": "ping", "req_id": f"settled-{i}"})
            assert "slow" in rpc._idem  # survived every prune
            assert len(rpc._idem) <= 4 + 1  # bound holds + the pinned slot
            release.set()
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            assert slow_replies and "ok" in slow_replies[0]
            # The settled entry now replays instead of re-running.
            replays_before = rpc.transport_stats["idempotent_replays"]
            duplicate = rpc.serve_message({"op": "ping", "req_id": "slow"})
            assert duplicate is slow_replies[0]
            assert (
                rpc.transport_stats["idempotent_replays"]
                == replays_before + 1
            )
        finally:
            rpc.close()
