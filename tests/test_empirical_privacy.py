"""Empirical privacy checks: sampled frequency-ratio audits.

The exact verifier covers finite mechanisms; these tests audit the
*sampling-based* mechanisms statistically, estimating output frequencies
on neighboring inputs and checking the e^eps bound with slack for Monte
Carlo error.  They catch calibration bugs (wrong sensitivity, wrong
scale) that unit tests on formulas would miss.
"""

import math

import numpy as np
import pytest

from repro.core.policy import LambdaPolicy
from repro.distributions.geometric import OneSidedGeometric, TwoSidedGeometric
from repro.mechanisms.osdp_laplace import OsdpLaplaceHistogram
from repro.mechanisms.osdp_rr import OsdpRR
from repro.queries.histogram import HistogramInput

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")
N_SAMPLES = 60_000


def empirical_ratio_bound(samples_a, samples_b, bins) -> float:
    """Max frequency ratio over bins where both sides have mass."""
    hist_a, _ = np.histogram(samples_a, bins=bins)
    hist_b, _ = np.histogram(samples_b, bins=bins)
    mask = (hist_a > 50) & (hist_b > 50)  # Monte Carlo floor
    return float(np.max(hist_a[mask] / hist_b[mask]))


class TestOsdpLaplaceFrequencyRatio:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0])
    def test_neighboring_counts_within_bound(self, epsilon, rng):
        """x_ns = 5 vs x'_ns = 6 (one-sided neighbor): frequency ratio of
        the noisy outputs is bounded by e^eps wherever both have mass."""
        mech = OsdpLaplaceHistogram(epsilon)
        hist_a = HistogramInput(x=np.array([5.0]), x_ns=np.array([5.0]))
        hist_b = HistogramInput(x=np.array([6.0]), x_ns=np.array([6.0]))
        samples_a = np.concatenate(
            [mech.release(hist_a, rng) for _ in range(N_SAMPLES // 10)]
        )
        samples_b = np.concatenate(
            [mech.release(hist_b, rng) for _ in range(N_SAMPLES // 10)]
        )
        bins = np.linspace(-5, 6, 30)
        ratio = empirical_ratio_bound(samples_a, samples_b, bins)
        assert ratio <= math.exp(epsilon) * 1.35  # MC slack


class TestOsdpRRFrequencyRatio:
    def test_suppression_probability_ratio(self, rng):
        """Case 2.2 of Theorem 4.1's proof, measured: Pr[suppress |
        sensitive] / Pr[suppress | non-sensitive] ~ e^eps."""
        epsilon = 1.0
        mech = OsdpRR(ODD, epsilon)
        suppressed_sensitive = 0
        suppressed_non_sensitive = 0
        trials = 40_000
        for _ in range(trials):
            if not mech.sample([1], rng):  # sensitive record
                suppressed_sensitive += 1
            if not mech.sample([2], rng):  # non-sensitive record
                suppressed_non_sensitive += 1
        ratio = (suppressed_sensitive / trials) / (
            suppressed_non_sensitive / trials
        )
        assert ratio == pytest.approx(math.exp(epsilon), rel=0.05)


class TestGeometricFrequencyRatio:
    def test_two_sided_geometric_dp_ratio(self, rng):
        """Counts 10 vs 11 with TwoSidedGeometric noise: pointwise
        frequency ratio bounded by e^eps."""
        epsilon = 1.0
        noise = TwoSidedGeometric.from_epsilon(epsilon)
        out_a = 10 + noise.sample(rng, size=N_SAMPLES)
        out_b = 11 + noise.sample(rng, size=N_SAMPLES)
        values, counts_a = np.unique(out_a, return_counts=True)
        freq_a = dict(zip(values.tolist(), counts_a.tolist()))
        values, counts_b = np.unique(out_b, return_counts=True)
        freq_b = dict(zip(values.tolist(), counts_b.tolist()))
        for value in set(freq_a) & set(freq_b):
            if freq_a[value] > 200 and freq_b[value] > 200:
                ratio = freq_a[value] / freq_b[value]
                assert ratio <= math.exp(epsilon) * 1.25

    def test_one_sided_geometric_never_overshoots(self, rng):
        noise = OneSidedGeometric.from_epsilon(1.0)
        outs = 10 + noise.sample(rng, size=5_000)
        assert np.max(outs) <= 10


class TestCalibrationRegressions:
    """Wrong-scale bugs show up as violated or vacuous bounds."""

    def test_osdp_laplace_scale_is_inverse_epsilon(self, rng):
        mech = OsdpLaplaceHistogram(epsilon=2.0)
        hist = HistogramInput(x=np.zeros(50_000), x_ns=np.zeros(50_000))
        noise = mech.release(hist, rng)
        assert np.mean(np.abs(noise)) == pytest.approx(0.5, rel=0.05)

    def test_laplace_histogram_scale_is_two_over_epsilon(self, rng):
        from repro.mechanisms.laplace import LaplaceHistogram

        mech = LaplaceHistogram(epsilon=2.0)
        hist = HistogramInput(x=np.zeros(50_000), x_ns=np.zeros(50_000))
        noise = mech.release(hist, rng)
        assert np.mean(np.abs(noise)) == pytest.approx(1.0, rel=0.05)

    def test_suppress_scale_is_two_over_tau(self, rng):
        from repro.mechanisms.suppress import SuppressHistogram

        mech = SuppressHistogram(tau=4.0)
        hist = HistogramInput(x=np.zeros(50_000), x_ns=np.zeros(50_000))
        out = mech.release(hist, rng)  # clipped at 0
        # E[max(Lap(1/2), 0)] = scale / 2 = 1/4.
        assert np.mean(out) == pytest.approx(0.25, rel=0.05)
