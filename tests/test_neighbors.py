"""Tests for the neighbor relations (Definitions 2.1, 3.2, 10.1)."""

import pytest

from repro.core.neighbors import (
    dp_neighbors,
    extended_one_sided_neighbors,
    is_dp_neighbor,
    is_extended_one_sided_neighbor,
    is_one_sided_neighbor,
    one_sided_neighbors,
)
from repro.core.policy import AllSensitivePolicy, LambdaPolicy

ODD_SENSITIVE = LambdaPolicy(lambda r: r % 2 == 1, name="odd")
UNIVERSE = (0, 1, 2, 3)


class TestDPNeighbors:
    def test_counts(self):
        db = (0, 1)
        neighbors = list(dp_neighbors(db, UNIVERSE))
        # Each of 2 positions can take 3 other values.
        assert len(neighbors) == 6

    def test_same_size(self):
        for n in dp_neighbors((0, 1, 2), UNIVERSE):
            assert len(n) == 3

    def test_is_dp_neighbor_true(self):
        assert is_dp_neighbor((0, 1), (0, 2))

    def test_is_dp_neighbor_multiset_semantics(self):
        # (0, 1) -> (1, 1): replace the 0 with a 1.
        assert is_dp_neighbor((0, 1), (1, 1))

    def test_is_dp_neighbor_false_same_db(self):
        assert not is_dp_neighbor((0, 1), (1, 0))  # same multiset

    def test_is_dp_neighbor_false_two_changes(self):
        assert not is_dp_neighbor((0, 1), (2, 3))

    def test_is_dp_neighbor_false_different_sizes(self):
        assert not is_dp_neighbor((0, 1), (0, 1, 2))


class TestOneSidedNeighbors:
    def test_only_sensitive_records_replaced(self):
        db = (1, 2)  # 1 sensitive, 2 not
        neighbors = set(one_sided_neighbors(db, ODD_SENSITIVE, UNIVERSE))
        # Only position 0 can change, to 0, 2 or 3.
        assert neighbors == {(0, 2), (2, 2), (3, 2)}

    def test_no_sensitive_no_neighbors(self):
        assert list(one_sided_neighbors((0, 2), ODD_SENSITIVE, UNIVERSE)) == []

    def test_asymmetry(self):
        """D' in N_P(D) does not imply D in N_P(D')."""
        d = (1, 2)
        d_prime = (0, 2)  # replaced the sensitive 1 with non-sensitive 0
        assert is_one_sided_neighbor(d, d_prime, ODD_SENSITIVE)
        assert not is_one_sided_neighbor(d_prime, d, ODD_SENSITIVE)

    def test_all_sensitive_policy_reduces_to_dp(self):
        db = (0, 1)
        dp = set(dp_neighbors(db, UNIVERSE))
        osdp = set(one_sided_neighbors(db, AllSensitivePolicy(), UNIVERSE))
        assert dp == osdp

    def test_is_one_sided_neighbor_respects_policy(self):
        assert is_one_sided_neighbor((1, 0), (3, 0), ODD_SENSITIVE)
        assert not is_one_sided_neighbor((0, 2), (2, 2), ODD_SENSITIVE)

    def test_is_one_sided_neighbor_size_mismatch(self):
        assert not is_one_sided_neighbor((1,), (1, 2), ODD_SENSITIVE)


class TestExtendedNeighbors:
    def test_removal_of_sensitive(self):
        db = (1, 2)
        neighbors = list(extended_one_sided_neighbors(db, ODD_SENSITIVE, UNIVERSE))
        assert (2,) in neighbors

    def test_no_removal_of_non_sensitive(self):
        db = (1, 2)
        neighbors = list(extended_one_sided_neighbors(db, ODD_SENSITIVE, UNIVERSE))
        assert (1,) not in neighbors

    def test_addition_requires_distinct_record(self):
        db = (1,)  # single sensitive record with value 1
        neighbors = set(extended_one_sided_neighbors(db, ODD_SENSITIVE, UNIVERSE))
        # Can add any r' != 1, and can remove the 1.
        assert neighbors == {(), (1, 0), (1, 2), (1, 3)}

    def test_no_sensitive_records_no_neighbors(self):
        assert (
            list(extended_one_sided_neighbors((0, 2), ODD_SENSITIVE, UNIVERSE)) == []
        )

    def test_is_extended_checks_removal(self):
        assert is_extended_one_sided_neighbor((1, 2), (2,), ODD_SENSITIVE)
        assert not is_extended_one_sided_neighbor((1, 2), (1,), ODD_SENSITIVE)

    def test_is_extended_checks_addition(self):
        assert is_extended_one_sided_neighbor((1, 2), (1, 2, 0), ODD_SENSITIVE)
        # No sensitive record in the base database: nothing may be added.
        assert not is_extended_one_sided_neighbor((0, 2), (0, 2, 3), ODD_SENSITIVE)

    def test_is_extended_rejects_same_size(self):
        assert not is_extended_one_sided_neighbor((1, 2), (3, 2), ODD_SENSITIVE)

    def test_theorem_10_1_two_hops(self):
        """The appendix proof: an OSDP neighbor is reachable by two
        extended steps (add then remove)."""
        d = (1, 2)
        d_prime = (0, 2)
        bridge = (1, 2, 0)  # D + {r'}
        assert is_extended_one_sided_neighbor(d, bridge, ODD_SENSITIVE)
        # bridge - {1} = (2, 0) == d_prime as a multiset
        assert is_extended_one_sided_neighbor(bridge, (2, 0), ODD_SENSITIVE)
