"""Tests for the Wi-Fi trace ingestion pipeline."""

import pytest

from repro.data.tippers import TippersConfig, generate_tippers
from repro.data.trace_io import (
    SECONDS_PER_DAY,
    SECONDS_PER_SLOT,
    AssociationEvent,
    build_trajectories,
    export_events,
    parse_events,
)


def event(ap, device, day=0, slot=0, offset=0.0):
    return AssociationEvent(
        ap=ap,
        device=device,
        timestamp=day * SECONDS_PER_DAY + slot * SECONDS_PER_SLOT + offset,
    )


class TestEventParsing:
    def test_basic_rows(self):
        rows = ["ap1,deviceA,600", "ap2,deviceA,1200"]
        events = list(parse_events(rows))
        assert events[0].ap == "ap1"
        assert events[0].slot == 1
        assert events[1].slot == 2

    def test_header_skipped(self):
        rows = ["ap,device,timestamp", "ap1,d,0"]
        assert len(list(parse_events(rows))) == 1

    def test_bad_column_count(self):
        with pytest.raises(ValueError, match="expected"):
            list(parse_events(["onlyonefield"]))

    def test_bad_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            list(parse_events(["ap,dev,yesterday"]))

    def test_day_and_slot_derivation(self):
        e = AssociationEvent("a", "d", SECONDS_PER_DAY * 3 + 605)
        assert e.day == 3
        assert e.slot == 1


class TestBuildTrajectories:
    def test_single_user_day(self):
        events = [event("a", "bob", slot=10), event("a", "bob", slot=11)]
        trajectories, ap_index = build_trajectories(events)
        assert len(trajectories) == 1
        t = trajectories[0]
        assert t.slots == ((10, ap_index["a"]), (11, ap_index["a"]))

    def test_dominant_ap_per_slot(self):
        """Most frequent AP in a slot wins (the paper's discretization)."""
        events = [
            event("weak", "bob", slot=5, offset=0),
            event("strong", "bob", slot=5, offset=100),
            event("strong", "bob", slot=5, offset=200),
        ]
        trajectories, ap_index = build_trajectories(events)
        assert trajectories[0].slots == ((5, ap_index["strong"]),)

    def test_gap_filled_by_carry_forward(self):
        events = [event("a", "bob", slot=3), event("b", "bob", slot=6)]
        trajectories, ap_index = build_trajectories(events)
        aps = trajectories[0].aps
        assert len(aps) == 4  # slots 3..6 contiguous
        assert aps == (ap_index["a"], ap_index["a"], ap_index["a"], ap_index["b"])

    def test_separate_days_separate_trajectories(self):
        events = [event("a", "bob", day=0), event("a", "bob", day=1)]
        trajectories, _ = build_trajectories(events)
        assert len(trajectories) == 2
        assert trajectories[0].user_id == trajectories[1].user_id

    def test_fixed_ap_index_enforced(self):
        with pytest.raises(KeyError):
            build_trajectories([event("mystery", "bob")], ap_index={"a": 0})

    def test_deterministic_user_ids(self):
        events = [event("a", "zoe"), event("a", "adam")]
        trajectories, _ = build_trajectories(events)
        by_user = {t.user_id for t in trajectories}
        assert by_user == {0, 1}


class TestRoundTrip:
    def test_synthetic_trace_round_trips(self):
        dataset = generate_tippers(TippersConfig(n_users=30, n_days=5, seed=2))
        csv_text = export_events(dataset.trajectories)
        events = list(parse_events(csv_text.splitlines()))
        rebuilt, ap_index = build_trajectories(events)
        assert len(rebuilt) == len(dataset.trajectories)
        # Slot coverage and AP sequences survive the round trip (user
        # ids are re-densified, so compare sorted slot structures).
        original = sorted(
            (t.day, t.start_slot, len(t.slots)) for t in dataset.trajectories
        )
        recovered = sorted((t.day, t.start_slot, len(t.slots)) for t in rebuilt)
        assert original == recovered

    def test_export_rejects_bad_slot(self):
        from repro.data.tippers import Trajectory

        bad = Trajectory(user_id=0, day=0, slots=((999, 0),))
        with pytest.raises(ValueError):
            export_events([bad])

    def test_export_uses_ap_names(self):
        from repro.data.tippers import Trajectory

        t = Trajectory(user_id=0, day=0, slots=((0, 7),))
        text = export_events([t], ap_names={7: "lounge"})
        assert "lounge" in text
