"""Unit lane for the write-ahead log (`repro.service.wal`).

The durability contract under test, with no sockets or subprocesses:
every logged write survives ``recover`` onto a fresh server
bit-identically; a torn tail (the frame a crash interrupted) is
truncated away; a corrupt snapshot refuses loudly; snapshot+truncate
compaction bounds replay to the entries past the snapshot; and the
``applied`` map keeps protocol-level retries idempotent across a
restart.  SIGKILL-shaped integration coverage lives in
``tests/test_cluster_writes.py``.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.api.wire import encode_message
from repro.data.columnar import ColumnarDatabase
from repro.service.server import ReleaseServer
from repro.service.wal import (
    MemoryWal,
    WalError,
    WriteAheadLog,
    _frame,
    apply_write,
    database_columns,
    merge_append_payloads,
    payload_events,
    validate_payload,
)


def _db(n: int = 200, seed: int = 0) -> ColumnarDatabase:
    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _server(n: int = 200, seed: int = 0) -> ReleaseServer:
    return ReleaseServer(_db(n, seed).shard(2))


def _append_payload(lo: int, hi: int) -> dict:
    return {
        "columns": {
            "age": np.arange(lo, hi) % 100,
            "opt_in": np.ones(hi - lo, dtype=bool),
        }
    }


def _columns(server: ReleaseServer) -> dict:
    return database_columns(server.db)


def _assert_same_state(server: ReleaseServer, mirror: ReleaseServer) -> None:
    ours, theirs = _columns(server), _columns(mirror)
    assert sorted(ours) == sorted(theirs)
    for name, column in ours.items():
        assert np.array_equal(column, theirs[name]), name
        assert column.dtype == theirs[name].dtype, name


def _log_and_apply(wal, server, wop, payload, write_id=None):
    validate_payload(wop, payload, db=server.db)
    seq = wal.log(wop, payload, write_id=write_id)
    result = apply_write(server, wop, payload)
    wal.record_result(write_id, seq, result)
    return seq, result


# ----------------------------------------------------------------------
# MemoryWal: sequencing, chain digest, applied map
# ----------------------------------------------------------------------


class TestMemoryWal:
    def test_sequence_numbers_are_monotonic(self):
        wal = MemoryWal()
        assert wal.log("append_records", _append_payload(0, 3)) == 1
        assert wal.log("expire_prefix", {"n_records": 1}) == 2
        assert wal.last_seq == 2
        assert [e["seq"] for e in wal.entries_since(0)] == [1, 2]
        assert [e["seq"] for e in wal.entries_since(1)] == [2]

    def test_explicit_seq_must_be_next(self):
        wal = MemoryWal()
        wal.log("expire_prefix", {"n_records": 0}, seq=1)
        with pytest.raises(WalError, match="out-of-sequence"):
            wal.log("expire_prefix", {"n_records": 0}, seq=3)
        with pytest.raises(WalError, match="out-of-sequence"):
            wal.log("expire_prefix", {"n_records": 0}, seq=1)

    def test_chain_distinguishes_divergent_histories(self):
        # Two wals at the same last_seq but with different write ids
        # must disagree on the chain — that disagreement is how resync
        # detects a replica that logged a write its peers never acked.
        a, b = MemoryWal(), MemoryWal()
        a.log("append_records", _append_payload(0, 2), write_id="w1")
        b.log("append_records", _append_payload(0, 2), write_id="w2")
        assert a.last_seq == b.last_seq == 1
        assert a.chain != b.chain
        # Same history, same chain.
        c = MemoryWal()
        c.log("append_records", _append_payload(0, 2), write_id="w1")
        assert c.chain == a.chain
        assert c.chain_at(1) == a.chain_at(1)

    def test_chain_at_returns_none_when_not_retained(self):
        wal = MemoryWal()
        wal.log("expire_prefix", {"n_records": 0}, write_id="w")
        assert wal.chain_at(1) == wal.chain
        assert wal.chain_at(7) is None
        assert wal.chain_at(0) == 0  # the empty-history digest

    def test_applied_map_replays_and_evicts_oldest(self):
        wal = MemoryWal(applied_limit=2)
        wal.record_result("a", 1, 10)
        wal.record_result("b", 2, 20)
        assert wal.applied_result("a") == {"seq": 1, "result": 10}
        wal.record_result("c", 3, 30)
        assert wal.applied_result("a") is None  # evicted, oldest first
        assert wal.applied_result("b") == {"seq": 2, "result": 20}
        assert wal.applied_result(None) is None

    def test_install_base_resets_log_and_chain(self):
        wal = MemoryWal()
        wal.log("expire_prefix", {"n_records": 0}, write_id="w")
        wal.install_base(
            {"age": np.arange(3)}, last_seq=9, applied=[["w2", 9, 5]],
            chain=123,
        )
        assert wal.last_seq == wal.snapshot_seq == 9
        assert wal.chain == wal.snapshot_chain == 123
        assert wal.entries_since(0) == []
        assert wal.applied_result("w2") == {"seq": 9, "result": 5}
        assert wal.applied_result("w") is None


# ----------------------------------------------------------------------
# Payload validation / column export
# ----------------------------------------------------------------------


class TestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown write op"):
            validate_payload("drop_table", {})

    def test_expire_bounds(self):
        server = _server(n=10)
        validate_payload("expire_prefix", {"n_records": 10}, db=server.db)
        with pytest.raises(ValueError, match="non-negative"):
            validate_payload("expire_prefix", {"n_records": -1})
        with pytest.raises(ValueError, match="only 10 are stored"):
            validate_payload(
                "expire_prefix", {"n_records": 11}, db=server.db
            )

    def test_database_columns_rejects_object_columns(self):
        db = ColumnarDatabase(
            {"tags": np.array([["a"], ["b", "c"]], dtype=object)}
        )
        with pytest.raises(WalError, match="no portable snapshot form"):
            database_columns(db)


# ----------------------------------------------------------------------
# WriteAheadLog: durability round trips
# ----------------------------------------------------------------------


class TestRecovery:
    def test_recover_replays_to_bit_identical_state(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 30), "w1"
            )
            _log_and_apply(
                wal, server, "expire_prefix", {"n_records": 7}, "w2"
            )

        fresh = _server()  # the same base build a restart would do
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["replayed"] == 2
        assert report["skipped"] == 0
        assert report["truncated_bytes"] == 0
        assert wal2.last_seq == 2
        _assert_same_state(fresh, server)
        # The applied map came back too: a coordinator retry replays.
        assert wal2.applied_result("w1")["seq"] == 1
        assert wal2.applied_result("w2")["seq"] == 2

    def test_recovered_chain_matches_live_chain(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 5), "w1"
            )
            live_chain = wal.chain
        with WriteAheadLog(tmp_path) as wal2:
            wal2.recover(_server())
        assert wal2.chain == live_chain

    def test_torn_tail_is_truncated(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 10), "w1"
            )
        log_path = tmp_path / WriteAheadLog.LOG_NAME
        good_size = log_path.stat().st_size
        # A crash mid-write: a frame header promising more bytes than
        # the file holds.  It was never acked, so dropping it is right.
        with open(log_path, "ab") as handle:
            handle.write(_frame(b"x" * 100)[:40])
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["replayed"] == 1
        assert report["truncated_bytes"] == 40
        assert log_path.stat().st_size == good_size
        _assert_same_state(fresh, server)
        # The truncated log accepts new appends from a clean boundary.
        with WriteAheadLog(tmp_path) as wal3:
            wal3.recover(_server())
            assert wal3.log("expire_prefix", {"n_records": 1}) == 2

    def test_crc_corruption_stops_replay(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 10), "w1"
            )
            end_of_first = (tmp_path / WriteAheadLog.LOG_NAME).stat().st_size
            _log_and_apply(
                wal, server, "append_records", _append_payload(10, 20), "w2"
            )
        log_path = tmp_path / WriteAheadLog.LOG_NAME
        data = bytearray(log_path.read_bytes())
        data[end_of_first + 12] ^= 0xFF  # flip a byte inside entry two
        log_path.write_bytes(data)
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["replayed"] == 1  # entry two is untrusted
        assert report["truncated_bytes"] > 0
        assert wal2.last_seq == 1

    def test_sequence_gap_refuses_recovery(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal._persist({"seq": 1, "write_id": None, "wop": "expire_prefix",
                      "payload": {"n_records": 0}, "chain": 0})
        wal._persist({"seq": 3, "write_id": None, "wop": "expire_prefix",
                      "payload": {"n_records": 0}, "chain": 0})
        wal.close()
        with WriteAheadLog(tmp_path) as wal2:
            with pytest.raises(WalError, match="sequence gap"):
                wal2.recover(_server())

    def test_poisoned_entry_is_skipped_but_advances_seq(self, tmp_path):
        # An entry that cannot apply (the live path validates before
        # logging, so this means it failed live too) must not halt
        # replay or desequence the replica.
        wal = WriteAheadLog(tmp_path)
        wal._persist({"seq": 1, "write_id": None, "wop": "expire_prefix",
                      "payload": {"n_records": 10**9}, "chain": 0})
        wal.close()
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report == {
            "snapshot_seq": 0, "replayed": 0, "skipped": 1,
            "truncated_bytes": 0,
        }
        assert wal2.last_seq == 1


class TestGroupCommit:
    """The streaming tier's batched ingest commit: many staged appends
    coalesce into ONE logged entry (`merge_append_payloads`)."""

    def test_payload_events_counts_both_forms(self):
        assert payload_events(_append_payload(0, 7)) == 7
        assert payload_events({"columns": {}}) == 0
        assert payload_events({"records": [{"age": 1}, {"age": 2}]}) == 2

    def test_merge_column_payloads_concatenates_in_order(self):
        merged = merge_append_payloads(
            [_append_payload(0, 3), _append_payload(3, 8)]
        )
        reference = _append_payload(0, 8)
        assert sorted(merged["columns"]) == sorted(reference["columns"])
        for name, column in reference["columns"].items():
            got = merged["columns"][name]
            assert np.array_equal(got, column), name
            assert got.dtype == column.dtype, name
        assert payload_events(merged) == 8

    def test_merge_record_payloads_extends_in_order(self):
        merged = merge_append_payloads(
            [
                {"records": [{"age": 1, "opt_in": True}]},
                {"records": [{"age": 2, "opt_in": False}]},
            ]
        )
        assert [r["age"] for r in merged["records"]] == [1, 2]

    def test_merge_rejects_empty_and_mixed_forms(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_append_payloads([])
        with pytest.raises(ValueError):
            merge_append_payloads(
                [_append_payload(0, 2), {"records": [{"age": 1}]}]
            )
        with pytest.raises(ValueError, match="column"):
            merge_append_payloads(
                [_append_payload(0, 2), {"columns": {"other": np.arange(2)}}]
            )

    def test_group_commit_landing_on_snapshot_boundary(self, tmp_path):
        """A merged group commit whose entry lands exactly at the
        ``snapshot_every`` boundary: compaction fires on the batched
        entry, and recovery from the snapshot is bit-identical."""
        server = _server()
        with WriteAheadLog(tmp_path, snapshot_every=2) as wal:
            for group in range(2):
                merged = merge_append_payloads(
                    [
                        _append_payload(lo, lo + 5)
                        for lo in range(group * 20, group * 20 + 20, 5)
                    ]
                )
                assert payload_events(merged) == 20
                _log_and_apply(
                    wal, server, "append_records", merged, f"g{group}"
                )
                wal.maybe_compact(server)
            # The second group commit IS the boundary entry (seq 2).
            assert wal.snapshot_seq == 2
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["snapshot_seq"] == 2
        assert report["replayed"] == 0  # all 40 events live in the snapshot
        assert len(fresh.db) == len(server.db)
        _assert_same_state(fresh, server)

    def test_torn_tail_mid_group_commit_replays_to_acked_watermark(
        self, tmp_path
    ):
        """A crash halfway through writing a group commit's frame: the
        torn group was never acked, so recovery must truncate it and
        replay exactly the previously acked groups — no partial batch
        ever becomes visible."""
        server = _server()
        log_path = tmp_path / WriteAheadLog.LOG_NAME
        with WriteAheadLog(tmp_path) as wal:
            first = merge_append_payloads(
                [_append_payload(0, 10), _append_payload(10, 30)]
            )
            _log_and_apply(wal, server, "append_records", first, "g1")
            acked_size = log_path.stat().st_size
            second = merge_append_payloads(
                [_append_payload(30, 45), _append_payload(45, 70)]
            )
            _log_and_apply(wal, server, "append_records", second, "g2")
            full_size = log_path.stat().st_size
        # Cut the second group's frame in half, as the crash left it.
        torn_size = acked_size + (full_size - acked_size) // 2
        with open(log_path, "r+b") as handle:
            handle.truncate(torn_size)
        mirror = _server()  # the acked watermark: group 1 only
        apply_write(mirror, "append_records", first)
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["replayed"] == 1
        assert report["truncated_bytes"] == torn_size - acked_size
        assert wal2.last_seq == 1
        assert log_path.stat().st_size == acked_size
        _assert_same_state(fresh, mirror)
        # The log accepts the re-submitted group from a clean boundary.
        with WriteAheadLog(tmp_path) as wal3:
            wal3.recover(_server())
            assert wal3.log("append_records", second, write_id="g2") == 2


class TestCompaction:
    def test_snapshot_bounds_replay(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path, snapshot_every=2) as wal:
            for i in range(5):
                _log_and_apply(
                    wal, server, "append_records",
                    _append_payload(i * 4, i * 4 + 4), f"w{i}",
                )
                wal.maybe_compact(server)
            assert wal.snapshot_seq == 4  # compacted at entries 2 and 4
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["snapshot_seq"] == 4
        assert report["replayed"] == 1  # only the entry past the snapshot
        assert wal2.last_seq == 5
        _assert_same_state(fresh, server)

    def test_applied_map_survives_snapshot(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path, snapshot_every=1) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 8), "w1"
            )
            assert wal.maybe_compact(server)
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(_server())
        assert report["replayed"] == 0  # everything lives in the snapshot
        assert wal2.applied_result("w1")["seq"] == 1

    def test_corrupt_snapshot_refuses_loudly(self, tmp_path):
        server = _server()
        with WriteAheadLog(tmp_path, snapshot_every=1) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 8), "w1"
            )
            assert wal.maybe_compact(server)
        snap = tmp_path / WriteAheadLog.SNAPSHOT_NAME
        data = bytearray(snap.read_bytes())
        data[-1] ^= 0xFF
        snap.write_bytes(data)
        with WriteAheadLog(tmp_path) as wal2:
            with pytest.raises(WalError, match="integrity"):
                wal2.recover(_server())

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        # The rename landed but the log truncation didn't: recovery
        # must skip the pre-snapshot leftovers instead of double-applying.
        server = _server()
        with WriteAheadLog(tmp_path) as wal:
            _log_and_apply(
                wal, server, "append_records", _append_payload(0, 8), "w1"
            )
            log_bytes = (tmp_path / WriteAheadLog.LOG_NAME).read_bytes()
            assert wal.compact(server)
        # Put the already-snapshotted entry back, as the crash left it.
        (tmp_path / WriteAheadLog.LOG_NAME).write_bytes(log_bytes)
        fresh = _server()
        with WriteAheadLog(tmp_path) as wal2:
            report = wal2.recover(fresh)
        assert report["snapshot_seq"] == 1
        assert report["replayed"] == 0  # leftover skipped, not re-applied
        _assert_same_state(fresh, server)


# ----------------------------------------------------------------------
# Framing details
# ----------------------------------------------------------------------


def test_frame_is_length_then_crc():
    blob = encode_message({"seq": 1})
    framed = _frame(blob)
    assert framed[8:] == blob
    length = int.from_bytes(framed[:4], "big")
    crc = int.from_bytes(framed[4:8], "big")
    assert length == len(blob)
    assert crc == zlib.crc32(blob)


def test_lazy_log_open_creates_no_file_until_first_write(tmp_path):
    wal = WriteAheadLog(tmp_path)
    assert not os.path.exists(tmp_path / WriteAheadLog.LOG_NAME)
    wal.log("expire_prefix", {"n_records": 0})
    assert os.path.exists(tmp_path / WriteAheadLog.LOG_NAME)
    wal.close()
