"""Tests for ObjDP (objective perturbation, Chaudhuri et al.)."""

import numpy as np
import pytest

from repro.classification.logistic import LogisticRegression
from repro.classification.metrics import roc_auc
from repro.classification.objective_perturbation import (
    ObjectivePerturbationLR,
    RandomBaseline,
    normalize_rows,
    sample_perturbation,
)


def separable_data(rng, n=800, d=4):
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestNormalization:
    def test_norms_bounded_by_one(self, rng):
        X = rng.normal(size=(50, 3)) * 100
        normalized = normalize_rows(X)
        assert np.linalg.norm(normalized, axis=1).max() <= 1.0 + 1e-12

    def test_already_bounded_unchanged(self):
        X = np.array([[0.1, 0.2], [0.0, 0.5]])
        assert np.array_equal(normalize_rows(X), X)

    def test_preserves_direction(self, rng):
        X = rng.normal(size=(10, 3)) * 7
        normalized = normalize_rows(X)
        # Global scaling: ratios between rows are preserved.
        ratio = X[0] / normalized[0]
        assert np.allclose(X / normalized, ratio[None, :])


class TestPerturbationSampling:
    def test_norm_distribution(self, rng):
        """||b|| ~ Gamma(d, 2/eps'): mean d * 2 / eps'."""
        d, eps = 5, 2.0
        norms = [
            np.linalg.norm(sample_perturbation(d, eps, rng)) for _ in range(4000)
        ]
        assert np.mean(norms) == pytest.approx(d * 2.0 / eps, rel=0.05)

    def test_direction_roughly_uniform(self, rng):
        d = 3
        vecs = np.stack(
            [sample_perturbation(d, 1.0, rng) for _ in range(4000)]
        )
        directions = vecs / np.linalg.norm(vecs, axis=1, keepdims=True)
        assert np.allclose(directions.mean(axis=0), 0.0, atol=0.05)


class TestObjDP:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            ObjectivePerturbationLR(epsilon=0.0)

    def test_no_intercept(self):
        assert not ObjectivePerturbationLR(epsilon=1.0).fit_intercept

    def test_high_epsilon_approaches_non_private(self, rng):
        X, y = separable_data(rng)
        Xn = normalize_rows(X)
        private = ObjectivePerturbationLR(epsilon=50.0, lam=1e-2)
        private.fit(Xn, y, rng=rng)
        baseline = LogisticRegression(lam=1e-2, fit_intercept=False).fit(Xn, y)
        auc_private = roc_auc(y, private.decision_function(Xn))
        auc_base = roc_auc(y, baseline.decision_function(Xn))
        assert auc_private == pytest.approx(auc_base, abs=0.03)

    def test_low_epsilon_near_random(self, rng):
        X, y = separable_data(rng, n=300)
        Xn = normalize_rows(X)
        aucs = []
        for seed in range(10):
            model = ObjectivePerturbationLR(epsilon=0.001, lam=1e-2)
            model.fit(Xn, y, rng=np.random.default_rng(seed))
            aucs.append(roc_auc(y, model.decision_function(Xn)))
        assert np.mean(aucs) == pytest.approx(0.5, abs=0.15)

    def test_epsilon_prime_correction_applied(self, rng):
        X, y = separable_data(rng, n=200)
        model = ObjectivePerturbationLR(epsilon=1.0, lam=1e-2)
        model.fit(normalize_rows(X), y, rng=rng)
        assert model.epsilon_prime_ is not None
        assert model.epsilon_prime_ < 1.0

    def test_lambda_raised_when_epsilon_prime_negative(self, rng):
        """Tiny lambda at small n forces the algorithm's fallback branch."""
        X, y = separable_data(rng, n=40)
        model = ObjectivePerturbationLR(epsilon=0.05, lam=1e-9)
        model.fit(normalize_rows(X), y, rng=rng)
        assert model.effective_lam_ > 1e-9
        assert model.epsilon_prime_ == pytest.approx(0.025)

    def test_guarantee(self):
        assert ObjectivePerturbationLR(epsilon=0.7).guarantee.epsilon == 0.7


class TestRandomBaseline:
    def test_auc_near_half(self, rng):
        y = (rng.random(4000) < 0.3).astype(int)
        baseline = RandomBaseline(seed=1).fit(None, y)
        scores = baseline.decision_function(np.zeros((4000, 1)))
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)
