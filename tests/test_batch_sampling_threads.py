"""Thread-safety of the bulk samplers and the scratch pool.

The regression pinned here: the bulk-bits SFC64 generator used to be a
module-level singleton, so two threads drawing noise concurrently
re-seeded and consumed *the same* bit stream — each stole words from
the other's sequence and seeded releases stopped being reproducible
under the RPC tier's reader concurrency.  The generator (like the
scratch buffers) is now thread-local: a seeded release produces the
same bytes whether it runs alone or while N other threads hammer the
samplers.

Also pinned: the scratch pool's LRU discipline — an overflow evicts
only the oldest entry, and a hit is touched to the back.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.policy import OptInPolicy
from repro.data.columnar import ColumnarDatabase
from repro.mechanisms import batch_sampling, kernels
from repro.mechanisms.kernels import _MAX_SCRATCH_ENTRIES, _scratch_local
from repro.queries.histogram import IntegerBinning
from repro.service import ReleaseRequest, ReleaseServer

N_THREADS = 8
N_ROUNDS = 6


def _sampler_bytes(seed: int) -> bytes:
    """One deterministic tour through all three bulk samplers."""
    base = np.linspace(-2.0, 2.0, 17)
    counts = np.arange(1, 30)
    out = []
    rng = np.random.default_rng(seed)
    out.append(batch_sampling.laplace_rows(rng, 1.5, base, 12).tobytes())
    rng = np.random.default_rng(seed + 1)
    out.append(batch_sampling.one_sided_rows(rng, 0.7, base, 12).tobytes())
    rng = np.random.default_rng(seed + 2)
    out.append(
        batch_sampling.binomial_inverse_cdf_rows(rng, counts, 0.41, 12).tobytes()
    )
    return b"".join(out)


def _hammer(work, n_threads: int):
    """Run ``work(i)`` on n_threads threads, all released at once."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(i: int) -> None:
        try:
            barrier.wait()
            results[i] = work(i)
        except BaseException as exc:  # surfaced below, not swallowed
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestThreadHammer:
    def test_concurrent_seeded_streams_bit_identical_to_serial(self):
        serial = [_sampler_bytes(1000 + i) for i in range(N_THREADS)]
        for _ in range(N_ROUNDS):
            def work(i: int, _serial=serial):
                got = _sampler_bytes(1000 + i)
                # Compare inside the thread too, so a mismatch fails
                # even if a later round happens to agree.
                assert got == _serial[i]
                return got

            results = _hammer(work, N_THREADS)
            assert results == serial

    def test_concurrent_releases_bit_identical_to_serial(self):
        rng = np.random.default_rng(0)
        db = ColumnarDatabase(
            {
                "age": rng.integers(0, 100, 3000),
                "opt_in": rng.integers(0, 2, 3000).astype(bool),
            }
        )
        binning = IntegerBinning("age", 0, 100, 10)

        def request(i: int) -> ReleaseRequest:
            return ReleaseRequest(
                "osdp_laplace_l1",
                0.5,
                binning=binning,
                policy=OptInPolicy(),
                n_trials=3,
                seed=50 + i,
            )

        serial_server = ReleaseServer(db)
        serial = [
            serial_server.handle(request(i)).estimates.tobytes()
            for i in range(N_THREADS)
        ]
        hammered_server = ReleaseServer(db)
        results = _hammer(
            lambda i: hammered_server.handle(request(i)).estimates.tobytes(),
            N_THREADS,
        )
        assert results == serial

    def test_bulk_bits_generator_is_thread_local(self):
        # The old module-level singleton must stay gone.
        assert not hasattr(batch_sampling, "_SFC_BITGEN")
        assert not hasattr(batch_sampling, "_SFC_STATE_TEMPLATE")

        def work(i: int):
            rng = np.random.default_rng(7)
            bitgen = batch_sampling._bulk_bits_generator(rng)
            # Memoized within the thread...
            assert batch_sampling._bulk_bits_generator(rng) is bitgen
            return bitgen

        # Hold the objects (not ids) so none is collected and its id
        # recycled before the distinctness check.
        bitgens = _hammer(work, 4)
        assert len({id(b) for b in bitgens}) == 4  # never shared across threads


class TestScratchLRU:
    @pytest.fixture(autouse=True)
    def fresh_pool(self):
        old = getattr(_scratch_local, "pool", None)
        _scratch_local.pool = {}
        yield
        if old is not None:
            _scratch_local.pool = old

    def test_hit_returns_same_buffer(self):
        a = kernels.scratch((3, 4), np.float32)
        assert kernels.scratch((3, 4), np.float32) is a
        assert kernels.scratch((3, 4), np.float32, slot=1) is not a

    @staticmethod
    def _key(shape, dtype, slot=0):
        return (shape, np.dtype(dtype).str, slot)

    def test_overflow_evicts_only_the_oldest(self):
        bufs = [
            kernels.scratch((i + 1,), np.float64)
            for i in range(_MAX_SCRATCH_ENTRIES)
        ]
        kernels.scratch((0,), np.int8)  # one past the bound
        # Inspect the pool directly — probing via scratch() would be a
        # miss and evict further entries itself.
        pool = _scratch_local.pool
        assert len(pool) == _MAX_SCRATCH_ENTRIES
        # Only the oldest was dropped; every other entry survived.
        assert self._key((1,), np.float64) not in pool
        for i in range(1, _MAX_SCRATCH_ENTRIES):
            assert pool[self._key((i + 1,), np.float64)] is bufs[i]

    def test_hit_touches_entry_to_the_back(self):
        bufs = [
            kernels.scratch((i + 1,), np.float64)
            for i in range(_MAX_SCRATCH_ENTRIES)
        ]
        # Touch the oldest; the *second*-oldest becomes the victim.
        assert kernels.scratch((1,), np.float64) is bufs[0]
        kernels.scratch((0,), np.int8)
        pool = _scratch_local.pool
        assert pool[self._key((1,), np.float64)] is bufs[0]
        assert self._key((2,), np.float64) not in pool
