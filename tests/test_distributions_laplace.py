"""Unit tests for the (two-sided) Laplace distribution."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.laplace import LaplaceDistribution, sample_laplace


class TestValidation:
    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            LaplaceDistribution(scale=0.0)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            LaplaceDistribution(scale=-1.0)

    def test_ppf_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LaplaceDistribution(scale=1.0).ppf(1.5)


class TestDensity:
    def test_pdf_peak_at_location(self):
        dist = LaplaceDistribution(scale=2.0, loc=3.0)
        assert dist.pdf(3.0) == pytest.approx(1.0 / 4.0)

    def test_pdf_symmetric(self):
        dist = LaplaceDistribution(scale=1.5)
        assert dist.pdf(2.0) == pytest.approx(dist.pdf(-2.0))

    def test_pdf_integrates_to_one(self):
        dist = LaplaceDistribution(scale=0.7)
        grid = np.linspace(-30, 30, 200_001)
        integral = np.trapezoid(dist.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_log_pdf_consistent_with_pdf(self):
        dist = LaplaceDistribution(scale=0.5, loc=-1.0)
        xs = np.array([-3.0, -1.0, 0.0, 2.0])
        assert np.allclose(dist.log_pdf(xs), np.log(dist.pdf(xs)))

    def test_privacy_ratio_bound(self):
        """Densities at points 1 apart differ by at most e^(1/scale)."""
        scale = 2.0
        dist = LaplaceDistribution(scale=scale)
        for x in np.linspace(-5, 5, 101):
            ratio = dist.pdf(x) / dist.pdf(x + 1.0)
            assert ratio <= math.exp(1.0 / scale) * (1 + 1e-12)


class TestCdfPpf:
    def test_cdf_at_location_is_half(self):
        assert LaplaceDistribution(scale=3.0, loc=1.0).cdf(1.0) == pytest.approx(0.5)

    def test_cdf_monotone(self):
        dist = LaplaceDistribution(scale=1.0)
        grid = np.linspace(-10, 10, 101)
        values = dist.cdf(grid)
        assert np.all(np.diff(values) >= 0)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50)
    def test_ppf_inverts_cdf(self, q):
        dist = LaplaceDistribution(scale=1.7, loc=0.3)
        assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)


class TestMoments:
    def test_variance_formula(self):
        assert LaplaceDistribution(scale=3.0).variance == pytest.approx(18.0)

    def test_expected_abs_equals_scale(self):
        assert LaplaceDistribution(scale=2.5).expected_abs == pytest.approx(2.5)

    def test_sample_moments(self, rng):
        dist = LaplaceDistribution(scale=2.0)
        samples = dist.sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        assert np.var(samples) == pytest.approx(8.0, rel=0.05)
        assert np.mean(np.abs(samples)) == pytest.approx(2.0, rel=0.03)


class TestSampling:
    def test_scalar_sample(self, rng):
        value = LaplaceDistribution(scale=1.0).sample(rng)
        assert isinstance(value, float)

    def test_shaped_sample(self, rng):
        out = LaplaceDistribution(scale=1.0).sample(rng, size=(3, 4))
        assert out.shape == (3, 4)

    def test_helper_matches_distribution(self, rng):
        out = sample_laplace(rng, 0.5, size=10)
        assert out.shape == (10,)

    def test_deterministic_given_seed(self):
        a = sample_laplace(np.random.default_rng(7), 1.0, size=5)
        b = sample_laplace(np.random.default_rng(7), 1.0, size=5)
        assert np.array_equal(a, b)


class TestScalarReturnNormalization:
    """Regression: 0-d arrays and numpy scalars return Python floats."""

    @pytest.mark.parametrize(
        "value",
        [0.5, np.float64(0.5), np.array(0.5)],
        ids=["python-float", "np-float64", "zero-d-array"],
    )
    def test_scalar_like_inputs_return_floats(self, value):
        dist = LaplaceDistribution(scale=2.0)
        for method in (dist.pdf, dist.log_pdf, dist.cdf, dist.ppf):
            assert type(method(value)) is float, method.__name__

    def test_array_inputs_stay_arrays(self):
        dist = LaplaceDistribution(scale=2.0)
        for method in (dist.pdf, dist.log_pdf, dist.cdf, dist.ppf):
            out = method(np.array([0.5]))
            assert isinstance(out, np.ndarray) and out.shape == (1,)

    def test_mechanism_release_scalar_normalization(self):
        from repro.mechanisms.laplace import LaplaceMechanism

        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        for value in (3.0, np.float64(3.0), np.array(3.0)):
            out = mech.release(value, np.random.default_rng(0))
            assert type(out) is float
        out = mech.release(np.array([3.0, 4.0]), np.random.default_rng(0))
        assert isinstance(out, np.ndarray)
