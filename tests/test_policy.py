"""Tests for policy functions and the relaxation algebra (Defs 3.1, 3.5, 3.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    SENSITIVE,
    NON_SENSITIVE,
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    LambdaPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
    is_relaxation_of,
    minimum_relaxation,
    strictest_combination,
    validate_non_trivial,
)


class TestBasicPolicies:
    def test_attribute_policy_minors(self, minor_policy, mixed_records):
        assert minor_policy(mixed_records[0]) == SENSITIVE  # age 15
        assert minor_policy(mixed_records[3]) == NON_SENSITIVE  # age 25

    def test_opt_in_policy(self, opt_in_policy, mixed_records):
        assert opt_in_policy(mixed_records[0]) == SENSITIVE  # opted out
        assert opt_in_policy(mixed_records[1]) == NON_SENSITIVE

    def test_lambda_policy_predicate_convention(self):
        policy = LambdaPolicy(lambda r: r < 0, name="negatives")
        assert policy(-1) == SENSITIVE
        assert policy(1) == NON_SENSITIVE

    def test_sensitive_value_policy(self):
        policy = SensitiveValuePolicy("location", {"lounge", "restroom"})
        assert policy({"location": "lounge"}) == SENSITIVE
        assert policy({"location": "office"}) == NON_SENSITIVE

    def test_all_sensitive(self):
        policy = AllSensitivePolicy()
        assert policy("anything") == SENSITIVE

    def test_all_non_sensitive(self):
        assert AllNonSensitivePolicy()(42) == NON_SENSITIVE

    def test_is_sensitive_helpers(self, parity_policy):
        assert parity_policy.is_sensitive(3)
        assert parity_policy.is_non_sensitive(2)


class TestPartitioning:
    def test_partition_splits(self, minor_policy, mixed_records):
        sensitive, non_sensitive = minor_policy.partition(mixed_records)
        assert len(sensitive) == 3
        assert len(non_sensitive) == 3
        assert all(r["age"] <= 17 for r in sensitive)

    def test_subsets_consistent_with_partition(self, minor_policy, mixed_records):
        sens = minor_policy.sensitive_subset(mixed_records)
        non = minor_policy.non_sensitive_subset(mixed_records)
        assert len(sens) + len(non) == len(mixed_records)

    def test_sensitive_fraction(self, parity_policy):
        assert parity_policy.sensitive_fraction([1, 2, 3, 4]) == pytest.approx(0.5)

    def test_sensitive_fraction_empty_raises(self, parity_policy):
        with pytest.raises(ValueError):
            parity_policy.sensitive_fraction([])


class TestRelaxationOrder:
    def test_every_policy_relaxes_all_sensitive(self, parity_policy, small_universe):
        assert is_relaxation_of(parity_policy, AllSensitivePolicy(), small_universe)

    def test_all_non_sensitive_relaxes_everything(self, parity_policy, small_universe):
        assert is_relaxation_of(
            AllNonSensitivePolicy(), parity_policy, small_universe
        )

    def test_not_a_relaxation(self, small_universe):
        odd = LambdaPolicy(lambda r: r % 2 == 1)
        even = LambdaPolicy(lambda r: r % 2 == 0)
        assert not is_relaxation_of(odd, even, small_universe)
        assert not is_relaxation_of(even, odd, small_universe)

    def test_reflexive(self, parity_policy, small_universe):
        assert is_relaxation_of(parity_policy, parity_policy, small_universe)


class TestMinimumRelaxation:
    def test_sensitive_only_when_all_sensitive(self, small_universe):
        odd = LambdaPolicy(lambda r: r % 2 == 1)
        big = LambdaPolicy(lambda r: r >= 2)
        pmr = minimum_relaxation(odd, big)
        # 3 is odd AND >= 2: sensitive under both, hence under P_mr.
        assert pmr(3) == SENSITIVE
        # 1 is odd but < 2: non-sensitive under P_mr.
        assert pmr(1) == NON_SENSITIVE
        assert pmr(0) == NON_SENSITIVE

    def test_is_relaxation_of_each_input(self, small_universe):
        odd = LambdaPolicy(lambda r: r % 2 == 1)
        big = LambdaPolicy(lambda r: r >= 2)
        pmr = minimum_relaxation(odd, big)
        assert is_relaxation_of(pmr, odd, small_universe)
        assert is_relaxation_of(pmr, big, small_universe)

    def test_single_policy_passthrough(self, parity_policy):
        assert minimum_relaxation(parity_policy) is parity_policy

    def test_idempotent(self, parity_policy, small_universe):
        pmr = minimum_relaxation(parity_policy, parity_policy)
        for r in small_universe:
            assert pmr(r) == parity_policy(r)

    def test_empty_raises(self):
        from repro.core.policy import MinimumRelaxationPolicy

        with pytest.raises(ValueError):
            MinimumRelaxationPolicy([])


class TestStrictestCombination:
    def test_sensitive_when_any_sensitive(self, small_universe):
        odd = LambdaPolicy(lambda r: r % 2 == 1)
        big = LambdaPolicy(lambda r: r >= 2)
        strict = strictest_combination(odd, big)
        assert strict(1) == SENSITIVE
        assert strict(2) == SENSITIVE
        assert strict(0) == NON_SENSITIVE

    def test_inputs_relax_the_combination(self, small_universe):
        odd = LambdaPolicy(lambda r: r % 2 == 1)
        big = LambdaPolicy(lambda r: r >= 2)
        strict = strictest_combination(odd, big)
        assert is_relaxation_of(odd, strict, small_universe)
        assert is_relaxation_of(big, strict, small_universe)


class TestNonTrivialValidation:
    def test_all_sensitive_rejected(self, mixed_records):
        with pytest.raises(ValueError, match="every record sensitive"):
            validate_non_trivial(AllSensitivePolicy(), mixed_records)

    def test_all_non_sensitive_rejected(self, mixed_records):
        with pytest.raises(ValueError, match="non-sensitive"):
            validate_non_trivial(AllNonSensitivePolicy(), mixed_records)

    def test_mixed_accepted(self, minor_policy, mixed_records):
        validate_non_trivial(minor_policy, mixed_records)


@st.composite
def random_policy(draw):
    """A policy as a random subset of a small integer universe."""
    sensitive_set = draw(st.frozensets(st.integers(0, 7), max_size=8))
    return LambdaPolicy(lambda r, s=sensitive_set: r in s)


class TestRelaxationProperties:
    universe = tuple(range(8))

    @given(random_policy(), random_policy())
    @settings(max_examples=60)
    def test_minimum_relaxation_is_least_upper_bound(self, p1, p2):
        pmr = minimum_relaxation(p1, p2)
        assert is_relaxation_of(pmr, p1, self.universe)
        assert is_relaxation_of(pmr, p2, self.universe)
        # Strictness: P_mr is sensitive exactly where both are.
        for r in self.universe:
            assert pmr(r) == max(p1(r), p2(r))

    @given(random_policy(), random_policy(), random_policy())
    @settings(max_examples=40)
    def test_minimum_relaxation_associative(self, p1, p2, p3):
        left = minimum_relaxation(minimum_relaxation(p1, p2), p3)
        right = minimum_relaxation(p1, minimum_relaxation(p2, p3))
        for r in self.universe:
            assert left(r) == right(r)

    @given(random_policy(), random_policy())
    @settings(max_examples=40)
    def test_order_antisymmetry_on_extension(self, p1, p2):
        both = is_relaxation_of(p1, p2, self.universe) and is_relaxation_of(
            p2, p1, self.universe
        )
        if both:
            for r in self.universe:
                assert p1(r) == p2(r)
