"""Unit tests for the one-sided Laplace distribution (Definition 5.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.laplace import LaplaceDistribution
from repro.distributions.one_sided_laplace import (
    OneSidedLaplace,
    sample_one_sided_laplace,
)


class TestValidation:
    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            OneSidedLaplace(scale=0.0)

    def test_ppf_rejects_zero(self):
        with pytest.raises(ValueError):
            OneSidedLaplace(scale=1.0).ppf(0.0)


class TestDensity:
    def test_no_mass_on_positive_reals(self):
        dist = OneSidedLaplace(scale=1.0)
        assert dist.pdf(0.5) == 0.0
        assert dist.pdf(100.0) == 0.0

    def test_density_formula_on_negatives(self):
        dist = OneSidedLaplace(scale=2.0)
        assert dist.pdf(-4.0) == pytest.approx(math.exp(-2.0) / 2.0)

    def test_pdf_integrates_to_one(self):
        dist = OneSidedLaplace(scale=0.8)
        grid = np.linspace(-40, 0, 400_001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-6)

    def test_log_pdf_neg_inf_on_positive(self):
        assert OneSidedLaplace(scale=1.0).log_pdf(1.0) == -math.inf

    def test_osdp_ratio_property(self):
        """Def 5.1 / Thm 5.2: shifting the location up by 1 multiplies the
        density by exactly e^(1/scale) wherever both are positive."""
        scale = 2.0
        dist = OneSidedLaplace(scale=scale)
        for y in np.linspace(-6.0, -0.5, 23):
            # density of y - x vs y - (x+1): ratio e^(1/scale)
            ratio = dist.pdf(y) / dist.pdf(y - 1.0)
            assert ratio == pytest.approx(math.exp(1.0 / scale))


class TestCdfPpfMoments:
    def test_cdf_at_zero_is_one(self):
        assert OneSidedLaplace(scale=3.0).cdf(0.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50)
    def test_ppf_inverts_cdf(self, q):
        dist = OneSidedLaplace(scale=0.9)
        assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_median_is_minus_scale_ln2(self):
        dist = OneSidedLaplace(scale=4.0)
        assert dist.median == pytest.approx(-4.0 * math.log(2.0))
        assert dist.cdf(dist.median) == pytest.approx(0.5)

    def test_mean_and_variance(self):
        dist = OneSidedLaplace(scale=2.5)
        assert dist.mean == pytest.approx(-2.5)
        assert dist.variance == pytest.approx(6.25)

    def test_variance_is_one_eighth_of_dp_histogram_noise(self):
        """Paper §5.1: OsdpLaplace noise has 1/8 the variance of the
        eps-DP histogram Laplace noise (sensitivity 2)."""
        epsilon = 0.7
        osdp = OneSidedLaplace(scale=1.0 / epsilon)
        dp = LaplaceDistribution(scale=2.0 / epsilon)
        assert osdp.variance == pytest.approx(dp.variance / 8.0)


class TestSampling:
    def test_samples_all_non_positive(self, rng):
        samples = OneSidedLaplace(scale=1.0).sample(rng, size=10_000)
        assert np.all(samples <= 0.0)

    def test_sample_moments(self, rng):
        samples = OneSidedLaplace(scale=3.0).sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(-3.0, rel=0.03)
        assert np.var(samples) == pytest.approx(9.0, rel=0.05)

    def test_helper_and_determinism(self):
        a = sample_one_sided_laplace(np.random.default_rng(3), 1.5, size=8)
        b = sample_one_sided_laplace(np.random.default_rng(3), 1.5, size=8)
        assert np.array_equal(a, b)
        assert np.all(a <= 0)


class TestScalarReturnNormalization:
    """Regression: scalar-like inputs must yield Python floats.

    ``np.isscalar`` misses 0-d arrays (and numpy scalar types on some
    numpy versions), which used to make ``pdf``/``log_pdf``/``cdf``/
    ``ppf`` return inconsistent types depending on how the scalar was
    spelled.
    """

    @pytest.mark.parametrize(
        "value",
        [-1.0, np.float64(-1.0), np.array(-1.0), np.int64(-1)],
        ids=["python-float", "np-float64", "zero-d-array", "np-int64"],
    )
    def test_scalar_like_inputs_return_floats(self, value):
        dist = OneSidedLaplace(scale=2.0)
        for method in (dist.pdf, dist.log_pdf, dist.cdf):
            out = method(value)
            assert type(out) is float, method.__name__

    @pytest.mark.parametrize(
        "q", [0.25, np.float64(0.25), np.array(0.25)],
        ids=["python-float", "np-float64", "zero-d-array"],
    )
    def test_ppf_scalar_like_inputs_return_floats(self, q):
        out = OneSidedLaplace(scale=2.0).ppf(q)
        assert type(out) is float

    def test_scalar_and_array_paths_agree(self):
        dist = OneSidedLaplace(scale=1.7)
        xs = np.array([-3.0, -0.5, 0.0, 1.2])
        for method in (dist.pdf, dist.log_pdf, dist.cdf):
            vector = method(xs)
            assert isinstance(vector, np.ndarray)
            for i, x in enumerate(xs):
                assert method(np.array(x)) == pytest.approx(
                    vector[i], nan_ok=True, abs=0.0
                ) or (np.isinf(vector[i]) and np.isinf(method(np.array(x))))

    def test_array_inputs_stay_arrays(self):
        dist = OneSidedLaplace(scale=1.0)
        for method in (dist.pdf, dist.log_pdf, dist.cdf):
            out = method(np.array([-1.0]))
            assert isinstance(out, np.ndarray) and out.shape == (1,)
