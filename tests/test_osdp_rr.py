"""Tests for OsdpRR (Algorithm 1) and its histogram estimator."""

import math

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import LambdaPolicy
from repro.mechanisms.osdp_rr import (
    OsdpRR,
    OsdpRRHistogram,
    release_probability,
)
from repro.queries.histogram import HistogramInput

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")


class TestReleaseProbability:
    def test_table_1_values(self):
        """Table 1: ~63% at eps=1, ~39% at eps=0.5, ~9.5% at eps=0.1."""
        assert release_probability(1.0) == pytest.approx(0.632, abs=0.001)
        assert release_probability(0.5) == pytest.approx(0.393, abs=0.001)
        assert release_probability(0.1) == pytest.approx(0.095, abs=0.001)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            release_probability(0.0)

    def test_monotone_in_epsilon(self):
        eps = np.linspace(0.01, 5, 40)
        probs = [release_probability(e) for e in eps]
        assert all(a < b for a, b in zip(probs, probs[1:]))


class TestOsdpRRSampling:
    def test_never_releases_sensitive(self, rng):
        mech = OsdpRR(ODD, epsilon=5.0)
        records = list(range(100))
        released = mech.sample(records, rng)
        assert all(r % 2 == 0 for r in released)

    def test_release_rate_matches_probability(self, rng):
        epsilon = 1.0
        mech = OsdpRR(ODD, epsilon)
        records = [2 * i for i in range(20_000)]  # all non-sensitive
        released = mech.sample(records, rng)
        rate = len(released) / len(records)
        assert rate == pytest.approx(release_probability(epsilon), abs=0.01)

    def test_sample_charges_accountant(self, rng):
        acct = PrivacyAccountant(total_epsilon=1.0)
        mech = OsdpRR(ODD, epsilon=0.5)
        mech.sample([1, 2, 3], rng, accountant=acct)
        assert acct.spent == pytest.approx(0.5)

    def test_guarantee(self):
        g = OsdpRR(ODD, 0.5).guarantee
        assert g.epsilon == 0.5
        assert g.policy is ODD

    def test_released_records_are_true_records(self, rng):
        """The sample contains actual input records — truthful release."""
        records = [{"age": 20 + i} for i in range(50)]
        policy = LambdaPolicy(lambda r: r["age"] < 30)
        mech = OsdpRR(policy, epsilon=3.0)
        for r in mech.sample(records, rng):
            assert r in records

    def test_output_distribution_sums_to_one(self):
        mech = OsdpRR(ODD, epsilon=1.0)
        dist = mech.output_distribution((0, 1, 2))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_output_distribution_empty_always_possible(self):
        mech = OsdpRR(ODD, epsilon=1.0)
        dist = mech.output_distribution((0, 2))
        assert dist[()] == pytest.approx((math.e ** -1.0) ** 2, rel=1e-9)


class TestOsdpRRHistogram:
    def test_binomial_thinning_of_x_ns(self, small_hist, rng):
        mech = OsdpRRHistogram(epsilon=50.0)
        out = mech.release(small_hist, rng)
        # At huge epsilon the sample is essentially x_ns itself.
        assert np.array_equal(out, small_hist.x_ns)

    def test_counts_bounded_by_x_ns(self, small_hist, rng):
        mech = OsdpRRHistogram(epsilon=1.0)
        for _ in range(10):
            out = mech.release(small_hist, rng)
            assert np.all(out <= small_hist.x_ns)
            assert np.all(out >= 0)

    def test_scaled_unbiased_for_x_ns(self, rng):
        x = np.full(64, 1000.0)
        hist = HistogramInput(x=x, x_ns=x.copy())
        mech = OsdpRRHistogram(epsilon=1.0, scaled=True)
        outs = np.stack([mech.release(hist, rng) for _ in range(200)])
        assert np.mean(outs) == pytest.approx(1000.0, rel=0.01)

    def test_ns_ratio_scaling(self, rng):
        x = np.full(32, 1000.0)
        x_ns = np.full(32, 500.0)
        hist = HistogramInput(x=x, x_ns=x_ns)
        mech = OsdpRRHistogram(epsilon=1.0, scaled=True, ns_ratio=0.5)
        outs = np.stack([mech.release(hist, rng) for _ in range(200)])
        # Unbiased for the full histogram after both corrections.
        assert np.mean(outs) == pytest.approx(1000.0, rel=0.02)

    def test_invalid_ns_ratio(self):
        with pytest.raises(ValueError):
            OsdpRRHistogram(epsilon=1.0, ns_ratio=1.5)

    def test_expected_l1_error_formula(self, small_hist):
        """Theorem 5.1 accounting: sensitive mass + e^-eps * ns mass."""
        epsilon = 1.0
        mech = OsdpRRHistogram(epsilon=epsilon)
        expected = mech.expected_l1_error(small_hist)
        sensitive_mass = float((small_hist.x - small_hist.x_ns).sum())
        ns_mass = float(small_hist.x_ns.sum())
        assert expected == pytest.approx(
            sensitive_mass + math.exp(-epsilon) * ns_mass
        )

    def test_measured_l1_close_to_expected(self, rng):
        x = np.full(128, 50.0)
        x_ns = np.full(128, 40.0)
        hist = HistogramInput(x=x, x_ns=x_ns)
        mech = OsdpRRHistogram(epsilon=1.0)
        errors = [
            np.abs(mech.release(hist, rng) - x).sum() for _ in range(100)
        ]
        assert np.mean(errors) == pytest.approx(
            mech.expected_l1_error(hist), rel=0.05
        )


class TestTheorem51Crossover:
    def test_crossover_condition(self):
        """n * eps > 2 d e^eps -> Laplace beats OsdpRR (equation 2)."""
        from repro.mechanisms.osdp_laplace import theorem_5_1_crossover

        # The paper's example: d = 10^4, eps = 0.1 -> threshold 2.2e5.
        assert theorem_5_1_crossover(3 * 10**5, 10**4, 0.1)
        assert not theorem_5_1_crossover(2 * 10**5, 10**4, 0.1)
