"""Fault lane for the durable cluster write path (PR 8 acceptance).

What this lane pins, with real processes and injected transport faults:

* Interleaved cluster writes and reads are **bit-identical** to a
  single server taking the same writes — the commit protocol never
  lets replicas of a range diverge observably.
* SIGKILL of a replica mid-write: the write is still acked, the victim
  is marked stale (excluded from reads), and after a restart **WAL
  replay plus resync** returns it to the exact acked state.
* A coordinator retrying ``commit_write`` after a truncated ack
  applies the write **exactly once** on every replica (idempotent
  replay, equal sequence numbers all round).
* ``repro.cli cluster`` drains its fleet on SIGTERM, leaves
  ``/dev/shm`` clean, and a relaunch over the same WAL directories
  serves every previously acked write.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from faults import (
    ChaosProxy,
    EndpointProcess,
    loopback_skip_reason,
    make_db,
    slice_db,
)
from repro.api import (
    ClusterBackend,
    ClusterEndpoint,
    ClusterWriteError,
    PartialClusterError,
    ReleaseRequest,
    RemoteBackend,
    RetryPolicy,
)
from repro.core.accountant import PrivacyAccountant
from repro.queries.histogram import IntegerBinning
from repro.service.rpc import RpcServer
from repro.service.server import ReleaseServer

pytestmark = pytest.mark.faults

_SKIP_REASON = loopback_skip_reason()
if _SKIP_REASON:
    pytestmark = [pytest.mark.faults, pytest.mark.skip(reason=_SKIP_REASON)]

N, SEED = 4000, 0
RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, jitter=0.0)
BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()


def _mirror() -> ReleaseServer:
    return ReleaseServer(
        make_db(N, SEED).shard(2), accountant=PrivacyAccountant(10.0)
    )


def _extra(lo: int, hi: int) -> list[dict]:
    return [
        {"age": int(v % 100), "opt_in": bool(v % 2)} for v in range(lo, hi)
    ]


def _request(n_bins: int = 10, seed: int = 9) -> ReleaseRequest:
    return ReleaseRequest(
        "osdp_laplace_l1",
        0.25,
        IntegerBinning("age", 0, 100, n_bins).to_spec(),
        {"kind": "opt_in", "attr": "opt_in"},
        n_trials=3,
        seed=seed,
    )


def _hist(backend_or_server) -> np.ndarray:
    return np.asarray(backend_or_server.true_histogram(BINNING_SPEC))


@pytest.fixture
def inproc_cluster():
    """Two shard ranges x two replicas on in-process RpcServers."""
    servers, endpoints = [], []
    for label, lo, hi in (("lo", 0, 2000), ("hi", 2000, 4000)):
        for replica in range(2):
            rpc = RpcServer(
                ReleaseServer(slice_db(N, SEED, lo, hi).shard(2))
            ).start()
            servers.append(rpc)
            endpoints.append(
                ClusterEndpoint(
                    *rpc.address,
                    shard_range=label,
                    name=f"{label}-r{replica}",
                )
            )
    try:
        yield endpoints, servers
    finally:
        for rpc in servers:
            rpc.close()


# ----------------------------------------------------------------------
# Writes against a healthy cluster
# ----------------------------------------------------------------------


class TestWriteSemantics:
    def test_interleaved_writes_reads_bit_identical(self, inproc_cluster):
        endpoints, _ = inproc_cluster
        mirror = _mirror()
        with ClusterBackend(
            endpoints, accountant=PrivacyAccountant(10.0), retry=RETRY
        ) as backend:
            backend.append_records(_extra(0, 40))
            mirror.append_records(_extra(0, 40))
            assert np.array_equal(_hist(backend), _hist(mirror))

            backend.expire_prefix(25)
            mirror.expire_prefix(25)
            assert np.array_equal(_hist(backend), _hist(mirror))

            backend.append_records(_extra(40, 55))
            mirror.append_records(_extra(40, 55))
            got = backend.handle(_request(20))
            want = mirror.handle(_request(20))
            assert np.array_equal(got.estimates, want.estimates)
            assert got.estimates.dtype == want.estimates.dtype

            stats = backend.cluster_stats()
            assert stats["writes"] == 3
            # Every write prepared and committed on both replicas.
            assert stats["write_prepares"] == 6
            assert stats["write_commits"] == 6
            assert backend.stale() == {}

    def test_expire_spans_ranges_head_first(self, inproc_cluster):
        endpoints, _ = inproc_cluster
        mirror = _mirror()
        with ClusterBackend(endpoints, retry=RETRY) as backend:
            backend.expire_prefix(2300)  # > the 2000 rows of range "lo"
            mirror.expire_prefix(2300)
            assert np.array_equal(_hist(backend), _hist(mirror))
            with pytest.raises(ValueError, match="cannot expire"):
                backend.expire_prefix(N)  # only 1700 rows remain

    def test_writes_replicate_to_every_replica(self, inproc_cluster):
        endpoints, servers = inproc_cluster
        with ClusterBackend(endpoints, retry=RETRY) as backend:
            backend.append_records(_extra(0, 10))
        # Both "hi" replicas hold the appended rows at the same seq.
        for rpc in servers[2:]:
            assert rpc.wal.last_seq == 1
            assert len(rpc.release_server.db) == 2010
        assert servers[2].wal.chain == servers[3].wal.chain


# ----------------------------------------------------------------------
# Replica death around the commit window
# ----------------------------------------------------------------------


class TestReplicaDeath:
    def test_dead_replica_marked_stale_write_still_acked(
        self, inproc_cluster
    ):
        endpoints, servers = inproc_cluster
        mirror = _mirror()
        with ClusterBackend(endpoints, retry=RETRY, timeout=5.0) as backend:
            servers[2].close()  # hi-r0 dies; hi-r1 carries the range
            backend.append_records(_extra(0, 10))
            mirror.append_records(_extra(0, 10))
            assert list(backend.stale()) == [endpoints[2].key]
            # Reads exclude the stale replica and stay identical.
            assert np.array_equal(_hist(backend), _hist(mirror))
            assert servers[3].wal.last_seq == 1

    def test_no_live_replica_is_an_unambiguous_write_error(
        self, inproc_cluster
    ):
        endpoints, servers = inproc_cluster
        with ClusterBackend(endpoints, retry=RETRY, timeout=5.0) as backend:
            servers[2].close()
            servers[3].close()
            with pytest.raises(ClusterWriteError) as excinfo:
                backend.append_records(_extra(0, 10))
            assert excinfo.value.shard_range == "hi"
            assert excinfo.value.ambiguous is False  # nothing was applied
            assert excinfo.value.write_id
            for rpc in servers[:2]:
                assert rpc.wal.last_seq == 0  # "lo" logged nothing
            # The "lo" range itself still serves replicated writes
            # (cluster-wide expire_prefix would have to count the dead
            # range first, so drive the range write directly).
            backend._replicated_write(
                "expire_prefix", {"n_records": 5}, "lo"
            )
            assert servers[0].wal.last_seq == 1
            assert servers[1].wal.last_seq == 1

    def test_sigkill_mid_append_recovers_via_wal_and_resync(self, tmp_path):
        """Acceptance (a): SIGKILL a replica between its prepare and
        its commit.  The write is acked via the surviving replica; the
        victim restarts on its old port, WAL replay restores what it
        had acked, resync ships the write it missed, and its state is
        bit-identical to its peer and to a single server."""
        procs = [
            EndpointProcess(
                N, SEED, 2000, 4000, wal_dir=str(tmp_path / f"r{i}")
            )
            for i in range(2)
        ]
        endpoints = [
            ClusterEndpoint(
                p.host, p.port, shard_range="hi", name=f"hi-r{i}"
            )
            for i, p in enumerate(procs)
        ]
        mirror = ReleaseServer(slice_db(N, SEED, 2000, 4000).shard(2))
        try:
            with ClusterBackend(
                endpoints, retry=RETRY, timeout=10.0
            ) as backend:
                # Write 1 lands everywhere (both WALs hold seq 1).
                backend.append_records(_extra(0, 10))
                mirror.append_records(_extra(0, 10))

                victim_key = endpoints[0].key
                original = backend._commit_with_retries

                def kill_then_commit(endpoint, write_id):
                    if endpoint.key == victim_key:
                        procs[0].kill()
                    return original(endpoint, write_id)

                backend._commit_with_retries = kill_then_commit
                # Write 2: the victim prepares, dies, misses the commit.
                backend.append_records(_extra(10, 20))
                mirror.append_records(_extra(10, 20))
                backend._commit_with_retries = original
                assert list(backend.stale()) == [victim_key]
                assert np.array_equal(_hist(backend), _hist(mirror))

                procs[0].restart()  # same port; WAL replays seq 1
                rejoined = backend.resync()
                assert rejoined == {victim_key: True}
                assert backend.stale() == {}
                stats = backend.cluster_stats()
                assert stats["stale_marks"] == 1
                assert stats["resyncs"] == 1

                # The recovered replica serves the full acked history.
                with RemoteBackend(
                    procs[0].host, procs[0].port, timeout=10.0
                ) as direct:
                    assert direct.wal_status()["last_seq"] == 2
                    assert np.array_equal(
                        np.asarray(direct.true_histogram(BINNING_SPEC)),
                        _hist(mirror),
                    )
                # ... and further writes replicate to it again.
                backend.append_records(_extra(20, 25))
                mirror.append_records(_extra(20, 25))
                assert np.array_equal(_hist(backend), _hist(mirror))
        finally:
            for proc in procs:
                proc.close()


# ----------------------------------------------------------------------
# Truncated commit acks: exactly-once across retries
# ----------------------------------------------------------------------


class TestCommitRetry:
    def test_truncated_commit_ack_applies_exactly_once(self):
        """Acceptance (b): the ambiguous write failure.  The commit
        reached the replica but its ack was cut mid-frame; the
        coordinator's retry (stable ``req_id``) replays the cached
        reply instead of re-running the op — every replica ends at the
        same sequence number with the write applied once."""
        direct = RpcServer(
            ReleaseServer(slice_db(N, SEED, 0, 2000).shard(2))
        ).start()
        behind_proxy = RpcServer(
            ReleaseServer(slice_db(N, SEED, 0, 2000).shard(2))
        ).start()
        mirror = ReleaseServer(slice_db(N, SEED, 0, 2000).shard(2))
        try:
            with ChaosProxy(*behind_proxy.address) as proxy:
                endpoints = [
                    ClusterEndpoint(
                        *direct.address, shard_range="lo", name="lo-r0"
                    ),
                    ClusterEndpoint(
                        proxy.host, proxy.port, shard_range="lo", name="lo-r1"
                    ),
                ]
                with ClusterBackend(
                    endpoints,
                    retry=RetryPolicy(
                        max_attempts=5, base_delay=0.02, jitter=0.0
                    ),
                    timeout=10.0,
                ) as backend:
                    proxied_key = endpoints[1].key
                    original = backend._commit_with_retries

                    def cut_the_ack(endpoint, write_id):
                        if endpoint.key == proxied_key:
                            # Forward 8 more reply bytes, then sever:
                            # the commit lands, its ack does not.
                            proxy.truncate_after(8, direction="s2c")
                        return original(endpoint, write_id)

                    backend._commit_with_retries = cut_the_ack
                    backend.append_records(_extra(0, 10))
                    mirror.append_records(_extra(0, 10))
                    backend._commit_with_retries = original

                    stats = backend.cluster_stats()
                    assert stats["failovers"] >= 1  # the retry happened
                    assert stats["write_commits"] == 2
                    assert backend.stale() == {}
                    assert np.array_equal(_hist(backend), _hist(mirror))
            # Applied exactly once on each replica, same seq on both.
            for rpc in (direct, behind_proxy):
                assert rpc.wal.last_seq == 1
                assert len(rpc.release_server.db) == 2010
            assert direct.wal.chain == behind_proxy.wal.chain
            assert behind_proxy.transport_stats["idempotent_replays"] >= 1
        finally:
            direct.close()
            behind_proxy.close()


# ----------------------------------------------------------------------
# The fleet launcher (full subprocess): SIGTERM drain + WAL restore
# ----------------------------------------------------------------------


def _live_shm_segments() -> set[str]:
    from repro.data.store import SEGMENT_PREFIX

    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


def _launch_fleet(topology_path: str, env: dict):
    """Start ``repro.cli cluster`` and parse endpoint addresses from
    its banner; returns ``(proc, {name: (host, port)})``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "cluster",
            "--topology", topology_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    addresses: dict[str, tuple[str, int]] = {}
    deadline = time.monotonic() + 120
    while True:
        assert time.monotonic() < deadline, "fleet never came up"
        line = proc.stdout.readline()
        assert line, "launcher exited before announcing the fleet"
        match = re.match(
            r"endpoint (\S+) serving \[\d+,\d+\) on ([\d.]+):(\d+)", line
        )
        if match:
            addresses[match.group(1)] = (
                match.group(2), int(match.group(3)),
            )
        if line.startswith("fleet up:"):
            return proc, addresses


def _stop_fleet(proc) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    return out


class TestClusterCli:
    def test_sigterm_drains_and_wal_restores_acked_writes(self, tmp_path):
        """Acceptance (c): the supervised fleet drains on SIGTERM and
        leaves ``/dev/shm`` clean; relaunching over the same WAL
        directories restores every acked write bit-identically."""
        records = 800
        topology = {
            "table": {
                "dataset": "synthetic", "records": records, "seed": 3,
                "shards": 2,
            },
            "ranges": [
                {
                    "name": "lo", "lo": 0, "hi": 400,
                    "replicas": [
                        {"port": 0, "wal_dir": str(tmp_path / "lo-r0")},
                        {"port": 0, "wal_dir": str(tmp_path / "lo-r1")},
                    ],
                },
                {
                    "name": "hi", "lo": 400, "hi": records,
                    "replicas": [
                        {"port": 0, "wal_dir": str(tmp_path / "hi-r0")},
                        {"port": 0, "wal_dir": str(tmp_path / "hi-r1")},
                    ],
                },
            ],
        }
        topology_path = str(tmp_path / "topology.json")
        with open(topology_path, "w") as handle:
            json.dump(topology, handle)
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        before = _live_shm_segments()

        def cluster(addresses) -> ClusterBackend:
            return ClusterBackend(
                [
                    ClusterEndpoint(
                        *addresses[name],
                        shard_range=rng,
                        name=name,
                    )
                    for rng in ("lo", "hi")
                    for name in (f"{rng}-r0", f"{rng}-r1")
                ],
                retry=RETRY,
                timeout=10.0,
            )

        # The launcher's synthetic table carries a "city" column too.
        new_rows = [
            {"age": int(v % 100), "city": "x", "opt_in": bool(v % 2)}
            for v in range(30)
        ]
        proc, addresses = _launch_fleet(topology_path, env)
        try:
            with cluster(addresses) as backend:
                backend.append_records(new_rows)
                backend.expire_prefix(10)
                acked = _hist(backend)
        finally:
            out = _stop_fleet(proc)
        assert proc.returncode == 0
        assert "draining fleet" in out
        assert "fleet shutdown complete" in out
        leaked = _live_shm_segments() - before
        assert not leaked, f"fleet drain leaked shm segments: {leaked}"

        # Relaunch over the same WAL directories: replay restores the
        # acked writes on every endpoint.
        proc2, addresses2 = _launch_fleet(topology_path, env)
        try:
            with cluster(addresses2) as backend:
                assert np.array_equal(_hist(backend), acked)
            with RemoteBackend(*addresses2["hi-r0"], timeout=10.0) as direct:
                assert direct.wal_status()["last_seq"] == 1  # the append
            with RemoteBackend(*addresses2["lo-r0"], timeout=10.0) as direct:
                assert direct.wal_status()["last_seq"] == 1  # the expiry
        finally:
            out2 = _stop_fleet(proc2)
        assert proc2.returncode == 0
