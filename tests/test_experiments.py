"""Tests for the per-figure experiment drivers (scaled-down configs)."""

import numpy as np
import pytest

from repro.data.tippers import TippersConfig
from repro.evaluation.experiments.fig1_classification import Fig1Config, run_fig1
from repro.evaluation.experiments.fig2_3_ngrams import (
    NGramConfig,
    run_ngram_experiment,
)
from repro.evaluation.experiments.fig4_5_tippers import (
    TippersHistogramConfig,
    build_histogram_input,
    run_tippers_histogram,
)
from repro.evaluation.experiments.fig6_10_dpbench import (
    DPBenchConfig,
    aggregate_regret,
    make_mechanism,
    overall_average_regret,
    per_input_regret,
    run_dpbench_sweep,
)
from repro.evaluation.experiments.table1 import (
    expected_release_percentages,
    monte_carlo_release_percentages,
)

TINY_TIPPERS = TippersConfig(n_users=120, n_days=25, seed=3)


class TestTable1:
    def test_analytic_values_match_paper(self):
        values = expected_release_percentages()
        assert values[1.0] == pytest.approx(63.2, abs=0.1)
        assert values[0.5] == pytest.approx(39.3, abs=0.1)
        assert values[0.1] == pytest.approx(9.5, abs=0.1)

    def test_monte_carlo_agrees_with_analytic(self):
        measured = monte_carlo_release_percentages(
            epsilons=(1.0, 0.1), n_records=5000, n_trials=3, seed=0
        )
        analytic = expected_release_percentages((1.0, 0.1))
        for eps in (1.0, 0.1):
            assert measured[eps] == pytest.approx(analytic[eps], abs=1.5)


class TestFig1:
    def test_structure_and_shape(self):
        config = Fig1Config(
            tippers=TINY_TIPPERS,
            policies=(99, 25),
            epsilons=(1.0,),
            cv_folds=3,
        )
        out = run_fig1(config)
        errors = out["errors"][1.0]
        assert set(errors) == {99, 25}
        for rho in (99, 25):
            assert set(errors[rho]) == {"all_ns", "osdp_rr", "objdp", "random"}
            for value in errors[rho].values():
                assert 0.0 <= value <= 1.0

    def test_osdp_rr_tracks_all_ns_at_eps_1(self):
        config = Fig1Config(
            tippers=TINY_TIPPERS, policies=(99,), epsilons=(1.0,), cv_folds=3
        )
        errors = run_fig1(config)["errors"][1.0][99]
        assert abs(errors["osdp_rr"] - errors["all_ns"]) < 0.1
        assert errors["random"] == pytest.approx(0.5, abs=0.1)


class TestFig23:
    def test_structure(self):
        config = NGramConfig(
            tippers=TINY_TIPPERS,
            n=4,
            policies=(99, 50),
            epsilons=(1.0,),
            truncation_sweep=(1, 2),
            n_trials=2,
        )
        out = run_ngram_experiment(config)
        assert set(out["mre"][1.0]) == {99, 50}
        assert out["lm_kstar"][1.0] in (1, 2)
        assert out["domain_size"] == 64.0**4

    def test_all_ns_below_osdp_rr(self):
        config = NGramConfig(
            tippers=TINY_TIPPERS, n=4, policies=(99,), epsilons=(1.0,),
            truncation_sweep=(1,), n_trials=2,
        )
        mre = run_ngram_experiment(config)["mre"][1.0][99]
        assert mre["all_ns"] <= mre["osdp_rr"]

    def test_lm_collapses_at_tiny_epsilon(self):
        config = NGramConfig(
            tippers=TINY_TIPPERS, n=4, policies=(99,), epsilons=(1.0, 0.01),
            truncation_sweep=(1,), n_trials=2,
        )
        out = run_ngram_experiment(config)["mre"]
        assert out[0.01][99]["lm_t1"] > 10 * out[1.0][99]["lm_t1"]
        assert out[0.01][99]["osdp_rr"] < out[0.01][99]["lm_t1"]


class TestFig45:
    def test_histogram_input_mask_structure(self):
        from repro.data.tippers import generate_tippers

        dataset = generate_tippers(TINY_TIPPERS)
        policy = dataset.policy_for_fraction(75)
        hist = build_histogram_input(dataset, policy)
        # Sensitive-AP bins carry no non-sensitive mass.
        assert np.all(hist.x_ns[hist.sensitive_bin_mask] == 0)
        assert hist.x.shape == (dataset.config.n_aps * 24,)

    def test_run_structure(self):
        config = TippersHistogramConfig(
            tippers=TINY_TIPPERS, policies=(99, 25), epsilons=(1.0,), n_trials=2
        )
        out = run_tippers_histogram(config)
        assert set(out["mre"][1.0]) == {99, 25}
        assert set(out["rel95"]) == {99, 25}
        for algos in out["mre"][1.0].values():
            assert set(algos) == {"osdp_laplace_l1", "dawaz", "dawa"}

    def test_osdp_wins_at_p99(self):
        config = TippersHistogramConfig(
            tippers=TINY_TIPPERS, policies=(99,), epsilons=(1.0,), n_trials=3
        )
        mre = run_tippers_histogram(config)["mre"][1.0][99]
        assert mre["osdp_laplace_l1"] < mre["dawa"]


class TestFig610:
    @pytest.fixture(scope="class")
    def records(self):
        config = DPBenchConfig(
            datasets=("adult", "patent"),
            ratios=(0.99, 0.25),
            policies=("close", "far"),
            epsilons=(1.0,),
            n_trials=2,
            seed=0,
        )
        return run_dpbench_sweep(config)

    def test_record_count(self, records):
        # 2 datasets x 2 ratios x 2 policies x 1 eps x 6 algorithms
        assert len(records) == 48

    def test_per_input_regret_minimum_one(self, records):
        regrets = per_input_regret(records)
        for algo_regrets in regrets.values():
            pool_values = [
                v for a, v in algo_regrets.items()
            ]
            assert min(pool_values) >= 1.0 - 1e-9

    def test_aggregate_by_rho(self, records):
        agg = aggregate_regret(records, group_by="rho", where={"policy": "close"})
        assert set(agg) == {0.99, 0.25}

    def test_osdp_wins_sparse_high_ratio_close(self, records):
        agg = aggregate_regret(
            records,
            group_by="dataset",
            where={"policy": "close", "rho": 0.99},
        )
        assert agg["adult"]["osdp_laplace_l1"] < agg["adult"]["dawa"]

    def test_overall_average(self, records):
        overall = overall_average_regret(records)
        assert set(overall) >= {"dawa", "dawaz", "laplace", "osdp_laplace_l1"}

    def test_unknown_group_by_rejected(self, records):
        with pytest.raises(ValueError):
            aggregate_regret(records, group_by="flavor")

    def test_suppress_factory(self):
        mech = make_mechanism("suppress100", epsilon=1.0)
        assert mech.tau == 100.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            make_mechanism("quantum", 1.0)
