"""Tests for the synthetic TIPPERS trace generator (§6.1.1 substrate)."""

import numpy as np
import pytest

from repro.data.tippers import (
    EVENING_SLOT,
    SLOTS_PER_DAY,
    SensitiveAPPolicy,
    TippersConfig,
    Trajectory,
    generate_tippers,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_tippers(TippersConfig(n_users=200, n_days=30, seed=42))


class TestTrajectory:
    def test_requires_slots(self):
        with pytest.raises(ValueError):
            Trajectory(user_id=0, day=0, slots=())

    def test_derived_properties(self):
        t = Trajectory(user_id=1, day=2, slots=((10, 5), (11, 5), (12, 7)))
        assert t.aps == (5, 5, 7)
        assert t.distinct_aps == frozenset({5, 7})
        assert t.duration_slots == 3
        assert t.start_slot == 10
        assert t.end_slot == 12

    def test_visits_any(self):
        t = Trajectory(user_id=1, day=0, slots=((0, 3),))
        assert t.visits_any({3, 9})
        assert not t.visits_any({9})

    def test_ngrams(self):
        t = Trajectory(user_id=0, day=0, slots=((0, 1), (1, 2), (2, 3), (3, 2)))
        assert t.ngrams(2) == [(1, 2), (2, 3), (3, 2)]
        assert t.ngrams(4) == [(1, 2, 3, 2)]

    def test_distinct_ngrams_order(self):
        t = Trajectory(
            user_id=0, day=0, slots=((0, 1), (1, 2), (2, 1), (3, 2), (4, 1))
        )
        grams = t.distinct_ngrams(2)
        assert grams[0] == (1, 2)
        assert len(grams) == len(set(grams))


class TestConfigValidation:
    def test_role_counts_must_sum(self):
        with pytest.raises(ValueError):
            TippersConfig(n_aps=64, n_common_aps=10, n_office_aps=10,
                          n_meeting_aps=10, n_rare_aps=10)

    def test_resident_fraction_bounds(self):
        with pytest.raises(ValueError):
            TippersConfig(resident_fraction=0.0)


class TestGeneration:
    def test_deterministic(self):
        a = generate_tippers(TippersConfig(n_users=50, n_days=10, seed=1))
        b = generate_tippers(TippersConfig(n_users=50, n_days=10, seed=1))
        assert len(a) == len(b)
        assert a.trajectories[0].slots == b.trajectories[0].slots

    def test_slots_contiguous_and_in_range(self, dataset):
        for t in dataset.trajectories[:200]:
            slots = [s for s, _ in t.slots]
            assert slots == list(range(slots[0], slots[0] + len(slots)))
            assert 0 <= slots[0] and slots[-1] < SLOTS_PER_DAY

    def test_aps_in_range(self, dataset):
        n_aps = dataset.config.n_aps
        for t in dataset.trajectories[:200]:
            assert all(0 <= ap < n_aps for ap in t.aps)

    def test_residents_stay_longer_on_average(self, dataset):
        resident_durations, visitor_durations = [], []
        for t in dataset.trajectories:
            if t.user_id in dataset.resident_user_ids:
                resident_durations.append(t.duration_slots)
            else:
                visitor_durations.append(t.duration_slots)
        assert np.mean(resident_durations) > 2 * np.mean(visitor_durations)

    def test_heuristic_labels_correlate_with_ground_truth(self, dataset):
        labels = dataset.heuristic_resident_labels()
        truth = dataset.resident_user_ids
        hits = sum(1 for u, is_res in labels.items() if is_res == (u in truth))
        assert hits / len(labels) > 0.9

    def test_some_late_workers_exist(self, dataset):
        late = [t for t in dataset.trajectories if t.end_slot >= EVENING_SLOT]
        assert late


class TestPolicies:
    def test_policy_for_fraction_hits_target(self, dataset):
        for rho in (99, 75, 50, 25):
            policy = dataset.policy_for_fraction(rho)
            achieved = 1.0 - policy.sensitive_fraction(dataset.trajectories)
            assert achieved == pytest.approx(rho / 100.0, abs=0.08)

    def test_policy_fraction_bounds(self, dataset):
        with pytest.raises(ValueError):
            dataset.policy_for_fraction(0.0)
        with pytest.raises(ValueError):
            dataset.policy_for_fraction(100.0)

    def test_sensitive_ap_policy_semantics(self):
        policy = SensitiveAPPolicy({3})
        hit = Trajectory(user_id=0, day=0, slots=((0, 1), (1, 3)))
        miss = Trajectory(user_id=0, day=0, slots=((0, 1), (1, 2)))
        assert policy.is_sensitive(hit)
        assert policy.is_non_sensitive(miss)

    def test_stricter_policies_nest(self, dataset):
        """Lower rho -> superset of sensitive APs (greedy prefix)."""
        p75 = dataset.policy_for_fraction(75)
        p25 = dataset.policy_for_fraction(25)
        assert p75.sensitive_aps <= p25.sensitive_aps


class TestHistograms:
    def test_two_d_histogram_shape(self, dataset):
        hist = dataset.two_d_histogram()
        assert hist.shape == (dataset.config.n_aps, 24)
        assert hist.sum() > 0

    def test_presence_events_unique_and_consistent(self, dataset):
        events = dataset.presence_events()
        assert len(events) == len(set(events))
        n_aps = dataset.config.n_aps
        for user, day, ap, hour in events[:500]:
            assert 0 <= ap < n_aps
            assert 0 <= hour < 24

    def test_ap_coverage_totals(self, dataset):
        coverage = dataset.ap_coverage()
        assert set(coverage) == set(range(dataset.config.n_aps))
        total = sum(coverage.values())
        assert total >= len(dataset)  # every trajectory hits >= 1 AP
