"""Tests for the Database abstraction."""

import numpy as np
import pytest

from repro.data.database import Database


class TestBasics:
    def test_len_and_iter(self, mixed_records):
        db = Database(mixed_records)
        assert len(db) == 6
        assert list(db) == mixed_records

    def test_indexing(self, mixed_records):
        db = Database(mixed_records)
        assert db[0] == mixed_records[0]

    def test_immutability_of_records_tuple(self, mixed_records):
        db = Database(mixed_records)
        assert isinstance(db.records, tuple)

    def test_filter(self, mixed_records):
        db = Database(mixed_records)
        adults = db.filter(lambda r: r["age"] >= 18)
        assert len(adults) == 3


class TestPolicyViews:
    def test_non_sensitive_view(self, minor_policy, mixed_records):
        db = Database(mixed_records)
        ns = db.non_sensitive(minor_policy)
        assert len(ns) == 3
        assert all(r["age"] >= 18 for r in ns)

    def test_sensitive_view(self, minor_policy, mixed_records):
        db = Database(mixed_records)
        sens = db.sensitive(minor_policy)
        assert len(sens) == 3

    def test_partition_sizes(self, minor_policy, mixed_records):
        db = Database(mixed_records)
        sens, ns = db.partition(minor_policy)
        assert len(sens) + len(ns) == len(db)


class TestHistogram:
    def test_counts(self):
        db = Database([{"v": 0}, {"v": 1}, {"v": 1}, {"v": 3}])
        hist = db.histogram(lambda r: r["v"], n_bins=4)
        assert np.array_equal(hist, [1, 2, 0, 1])

    def test_zero_bins_reported(self):
        db = Database([{"v": 0}])
        hist = db.histogram(lambda r: r["v"], n_bins=5)
        assert hist.sum() == 1
        assert len(hist) == 5

    def test_out_of_range_rejected(self):
        db = Database([{"v": 9}])
        with pytest.raises(ValueError):
            db.histogram(lambda r: r["v"], n_bins=4)

    def test_empty_database(self):
        hist = Database([]).histogram(lambda r: 0, n_bins=3)
        assert np.array_equal(hist, [0, 0, 0])
