"""Tests for DAWA stage 1: dyadic cost computation and partition DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms.dawa.partition import (
    DyadicCosts,
    dyadic_partition,
    interval_deviation_cost,
    noisy_dyadic_costs,
    optimal_dyadic_partition,
    validate_partition,
)


class TestDeviationCost:
    def test_constant_interval_costs_zero(self):
        assert interval_deviation_cost(np.full(8, 5.0)) == 0.0

    def test_single_bin_costs_zero(self):
        assert interval_deviation_cost(np.array([42.0])) == 0.0

    def test_known_value(self):
        # median of [0, 0, 10, 10] is 5 -> cost 20.
        assert interval_deviation_cost(np.array([0.0, 0.0, 10.0, 10.0])) == 20.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interval_deviation_cost(np.array([]))

    @given(
        st.lists(st.integers(0, 100), min_size=2, max_size=16),
        st.integers(0, 15),
    )
    @settings(max_examples=60)
    def test_lipschitz_in_each_coordinate(self, values, index):
        """|dev(x) - dev(x +/- e_i)| <= 1 — the sensitivity argument
        behind the stage-1 noise calibration."""
        x = np.array(values, dtype=float)
        index = index % len(x)
        bumped = x.copy()
        bumped[index] += 1.0
        assert abs(
            interval_deviation_cost(x) - interval_deviation_cost(bumped)
        ) <= 1.0 + 1e-9


class TestNoisyCosts:
    def test_level_zero_is_exact_zero(self, rng):
        costs = noisy_dyadic_costs(np.arange(8.0), 1.0, rng)
        assert np.all(costs.levels[0] == 0.0)

    def test_costs_clipped_non_negative(self, rng):
        costs = noisy_dyadic_costs(np.zeros(64), 0.01, rng)
        for level in costs.levels:
            assert np.all(level >= 0.0)

    def test_level_shapes(self, rng):
        costs = noisy_dyadic_costs(np.zeros(16), 1.0, rng)
        assert [len(level) for level in costs.levels] == [16, 8, 4, 2, 1]

    def test_pads_to_power_of_two(self, rng):
        costs = noisy_dyadic_costs(np.zeros(12), 1.0, rng)
        assert costs.n == 16

    def test_epsilon_validation(self, rng):
        with pytest.raises(ValueError):
            noisy_dyadic_costs(np.zeros(8), 0.0, rng)


class TestPartitionDP:
    def _exact_costs(self, x: np.ndarray) -> DyadicCosts:
        """Noise-free costs for deterministic DP testing."""
        n = len(x)
        levels = [np.zeros(n)]
        width = 2
        while width <= n:
            rows = x.reshape(-1, width)
            med = np.median(rows, axis=1, keepdims=True)
            levels.append(np.abs(rows - med).sum(axis=1))
            width *= 2
        return DyadicCosts(levels=tuple(levels))

    def test_uniform_data_merges_to_one_bucket(self):
        x = np.full(16, 9.0)
        buckets = optimal_dyadic_partition(self._exact_costs(x), bucket_penalty=1.0)
        assert buckets == [(0, 16)]

    def test_spiky_data_splits(self):
        x = np.zeros(16)
        x[3] = 1000.0
        x[11] = 800.0
        buckets = optimal_dyadic_partition(self._exact_costs(x), bucket_penalty=1.0)
        assert len(buckets) > 2

    def test_zero_penalty_splits_everything(self):
        x = np.arange(16.0)
        buckets = optimal_dyadic_partition(self._exact_costs(x), bucket_penalty=0.0)
        assert buckets == [(i, i + 1) for i in range(16)]

    def test_huge_penalty_merges_everything(self):
        x = np.arange(16.0)
        buckets = optimal_dyadic_partition(
            self._exact_costs(x), bucket_penalty=10_000.0
        )
        assert buckets == [(0, 16)]

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            optimal_dyadic_partition(self._exact_costs(np.zeros(4)), -1.0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25)
    def test_partition_always_tiles_domain(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 100))
        x = rng.poisson(4.0, size=n).astype(float)
        buckets = dyadic_partition(x, epsilon1=0.5, rng=rng, bucket_penalty=2.0)
        validate_partition(buckets, n)


class TestValidatePartition:
    def test_accepts_exact_tiling(self):
        validate_partition([(0, 3), (3, 8)], 8)

    def test_rejects_gap(self):
        with pytest.raises(ValueError):
            validate_partition([(0, 3), (4, 8)], 8)

    def test_rejects_short_coverage(self):
        with pytest.raises(ValueError):
            validate_partition([(0, 3)], 8)

    def test_rejects_empty_bucket(self):
        with pytest.raises(ValueError):
            validate_partition([(0, 0), (0, 8)], 8)
