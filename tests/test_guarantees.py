"""Tests for guarantee objects and conversion lemmas (Lemmas 3.1/3.2 etc.)."""

import pytest

from repro.core.guarantees import (
    DPGuarantee,
    EOSDPGuarantee,
    OSDPGuarantee,
    PDPGuarantee,
    dp_to_osdp,
    eosdp_to_osdp,
    osdp_all_sensitive_to_dp,
    parallel_composition,
    relax_guarantee,
    sequential_composition,
)
from repro.core.policy import AllSensitivePolicy, LambdaPolicy

ODD = LambdaPolicy(lambda r: r % 2 == 1, name="odd")
BIG = LambdaPolicy(lambda r: r >= 2, name="big")


class TestValidation:
    def test_dp_guarantee_positive_epsilon(self):
        with pytest.raises(ValueError):
            DPGuarantee(epsilon=0.0)

    def test_osdp_guarantee_positive_epsilon(self):
        with pytest.raises(ValueError):
            OSDPGuarantee(policy=ODD, epsilon=-1.0)

    def test_str_forms(self):
        assert str(DPGuarantee(1.0)) == "1.0-DP"
        assert "OSDP" in str(OSDPGuarantee(policy=ODD, epsilon=0.5))
        assert "eOSDP" in str(EOSDPGuarantee(policy=ODD, epsilon=0.5))


class TestLemmas:
    def test_lemma_3_1_dp_implies_osdp(self):
        osdp = dp_to_osdp(DPGuarantee(epsilon=0.7), ODD)
        assert osdp.epsilon == 0.7
        assert osdp.policy is ODD

    def test_lemma_3_2_pall_osdp_implies_dp(self):
        guarantee = OSDPGuarantee(policy=AllSensitivePolicy(), epsilon=0.9)
        assert osdp_all_sensitive_to_dp(guarantee).epsilon == 0.9

    def test_lemma_3_2_rejects_other_policies(self):
        with pytest.raises(ValueError):
            osdp_all_sensitive_to_dp(OSDPGuarantee(policy=ODD, epsilon=1.0))

    def test_theorem_3_2_relaxation_keeps_epsilon(self):
        relaxed = relax_guarantee(OSDPGuarantee(policy=ODD, epsilon=0.3), BIG)
        assert relaxed.epsilon == 0.3
        assert relaxed.policy is BIG

    def test_theorem_10_1_doubles_epsilon(self):
        osdp = eosdp_to_osdp(EOSDPGuarantee(policy=ODD, epsilon=0.4))
        assert osdp.epsilon == pytest.approx(0.8)


class TestSequentialComposition:
    def test_epsilons_add(self):
        composed = sequential_composition(
            [
                OSDPGuarantee(policy=ODD, epsilon=0.3),
                OSDPGuarantee(policy=ODD, epsilon=0.5),
            ]
        )
        assert composed.epsilon == pytest.approx(0.8)

    def test_policy_is_minimum_relaxation(self):
        composed = sequential_composition(
            [
                OSDPGuarantee(policy=ODD, epsilon=0.1),
                OSDPGuarantee(policy=BIG, epsilon=0.1),
            ]
        )
        # Sensitive only where both sensitive: 3 is odd and >= 2.
        assert composed.policy(3) == 0
        assert composed.policy(1) == 1
        assert composed.policy(2) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sequential_composition([])


class TestParallelComposition:
    def test_max_epsilon(self):
        composed = parallel_composition(
            [
                EOSDPGuarantee(policy=ODD, epsilon=0.2),
                EOSDPGuarantee(policy=ODD, epsilon=0.7),
            ]
        )
        assert composed.epsilon == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel_composition([])


class TestPDP:
    def test_pdp_guarantee_holds_epsilon_function(self):
        guarantee = PDPGuarantee(
            epsilon_of=lambda r: float("inf") if r % 2 == 0 else 1.0,
            description="test-PDP",
        )
        assert guarantee.epsilon_of(2) == float("inf")
        assert guarantee.epsilon_of(1) == 1.0
        assert str(guarantee) == "test-PDP"
