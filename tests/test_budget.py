"""Crash-safe budget lane: the durable accountant ledger and quotas.

The privacy contract under test: **no acked charge is ever forgotten,
and no pair of analysts can jointly outspend the budget.**

* Every charge is journaled and fsync'd before ``charge`` returns; a
  reopened :class:`repro.service.budget.DurableAccountant` resumes with
  the exact spent total, per-analyst attribution, and composed
  guarantee.
* The journal's fail-safe direction is *inverted* from a data WAL: a
  torn tail is **counted** (salvaging its epsilon from the blob's raw
  leading float bytes; charging the whole remaining budget when even
  those are unreadable), then re-journaled cleanly so a second restart
  counts it exactly once.
* Per-analyst quotas are enforced atomically alongside the global
  budget — a multithreaded hammer of two analysts lands on *exact*
  charge counts, never one epsilon over either limit.
* Hypothesis drives the whole serializable policy algebra through
  entry -> journal frame -> recovery, pinning bit-identical
  ``cache_key`` and composed-guarantee epsilon.

SIGKILL-shaped coverage (real process death mid-release, coordinator
restarts) lives in ``tests/test_budget_faults.py``; the overload
admission gate's socket lane lives in ``tests/test_rpc_overload.py``.
"""

from __future__ import annotations

import os
import struct
import threading

import pytest
from hypothesis import given, settings

from repro.core.accountant import (
    AnalystQuotaExceededError,
    BudgetExceededError,
    LedgerEntry,
    PrivacyAccountant,
)
from repro.core.policy import (
    AllSensitivePolicy,
    LambdaPolicy,
    OptInPolicy,
)
from repro.core.policy_language import policy_to_spec
from repro.service.budget import (
    TORN_TAIL_LABEL,
    TORN_TAIL_UNREADABLE_LABEL,
    BudgetJournalError,
    ChargeJournal,
    DurableAccountant,
    entry_from_doc,
    entry_to_doc,
)
from test_spec_roundtrip import MAX_EXAMPLES, serializable_policies

_FRAME_HEADER = struct.Struct(">II")
_EPS = struct.Struct(">d")


def _log_path(directory) -> str:
    return os.path.join(str(directory), ChargeJournal.LOG_NAME)


def _append_torn_tail(directory, epsilon: float | None) -> None:
    """Simulate a crash mid-append: a frame whose CRC cannot hold.

    With ``epsilon`` the tail keeps its leading raw float bytes (the
    salvageable case); with None the tail is cut before them.
    """
    body = _EPS.pack(epsilon) if epsilon is not None else b"\x01\x02"
    with open(_log_path(directory), "ab") as handle:
        handle.write(_FRAME_HEADER.pack(4096, 0xBAD0BAD0) + body)


# ----------------------------------------------------------------------
# Journal round trip
# ----------------------------------------------------------------------


class TestDurableRoundTrip:
    def test_acked_charges_survive_reopen_exactly(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=10.0) as acct:
            acct.charge(OptInPolicy(), 0.5, label="first")
            acct.charge(AllSensitivePolicy(), 0.25, label="second",
                        analyst="alice")
            spent, guarantee = acct.spent, acct.composed_guarantee()
        with DurableAccountant(tmp_path, total_epsilon=10.0) as back:
            assert back.spent == spent == 0.75
            assert back.remaining == 9.25
            assert [e.label for e in back.ledger] == ["first", "second"]
            assert back.spent_by("alice") == 0.25
            recovered = back.composed_guarantee()
            assert recovered.epsilon == guarantee.epsilon
            assert (
                recovered.policy.cache_key() == guarantee.policy.cache_key()
            )

    def test_fresh_directory_recovers_empty(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=1.0) as acct:
            assert acct.recovery["replayed"] == 0
            assert acct.recovery["torn_bytes"] == 0
            assert acct.spent == 0

    def test_refusals_leave_no_journal_trace(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=1.0) as acct:
            acct.charge(OptInPolicy(), 0.75)
            with pytest.raises(BudgetExceededError):
                acct.charge(OptInPolicy(), 0.75)
        with DurableAccountant(tmp_path, total_epsilon=1.0) as back:
            assert back.spent == 0.75
            assert len(back.ledger) == 1

    def test_opaque_policy_recovers_as_conservative_placeholder(
        self, tmp_path
    ):
        opaque = LambdaPolicy(lambda r: True, name="handwritten")
        with DurableAccountant(tmp_path, total_epsilon=2.0) as acct:
            acct.charge(opaque, 1.0, label="opaque")
        with DurableAccountant(tmp_path, total_epsilon=2.0) as back:
            assert back.spent == 1.0  # the epsilon is what matters
            (entry,) = back.ledger
            # Claiming less relaxation than the original is sound.
            assert isinstance(entry.policy, AllSensitivePolicy)
            # The operator view still shows the original name.
            doc = back.journal._docs[0]
            assert doc["policy"] is None
            assert doc["policy_name"] == "handwritten"

    def test_recovered_overrun_refuses_further_charges(self, tmp_path):
        # History is history: a ledger can legitimately stand above a
        # (re-declared, smaller) total — then everything is refused.
        with DurableAccountant(tmp_path, total_epsilon=10.0) as acct:
            acct.charge(OptInPolicy(), 6.0)
        with DurableAccountant(tmp_path, total_epsilon=5.0) as back:
            assert back.spent == 6.0
            assert back.remaining == -1.0
            with pytest.raises(BudgetExceededError):
                back.charge(OptInPolicy(), 0.01)


# ----------------------------------------------------------------------
# Torn tails: the inverted fail-safe
# ----------------------------------------------------------------------


class TestTornTail:
    def test_readable_torn_tail_is_charged_not_dropped(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=10.0) as acct:
            acct.charge(OptInPolicy(), 1.0)
        _append_torn_tail(tmp_path, epsilon=2.5)
        with DurableAccountant(tmp_path, total_epsilon=10.0) as back:
            assert back.recovery["torn_epsilon"] == 2.5
            assert back.spent == 3.5
            labels = [e.label for e in back.ledger]
            assert TORN_TAIL_LABEL in labels

    def test_torn_charge_counted_exactly_once_across_restarts(
        self, tmp_path
    ):
        with DurableAccountant(tmp_path, total_epsilon=10.0) as acct:
            acct.charge(OptInPolicy(), 1.0)
        _append_torn_tail(tmp_path, epsilon=2.5)
        with DurableAccountant(tmp_path, total_epsilon=10.0) as first:
            assert first.spent == 3.5
        # The salvaged charge was re-journaled as a clean frame: the
        # second restart replays it as ordinary history, no double count.
        with DurableAccountant(tmp_path, total_epsilon=10.0) as second:
            assert second.spent == 3.5
            assert second.recovery["torn_bytes"] == 0

    def test_unreadable_torn_tail_charges_entire_remaining_budget(
        self, tmp_path
    ):
        with DurableAccountant(tmp_path, total_epsilon=5.0) as acct:
            acct.charge(OptInPolicy(), 1.0)
        _append_torn_tail(tmp_path, epsilon=None)
        with DurableAccountant(tmp_path, total_epsilon=5.0) as back:
            assert back.recovery["torn_epsilon"] is None
            assert back.spent == 5.0
            assert back.remaining == 0.0
            assert any(
                e.label == TORN_TAIL_UNREADABLE_LABEL for e in back.ledger
            )
            with pytest.raises(BudgetExceededError):
                back.charge(OptInPolicy(), 0.01)

    def test_nonfinite_salvaged_epsilon_is_distrusted(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=4.0) as acct:
            acct.charge(OptInPolicy(), 1.0)
        _append_torn_tail(tmp_path, epsilon=float("inf"))
        with DurableAccountant(tmp_path, total_epsilon=4.0) as back:
            # inf fails the finite-positive gate -> worst-case charge.
            assert back.recovery["torn_epsilon"] is None
            assert back.remaining == 0.0


# ----------------------------------------------------------------------
# Compaction and journal structure
# ----------------------------------------------------------------------


class TestCompaction:
    def test_snapshot_bounds_replay(self, tmp_path):
        with DurableAccountant(
            tmp_path, total_epsilon=100.0, snapshot_every=4
        ) as acct:
            for i in range(10):
                acct.charge(OptInPolicy(), 0.5, label=f"c{i}")
        with DurableAccountant(
            tmp_path, total_epsilon=100.0, snapshot_every=4
        ) as back:
            assert back.spent == 5.0
            assert len(back.ledger) == 10
            # 8 of the 10 charges live in the snapshot, not the log.
            assert back.recovery["snapshot_seq"] == 8
            assert back.recovery["replayed"] == 2

    def test_crash_between_snapshot_and_truncate_is_no_double_count(
        self, tmp_path
    ):
        with DurableAccountant(tmp_path, total_epsilon=50.0) as acct:
            for i in range(5):
                acct.charge(OptInPolicy(), 1.0, label=f"c{i}")
            pre_compact_log = open(_log_path(tmp_path), "rb").read()
            acct.journal.compact()
        # Simulate dying after the snapshot rename but before the log
        # truncation: the old entries are back in the log, all with
        # seq <= snapshot_seq.
        with open(_log_path(tmp_path), "wb") as handle:
            handle.write(pre_compact_log)
        with DurableAccountant(tmp_path, total_epsilon=50.0) as back:
            assert back.spent == 5.0
            assert len(back.ledger) == 5
            assert back.recovery["replayed"] == 0

    def test_sequence_gap_refuses_loudly(self, tmp_path):
        with DurableAccountant(tmp_path, total_epsilon=10.0) as acct:
            for i in range(3):
                acct.charge(OptInPolicy(), 1.0)
        # Surgically remove the middle frame: charges are now missing
        # and the spent total cannot be trusted.
        data = open(_log_path(tmp_path), "rb").read()
        frames, pos = [], 0
        while pos < len(data):
            length, _ = _FRAME_HEADER.unpack_from(data, pos)
            end = pos + _FRAME_HEADER.size + length
            frames.append(data[pos:end])
            pos = end
        assert len(frames) == 3
        with open(_log_path(tmp_path), "wb") as handle:
            handle.write(frames[0] + frames[2])
        with pytest.raises(BudgetJournalError, match="sequence"):
            DurableAccountant(tmp_path, total_epsilon=10.0)

    def test_corrupt_snapshot_refuses_loudly(self, tmp_path):
        with DurableAccountant(
            tmp_path, total_epsilon=10.0, snapshot_every=1
        ) as acct:
            acct.charge(OptInPolicy(), 1.0)
        snap = os.path.join(str(tmp_path), ChargeJournal.SNAPSHOT_NAME)
        data = bytearray(open(snap, "rb").read())
        data[-1] ^= 0xFF
        with open(snap, "wb") as handle:
            handle.write(data)
        # Serving with a reset ledger would be a privacy violation.
        with pytest.raises(BudgetJournalError, match="integrity"):
            DurableAccountant(tmp_path, total_epsilon=10.0)


# ----------------------------------------------------------------------
# Quotas: exact concurrent accounting
# ----------------------------------------------------------------------


class TestQuotas:
    def test_quota_enforced_atomically_with_global_budget(self, tmp_path):
        with DurableAccountant(
            tmp_path, total_epsilon=10.0, quotas={"alice": 1.0}
        ) as acct:
            alice = acct.for_analyst("alice")
            alice.charge(OptInPolicy(), 1.0)
            with pytest.raises(AnalystQuotaExceededError):
                alice.charge(OptInPolicy(), 0.5)
            # The global budget is untouched by the refusal and still
            # serves unquota'd analysts.
            acct.for_analyst("bob").charge(OptInPolicy(), 0.5)
            assert acct.spent == 1.5

    def test_quotas_survive_restart(self, tmp_path):
        with DurableAccountant(
            tmp_path, total_epsilon=10.0, quotas={"alice": 1.0}
        ) as acct:
            acct.for_analyst("alice").charge(OptInPolicy(), 0.75)
        with DurableAccountant(
            tmp_path, total_epsilon=10.0, quotas={"alice": 1.0}
        ) as back:
            assert back.spent_by("alice") == 0.75
            assert back.quota_remaining("alice") == 0.25
            with pytest.raises(AnalystQuotaExceededError):
                back.for_analyst("alice").charge(OptInPolicy(), 0.5)

    def test_two_analyst_hammer_exact_counts(self, tmp_path):
        """The acceptance hammer: concurrent analysts land on exact
        charge counts — alice's quota, bob's quota, and the global
        budget are all hit exactly, never jointly exceeded."""
        total, eps = 8.0, 0.25
        quotas = {"alice": 3.0, "bob": 4.0}
        acct = DurableAccountant(
            tmp_path, total_epsilon=total, quotas=quotas
        )
        outcomes = {"alice": 0, "bob": 0}
        lock = threading.Lock()

        def hammer(analyst: str) -> None:
            bound = acct.for_analyst(analyst)
            for _ in range(25):  # 25 * 0.25 > either quota
                try:
                    bound.charge(OptInPolicy(), eps)
                except BudgetExceededError:
                    continue
                with lock:
                    outcomes[analyst] += 1

        threads = [
            threading.Thread(target=hammer, args=(name,))
            for name in ("alice", "bob")
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exact arithmetic: 0.25 and the quotas are binary fractions.
        assert outcomes["alice"] * eps == acct.spent_by("alice")
        assert outcomes["bob"] * eps == acct.spent_by("bob")
        assert acct.spent_by("alice") == quotas["alice"]  # quota hit
        assert acct.spent_by("bob") == quotas["bob"]
        assert acct.spent == quotas["alice"] + quotas["bob"] <= total
        acct.close()
        # And the hammer's outcome is durable.
        with DurableAccountant(
            tmp_path, total_epsilon=total, quotas=quotas
        ) as back:
            assert back.spent == acct.spent
            assert back.spent_by("alice") == quotas["alice"]

    def test_analyst_remaining_is_min_of_quota_and_global(self):
        acct = PrivacyAccountant(total_epsilon=2.0, quotas={"alice": 5.0})
        alice = acct.for_analyst("alice")
        assert alice.remaining == 2.0  # global binds
        acct.charge(OptInPolicy(), 1.5, analyst="alice")
        assert alice.remaining == 0.5
        bob = acct.for_analyst("bob")
        assert bob.remaining == 0.5  # unquota'd: global remainder

    def test_view_carries_entries_and_quotas(self, tmp_path):
        with DurableAccountant(
            tmp_path, total_epsilon=4.0, quotas={"alice": 1.0}
        ) as acct:
            acct.for_analyst("alice").charge(
                OptInPolicy(), 0.5, label="histogram"
            )
            view = acct.view()
        assert view["total"] == 4.0
        assert view["spent"] == 0.5
        (entry,) = view["entries"]
        assert entry == {
            "label": "histogram",
            "epsilon": 0.5,
            "policy": OptInPolicy().name,
            "analyst": "alice",
        }
        assert view["quotas"]["alice"] == {
            "quota": 1.0,
            "spent": 0.5,
            "remaining": 0.5,
        }


# ----------------------------------------------------------------------
# Property: the whole policy algebra survives the journal
# ----------------------------------------------------------------------


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(policy=serializable_policies())
def test_entry_doc_round_trip_preserves_cache_key(policy):
    entry = LedgerEntry(
        policy=policy, epsilon=0.375, label="prop", analyst="alice"
    )
    rebuilt = entry_from_doc(entry_to_doc(7, entry))
    assert rebuilt.epsilon == entry.epsilon
    assert rebuilt.label == entry.label
    assert rebuilt.analyst == entry.analyst
    assert rebuilt.policy.cache_key() == policy.cache_key()
    assert policy_to_spec(rebuilt.policy) == policy_to_spec(policy)


@settings(max_examples=20, deadline=None)
@given(policy=serializable_policies())
def test_journal_recovery_rebuilds_identical_guarantee(policy):
    """Entry -> fsync'd frame -> recovery: the composed guarantee's
    epsilon and minimum-relaxation policy come back bit-identical."""
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        with DurableAccountant(directory, total_epsilon=100.0) as acct:
            acct.charge(policy, 0.125, label="a")
            acct.charge(OptInPolicy(), 0.25, label="b")
            original = acct.composed_guarantee()
        with DurableAccountant(directory, total_epsilon=100.0) as back:
            recovered = back.composed_guarantee()
            assert recovered.epsilon == original.epsilon
            assert (
                recovered.policy.cache_key() == original.policy.cache_key()
            )
