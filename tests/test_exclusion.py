"""Tests for the exclusion-attack framework (Definition 3.4, Thms 3.1/3.4)."""

import math

import pytest

from repro.core.exclusion import (
    ProductPrior,
    non_truman_mechanism,
    posterior_odds_ratio,
    reveal_non_sensitive_mechanism,
    worst_case_odds_inflation,
)
from repro.core.policy import LambdaPolicy
from repro.mechanisms.osdp_rr import OsdpRR

# The smoker's-lounge scenario: location "lounge" is sensitive.
LOUNGE_POLICY = LambdaPolicy(lambda r: r == "lounge", name="lounge-sensitive")
LOCATIONS = ("lounge", "office", "lobby")


class TestProductPrior:
    def test_uniform_prior(self):
        prior = ProductPrior.uniform(LOCATIONS, n_records=2)
        assert prior.n_records == 2
        assert prior.database_probability(("lounge", "office")) == pytest.approx(
            1.0 / 9.0
        )

    def test_invalid_marginal_rejected(self):
        with pytest.raises(ValueError):
            ProductPrior(marginals=({"a": 0.4},))

    def test_support_excludes_zero_mass(self):
        prior = ProductPrior(marginals=({"a": 1.0, "b": 0.0},))
        assert prior.support(0) == ["a"]

    def test_databases_enumeration(self):
        prior = ProductPrior.uniform(("x", "y"), n_records=2)
        assert len(list(prior.databases())) == 4


class TestExclusionAttackOnAccessControl:
    """The paper's motivating example: Truman/non-Truman leak Bob's location."""

    def test_truman_model_unbounded_inflation(self):
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        mech = reveal_non_sensitive_mechanism(LOUNGE_POLICY)
        result = worst_case_odds_inflation(mech, prior, LOUNGE_POLICY)
        assert not result.bounded
        assert result.witness_x == "lounge"

    def test_non_truman_model_unbounded_inflation(self):
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        mech = non_truman_mechanism(LOUNGE_POLICY)
        result = worst_case_odds_inflation(mech, prior, LOUNGE_POLICY)
        assert not result.bounded

    def test_rejection_output_identifies_bob(self):
        """Observing REJECT makes lounge certain vs office: infinite odds."""
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        mech = non_truman_mechanism(LOUNGE_POLICY)
        ratio = posterior_odds_ratio(
            mech, prior, "REJECT", target_index=0, x="lounge", y="office"
        )
        assert ratio == math.inf


class TestTheorem31OsdpIsFree:
    """OSDP mechanisms have inflation <= e^eps under product priors."""

    @pytest.mark.parametrize("epsilon", [0.2, 1.0, 2.0])
    def test_osdp_rr_bounded_by_exp_epsilon(self, epsilon):
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        mech = OsdpRR(LOUNGE_POLICY, epsilon)
        result = worst_case_odds_inflation(
            mech.output_distribution, prior, LOUNGE_POLICY
        )
        assert result.bounded
        assert result.max_inflation <= math.exp(epsilon) * (1 + 1e-9)

    def test_osdp_rr_bound_with_two_records(self):
        epsilon = 1.0
        prior = ProductPrior.uniform(LOCATIONS, n_records=2)
        mech = OsdpRR(LOUNGE_POLICY, epsilon)
        result = worst_case_odds_inflation(
            mech.output_distribution, prior, LOUNGE_POLICY, target_index=1
        )
        assert result.bounded
        assert result.phi <= epsilon + 1e-9

    def test_non_uniform_prior_still_bounded(self):
        epsilon = 0.7
        prior = ProductPrior(
            marginals=({"lounge": 0.1, "office": 0.5, "lobby": 0.4},)
        )
        mech = OsdpRR(LOUNGE_POLICY, epsilon)
        result = worst_case_odds_inflation(
            mech.output_distribution, prior, LOUNGE_POLICY
        )
        assert result.max_inflation <= math.exp(epsilon) * (1 + 1e-9)


class TestTheorem34Suppress:
    """Suppress(tau) achieves phi = tau only (here tau = inf shows the gap)."""

    def test_suppress_inf_is_reveal_all(self):
        from repro.mechanisms.suppress import Suppress

        suppress = Suppress(LOUNGE_POLICY, tau=None)
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        result = worst_case_odds_inflation(
            suppress.output_distribution, prior, LOUNGE_POLICY
        )
        assert not result.bounded
        assert suppress.exclusion_freedom_phi == math.inf

    def test_finite_tau_reports_phi_tau(self):
        from repro.mechanisms.suppress import Suppress

        suppress = Suppress(LOUNGE_POLICY, tau=100.0)
        assert suppress.exclusion_freedom_phi == 100.0


class TestPosteriorOddsRatio:
    def test_zero_prior_rejected(self):
        prior = ProductPrior(marginals=({"lounge": 1.0, "office": 0.0},))
        mech = reveal_non_sensitive_mechanism(LOUNGE_POLICY)
        with pytest.raises(ValueError):
            posterior_odds_ratio(
                mech, prior, (), target_index=0, x="lounge", y="office"
            )

    def test_impossible_output_returns_zero(self):
        prior = ProductPrior.uniform(LOCATIONS, n_records=1)
        mech = reveal_non_sensitive_mechanism(LOUNGE_POLICY)
        # Output ("office",) is impossible when the record is "lounge".
        ratio = posterior_odds_ratio(
            mech, prior, ("office",), target_index=0, x="lounge", y="office"
        )
        assert ratio == 0.0
