"""Tests for eOSDP parallel-composition releases."""

import numpy as np
import pytest

from repro.core.policy import LambdaPolicy
from repro.mechanisms.partitioned import PartitionedRelease

ODD = LambdaPolicy(lambda r: r["v"] % 2 == 1, name="odd")


def records_for(cells: dict[str, int]) -> list[dict]:
    out = []
    for cell, count in cells.items():
        for i in range(count):
            out.append({"cell": cell, "v": i})
    return out


class TestRelease:
    def test_cells_partition_records(self, rng):
        release = PartitionedRelease(
            ODD, cell_of=lambda r: r["cell"], default_epsilon=5.0
        )
        records = records_for({"a": 40, "b": 60})
        out = release.release(records, rng)
        assert set(out) == {"a", "b"}
        for cell, sample in out.items():
            assert all(r["cell"] == cell for r in sample)

    def test_sensitive_records_never_released(self, rng):
        release = PartitionedRelease(
            ODD, cell_of=lambda r: r["cell"], default_epsilon=10.0
        )
        out = release.release(records_for({"a": 50}), rng)
        assert all(r["v"] % 2 == 0 for r in out["a"])

    def test_per_cell_epsilon_controls_rates(self, rng):
        release = PartitionedRelease(
            ODD,
            cell_of=lambda r: r["cell"],
            default_epsilon=0.05,
            epsilon_of={"generous": 4.0},
        )
        records = records_for({"generous": 2000, "stingy": 2000})
        out = release.release(records, rng)
        rate_generous = len(out["generous"]) / 1000  # 1000 non-sensitive
        rate_stingy = len(out["stingy"]) / 1000
        assert rate_generous > 0.9
        assert rate_stingy < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedRelease(ODD, cell_of=lambda r: 0, default_epsilon=0.0)
        with pytest.raises(ValueError):
            PartitionedRelease(
                ODD, cell_of=lambda r: 0, epsilon_of={"x": -1.0}
            )


class TestGuarantees:
    def test_eosdp_is_max_epsilon(self, rng):
        release = PartitionedRelease(
            ODD,
            cell_of=lambda r: r["cell"],
            default_epsilon=0.5,
            epsilon_of={"b": 2.0},
        )
        release.release(records_for({"a": 10, "b": 10}), rng)
        guarantee = release.eosdp_guarantee()
        assert guarantee.epsilon == pytest.approx(2.0)

    def test_osdp_is_double(self, rng):
        release = PartitionedRelease(
            ODD, cell_of=lambda r: r["cell"], default_epsilon=0.5
        )
        release.release(records_for({"a": 10}), rng)
        assert release.osdp_guarantee().epsilon == pytest.approx(1.0)

    def test_guarantee_before_release_raises(self):
        release = PartitionedRelease(ODD, cell_of=lambda r: 0)
        with pytest.raises(ValueError):
            release.eosdp_guarantee()

    def test_parallel_beats_sequential_budget(self, rng):
        """The point of Theorem 10.2: k cells at eps cost eps (x2 for
        plain OSDP), not k*eps."""
        release = PartitionedRelease(
            ODD, cell_of=lambda r: r["cell"], default_epsilon=1.0
        )
        cells = {f"c{i}": 5 for i in range(10)}
        release.release(records_for(cells), rng)
        assert release.eosdp_guarantee().epsilon == pytest.approx(1.0)
        assert release.osdp_guarantee().epsilon == pytest.approx(2.0)
        # Sequential composition over the same 10 analyses would cost 10.
