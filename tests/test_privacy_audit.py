"""Empirical OSDP audit: odds-ratio lower bounds on neighboring pairs.

A regression tripwire for every release fast path (see
``docs/TESTING.md``): the audit runs ``release_batch`` — the vectorized
production kernels of :mod:`repro.mechanisms.batch_sampling` — many
times on a fixed one-sided neighboring pair and lower-bounds the
mechanism's epsilon by the largest observed odds ratio.

The worst-case events of both OSDP primitives have ratio *exactly*
``e^eps`` (the zero count under binomial thinning; any sub-support
event under one-sided Laplace), so a healthy audit lands near ``eps``
from both sides:

* an audit value far **above** eps + margin means a leak — which is
  what the deliberately broken half-scale mutants demonstrate;
* an audit value far **below** eps - margin means the audit lost its
  power and could no longer catch a leak.

Seeds are fixed, so the realized audit values are deterministic; the
margins additionally cover the max-over-events estimator noise at
these sample sizes with room to spare (see the TESTING.md derivation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.one_sided_laplace import OneSidedLaplace
from repro.evaluation.audit import (
    audit_composed_release,
    audit_release_mechanism,
    discretize_outputs,
    empirical_odds_ratio_audit,
    joint_zero_estimate_codes,
)
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.osdp_laplace import (
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
)
from repro.mechanisms.osdp_rr import OsdpRRHistogram, release_probability
from repro.queries.histogram import HistogramInput

EPSILON = 1.0
N_TRIALS = 120_000
# Audit tolerance in epsilon space: covers the max-over-events
# estimator noise at N_TRIALS with min_count >= 200 (see TESTING.md).
MARGIN = 0.25
NS_COUNT = 2  # non-sensitive count in the audited bin under D


def _neighbor_pair() -> tuple[HistogramInput, HistogramInput]:
    """``D`` and a one-sided neighbor ``D'``.

    Replacing one of D's sensitive records with a non-sensitive record
    in the audited bin grows ``x_ns`` there by one; the total count is
    unchanged (bounded model).  This is the worst-case direction the
    OSDP inequality bounds.
    """
    x = np.array([20.0, 30.0])
    d = HistogramInput(x=x, x_ns=np.array([float(NS_COUNT), 5.0]))
    d_prime = HistogramInput(x=x, x_ns=np.array([float(NS_COUNT + 1), 5.0]))
    return d, d_prime


def _broken_one_sided(mechanism):
    """The scale/2 mutant: one-sided noise at half the calibrated scale.

    Half the scale doubles the privacy loss — the release behaves like
    an ``e^{2 eps}`` mechanism while still claiming ``eps``.
    """
    mechanism.noise = OneSidedLaplace(scale=0.5 / mechanism.epsilon)
    return mechanism


class _BrokenOsdpRR(OsdpRRHistogram):
    """Retention calibrated for 2*eps: the thinning analog of scale/2."""

    @property
    def retention_probability(self) -> float:
        return release_probability(2.0 * self.epsilon)


class TestHealthyMechanismsPassTheAudit:
    """Correct mechanisms stay under e^eps — and near it (audit power)."""

    def test_osdp_rr(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            OsdpRRHistogram(EPSILON), d, d_prime, N_TRIALS, seed=101
        )
        assert audit.epsilon_lower_bound <= EPSILON + MARGIN
        assert audit.epsilon_lower_bound >= EPSILON - MARGIN
        # The worst event of binomial thinning is the empty release.
        assert audit.event == 0

    def test_osdp_laplace(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            OsdpLaplaceHistogram(EPSILON),
            d,
            d_prime,
            N_TRIALS,
            seed=202,
            width=0.5,
            min_count=200,
        )
        assert audit.epsilon_lower_bound <= EPSILON + MARGIN
        assert audit.epsilon_lower_bound >= EPSILON - MARGIN

    def test_osdp_laplace_l1(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            OsdpLaplaceL1Histogram(EPSILON),
            d,
            d_prime,
            N_TRIALS,
            seed=303,
            width=0.5,
            min_count=200,
        )
        assert audit.epsilon_lower_bound <= EPSILON + MARGIN
        assert audit.epsilon_lower_bound >= EPSILON - MARGIN

    def test_epsilon_half_still_passes_at_its_own_epsilon(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            OsdpLaplaceHistogram(0.5),
            d,
            d_prime,
            N_TRIALS,
            seed=404,
            width=0.5,
            min_count=200,
        )
        assert audit.epsilon_lower_bound <= 0.5 + MARGIN


class TestBrokenMechanismsAreFlagged:
    """The scale/2 mutants leak ~2*eps and must trip the audit."""

    def test_broken_osdp_laplace_flagged(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            _broken_one_sided(OsdpLaplaceHistogram(EPSILON)),
            d,
            d_prime,
            N_TRIALS,
            seed=505,
            width=0.5,
            min_count=200,
        )
        assert audit.violates(EPSILON, slack=MARGIN)
        # ...and by a decisive amount: the mutant audits near 2*eps.
        assert audit.epsilon_lower_bound > 1.5 * EPSILON

    def test_broken_osdp_laplace_l1_flagged(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            _broken_one_sided(OsdpLaplaceL1Histogram(EPSILON)),
            d,
            d_prime,
            N_TRIALS,
            seed=606,
            width=0.5,
            min_count=200,
        )
        assert audit.violates(EPSILON, slack=MARGIN)

    def test_broken_osdp_rr_flagged(self):
        d, d_prime = _neighbor_pair()
        audit = audit_release_mechanism(
            _BrokenOsdpRR(EPSILON), d, d_prime, N_TRIALS, seed=707
        )
        assert audit.violates(EPSILON, slack=MARGIN)
        assert audit.epsilon_lower_bound > 1.5 * EPSILON


def _composed_neighbor_pair() -> tuple[HistogramInput, HistogramInput]:
    """A multi-bin pair for the two-phase (DAWAz) joint-event audit.

    Totals are large relative to the DP noise so the DAWA phase almost
    never clips an estimate to an exact zero — exact zeros then come
    (essentially only) from the zero-detection phase, which keeps the
    joint zero-event sharp.  As in ``_neighbor_pair``, the one-sided
    neighbor grows ``x_ns`` of the audited bin by one.
    """
    x = np.array([60.0, 90.0, 45.0, 30.0, 55.0, 80.0, 35.0, 50.0])
    x_ns = np.array([2.0, 15.0, 9.0, 6.0, 12.0, 18.0, 4.0, 10.0])
    x_ns_prime = x_ns.copy()
    x_ns_prime[0] += 1.0
    return (
        HistogramInput(x=x, x_ns=x_ns),
        HistogramInput(x=x, x_ns=x_ns_prime),
    )


class _LeakyZeroDawaZ(DawaZ):
    """Zero detection spending 2*eps while the ledger claims rho*eps.

    The composed-mechanism analog of the scale/2 mutants: the DP phase
    is untouched (its marginal stays healthy), only the zero-set
    distribution leaks — the failure mode a joint-event audit exists to
    catch.
    """

    def __init__(self, epsilon: float, **kwargs):
        super().__init__(epsilon, **kwargs)
        self.epsilon_zero = 2.0 * epsilon


class TestComposedMechanismAudit:
    """The joint (zero-set, estimate) audit over DAWAz (Algorithm 3)."""

    # DAWAz trials pay a full two-phase release each; 40k keeps the
    # worst joint event above min_count in both worlds at a quarter of
    # the primitive audits' cost (values are seed-deterministic).
    N_COMPOSED = 40_000

    def test_healthy_dawaz_respects_the_composed_budget(self):
        d, d_prime = _composed_neighbor_pair()
        audit = audit_composed_release(
            DawaZ(EPSILON), d, d_prime, self.N_COMPOSED, seed=11,
            min_count=200,
        )
        assert audit.epsilon_lower_bound <= EPSILON + MARGIN
        # The two worlds differ only through the zero phase (the DP
        # phase sees identical x), so a healthy joint audit lands near
        # the zero phase's rho * eps share — and must not lose that
        # signal entirely (audit power).
        rho_share = DawaZ(EPSILON).epsilon_zero
        assert audit.epsilon_lower_bound >= rho_share - 0.05
        assert audit.epsilon_lower_bound <= rho_share + 0.05
        # The worst joint event is zero-set membership: code 1 is
        # (discretized estimate 0, in Z).
        assert audit.event == 1

    def test_leaky_zero_detector_is_flagged(self):
        d, d_prime = _composed_neighbor_pair()
        audit = audit_composed_release(
            _LeakyZeroDawaZ(EPSILON), d, d_prime, self.N_COMPOSED, seed=11,
            min_count=200,
        )
        assert audit.violates(EPSILON, slack=MARGIN)
        # ...decisively: the joint bound recovers the detector's true
        # 2*eps spend.
        assert audit.epsilon_lower_bound > 1.5 * EPSILON

    def test_joint_codes_separate_zeroed_from_released(self):
        estimates = np.array([[0.0, 3.2], [0.3, 3.2], [-0.2, 0.0]])
        codes = joint_zero_estimate_codes(estimates, 0, width=0.5)
        assert codes.tolist() == [1, 0, -2]  # in-Z, released-0.3, released–0.2
        assert joint_zero_estimate_codes(estimates, 1, width=0.5).tolist() == [
            12,
            12,
            1,
        ]


class TestAuditEstimator:
    """The odds-ratio estimator itself, on known distributions."""

    def test_identical_worlds_audit_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.binomial(10, 0.4, size=N_TRIALS)
        b = rng.binomial(10, 0.4, size=N_TRIALS)
        audit = empirical_odds_ratio_audit(a, b, min_count=200)
        assert abs(audit.epsilon_lower_bound) < 0.1

    def test_forbidden_mass_surfaces_as_large_ratio(self):
        # World B (the denominator) almost never emits 5; a mechanism
        # whose suppression path broke would look like this.
        a = np.full(2000, 5)
        b = np.zeros(2000, dtype=int)
        audit = empirical_odds_ratio_audit(a, b, min_count=50)
        assert audit.max_ratio >= 2000.0
        assert audit.event == 5

    def test_min_count_filters_rare_events(self):
        a = np.concatenate([np.zeros(1000, dtype=int), [7]])
        b = np.zeros(1001, dtype=int)
        audit = empirical_odds_ratio_audit(a, b, min_count=50)
        assert audit.n_events == 1  # the lone 7 is filtered
        with pytest.raises(ValueError):
            empirical_odds_ratio_audit(a, b, min_count=5000)

    def test_discretize_outputs_rejects_bad_width(self):
        with pytest.raises(ValueError):
            discretize_outputs(np.array([1.0]), 0.0)

    def test_direction_is_one_sided(self):
        # OSDP bounds P[M(D)] / P[M(D')] only: mass that only D' can
        # produce (the grown support) must NOT flag the mechanism.
        d, d_prime = _neighbor_pair()
        mech = OsdpLaplaceHistogram(EPSILON)
        audit = audit_release_mechanism(
            mech, d, d_prime, N_TRIALS, seed=808, width=0.5, min_count=200
        )
        reverse = audit_release_mechanism(
            mech, d_prime, d, N_TRIALS, seed=808, width=0.5, min_count=200
        )
        assert audit.epsilon_lower_bound <= EPSILON + MARGIN
        # The reverse direction legitimately exceeds eps (the interval
        # (c, c+1] has zero mass under D) — evidence the asymmetry in
        # the audit is load-bearing, not an implementation accident.
        assert reverse.epsilon_lower_bound > EPSILON + MARGIN
