"""Batched release (``release_batch``) equivalence and distribution tests.

Two contracts:

* **spawned-stream mode** — given a sequence of generators, row ``i``
  of ``release_batch`` equals ``release`` under the same spawned rng
  stream, bit for bit, for every mechanism;
* **batch mode** — given a single generator, rows are iid draws of the
  release distribution: deterministic in the seed, structurally exact
  (support zeros, clipping, de-bias correction), and statistically
  indistinguishable from the sequential path on moments and quantiles.
"""

import numpy as np
import pytest

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import m_sampling
from repro.evaluation.experiments.fig6_10_dpbench import make_mechanism
from repro.evaluation.runner import release_trials, spawn_rngs
from repro.mechanisms.dawaz import detect_zero_bins_batch
from repro.mechanisms.osdp_laplace import HybridOsdpLaplace
from repro.queries.histogram import HistogramInput

ALGORITHMS = (
    "laplace",
    "osdp_laplace",
    "osdp_laplace_l1",
    "osdp_rr",
    "dawa",
    "dawaz",
    "suppress10",
)


@pytest.fixture(scope="module")
def hist():
    x = generate_dpbench("adult", seed=1).astype(float)
    x_ns = m_sampling(x, 0.6, np.random.default_rng(1)).x_ns.astype(float)
    return HistogramInput(x=x, x_ns=x_ns)


@pytest.fixture(scope="module")
def small_hist():
    x = np.array([40.0, 0.0, 7.0, 125.0, 0.0, 3.0, 18.0, 60.0])
    x_ns = np.array([25.0, 0.0, 7.0, 90.0, 0.0, 0.0, 11.0, 44.0])
    return HistogramInput(x=x, x_ns=x_ns)


class TestSpawnedStreamMode:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rows_equal_per_trial_release(self, hist, algorithm):
        mech = make_mechanism(algorithm, epsilon=1.0, ns_ratio=0.6)
        batch = mech.release_batch(hist, spawn_rngs(3, 5))
        reference = np.stack(
            [mech.release(hist, rng) for rng in spawn_rngs(3, 5)]
        )
        assert np.array_equal(batch, reference)

    def test_hybrid_mechanism_uses_base_path(self, hist):
        mech = HybridOsdpLaplace(epsilon=1.0)
        batch = mech.release_batch(hist, spawn_rngs(4, 3))
        reference = np.stack(
            [mech.release(hist, rng) for rng in spawn_rngs(4, 3)]
        )
        assert np.array_equal(batch, reference)

    def test_n_trials_mismatch_rejected(self, hist):
        mech = make_mechanism("laplace", epsilon=1.0)
        with pytest.raises(ValueError):
            mech.release_batch(hist, spawn_rngs(0, 3), n_trials=5)

    def test_release_trials_unbatched_matches_protocol(self, hist):
        mech = make_mechanism("osdp_laplace_l1", epsilon=1.0)
        rows = release_trials(mech, hist, n_trials=4, seed=11, batched=False)
        reference = np.stack(
            [mech.release(hist, rng) for rng in spawn_rngs(11, 4)]
        )
        assert np.array_equal(rows, reference)


class TestBatchMode:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_shape_and_determinism(self, hist, algorithm):
        mech = make_mechanism(algorithm, epsilon=1.0, ns_ratio=0.6)
        a = mech.release_batch(hist, np.random.default_rng(7), 4)
        b = mech.release_batch(hist, np.random.default_rng(7), 4)
        assert a.shape == (4, hist.n_bins)
        assert np.array_equal(a, b)
        assert np.all(np.isfinite(a))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rows_are_distinct_trials(self, hist, algorithm):
        mech = make_mechanism(algorithm, epsilon=1.0, ns_ratio=0.6)
        rows = mech.release_batch(hist, np.random.default_rng(8), 3)
        assert not np.array_equal(rows[0], rows[1])
        assert not np.array_equal(rows[1], rows[2])

    def test_n_trials_required_with_single_rng(self, hist):
        mech = make_mechanism("laplace", epsilon=1.0)
        with pytest.raises(ValueError):
            mech.release_batch(hist, np.random.default_rng(0))

    def test_support_zeros_exact_for_clipped_mechanisms(self, small_hist):
        empty = np.asarray(small_hist.x_ns) == 0
        for algorithm in ("osdp_laplace_l1", "osdp_rr"):
            mech = make_mechanism(algorithm, epsilon=1.0)
            rows = mech.release_batch(small_hist, np.random.default_rng(2), 200)
            assert np.all(rows[:, empty] == 0.0), algorithm

    def test_unclipped_one_sided_noises_empty_bins(self, small_hist):
        mech = make_mechanism("osdp_laplace", epsilon=1.0)
        rows = mech.release_batch(small_hist, np.random.default_rng(2), 50)
        empty = np.asarray(small_hist.x_ns) == 0
        # Lap^- noise is strictly negative, so empty bins release < 0.
        assert np.all(rows[:, empty] < 0.0)


class TestBatchDistributions:
    """Moment/quantile agreement between batch and sequential paths.

    Fixed seeds and generous-but-meaningful tolerances: these fail on
    real distributional bugs (wrong scale, missing de-bias, shifted
    sign convention), not on unlucky draws.
    """

    N = 4000

    def _noise_rows(self, algorithm, hist, n):
        mech = make_mechanism(algorithm, epsilon=1.0)
        return mech.release_batch(hist, np.random.default_rng(123), n)

    def test_laplace_moments_and_quantiles(self, small_hist):
        rows = self._noise_rows("laplace", small_hist, self.N)
        noise = rows - np.asarray(small_hist.x)
        assert abs(noise.mean()) < 0.05
        assert noise.std() == pytest.approx(np.sqrt(8.0), rel=0.03)

    def test_laplace_correct_under_32bit_bit_generator(self, small_hist):
        """Regression: MT19937's random_raw words carry only 32 random
        bits; the raw-bits kernel must not read such streams directly
        (half the noise lanes would collapse to ~zero)."""
        mech = make_mechanism("laplace", epsilon=1.0)
        rng = np.random.Generator(np.random.MT19937(0))
        rows = mech.release_batch(small_hist, rng, self.N)
        noise = rows - np.asarray(small_hist.x)
        assert noise.std() == pytest.approx(np.sqrt(8.0), rel=0.03)
        # Laplace(2) quartiles at +/- 2 ln 2.
        assert np.quantile(noise, 0.75) == pytest.approx(
            2.0 * np.log(2.0), rel=0.05
        )
        assert np.quantile(noise, 0.25) == pytest.approx(
            -2.0 * np.log(2.0), rel=0.05
        )

    def test_one_sided_moments(self, small_hist):
        rows = self._noise_rows("osdp_laplace", small_hist, self.N)
        noise = rows - np.asarray(small_hist.x_ns)
        assert np.all(noise <= 0.0)
        assert noise.mean() == pytest.approx(-1.0, rel=0.05)
        assert noise.std() == pytest.approx(1.0, rel=0.05)

    def test_tail_clamp_at_lattice_step(self, small_hist):
        """Regression: the log(0) guard must clamp to the uniform
        lattice step, not an arbitrary tiny value — otherwise the zero
        cell emits ~69-sigma outliers with probability 2^-23/variate."""
        one_sided = self._noise_rows("osdp_laplace", small_hist, self.N)
        noise = one_sided - np.asarray(small_hist.x_ns)
        assert noise.min() >= np.log(2.0**-24) - 1e-3  # scale = 1
        laplace = self._noise_rows("laplace", small_hist, self.N)
        noise = laplace - np.asarray(small_hist.x)
        # scale = 2; |2t| >= 2^-22 so |noise| <= 2 * 22 ln 2.
        assert np.abs(noise).max() <= 2.0 * 22.0 * np.log(2.0) + 1e-3

    def test_binomial_thinning_moments(self, small_hist):
        from repro.mechanisms.osdp_rr import OsdpRRHistogram

        mech = OsdpRRHistogram(epsilon=1.0)  # unscaled Binomial(x_ns, p)
        rows = mech.release_batch(small_hist, np.random.default_rng(123), self.N)
        p = 1.0 - np.exp(-1.0)
        x_ns = np.asarray(small_hist.x_ns)
        support = x_ns > 0
        expected = x_ns[support] * p
        var = x_ns[support] * p * (1.0 - p)
        assert np.allclose(
            rows[:, support].mean(axis=0), expected, rtol=0.08
        )
        assert np.allclose(
            rows[:, support].var(axis=0), var, rtol=0.25
        )

    def test_debias_matches_sequential_distribution(self, small_hist):
        mech = make_mechanism("osdp_laplace_l1", epsilon=1.0)
        batch = mech.release_batch(small_hist, np.random.default_rng(5), self.N)
        sequential = np.stack(
            [
                mech.release(small_hist, rng)
                for rng in spawn_rngs(5, 400)
            ]
        )
        support = np.asarray(small_hist.x_ns) > 0
        assert np.allclose(
            batch[:, support].mean(axis=0),
            sequential[:, support].mean(axis=0),
            rtol=0.05,
            atol=0.15,
        )

    def test_dawaz_batch_error_comparable(self, hist):
        mech = make_mechanism("dawaz", epsilon=1.0)
        batch = mech.release_batch(hist, np.random.default_rng(6), 6)
        sequential = np.stack(
            [mech.release(hist, rng) for rng in spawn_rngs(6, 6)]
        )
        x = np.asarray(hist.x)
        err_batch = np.abs(batch - x).sum(axis=1).mean()
        err_seq = np.abs(sequential - x).sum(axis=1).mean()
        assert err_batch == pytest.approx(err_seq, rel=0.5)


class TestBatchZeroDetection:
    def test_empty_bins_always_detected(self, small_hist):
        masks = detect_zero_bins_batch(
            small_hist, 1.0, np.random.default_rng(0), 50
        )
        empty = np.asarray(small_hist.x_ns) == 0
        assert masks.shape == (50, small_hist.n_bins)
        assert np.all(masks[:, empty])

    @pytest.mark.parametrize("detector", ["osdp_rr", "osdp_laplace_l1"])
    def test_detection_rate_matches_sequential(self, small_hist, detector):
        from repro.mechanisms.dawaz import detect_zero_bins

        batch = detect_zero_bins_batch(
            small_hist, 0.05, np.random.default_rng(1), 600, detector=detector
        )
        sequential = np.stack(
            [
                detect_zero_bins(small_hist, 0.05, rng, detector=detector)
                for rng in spawn_rngs(1, 600)
            ]
        )
        assert np.allclose(
            batch.mean(axis=0), sequential.mean(axis=0), atol=0.08
        )

    def test_unknown_detector_rejected(self, small_hist):
        with pytest.raises(ValueError):
            detect_zero_bins_batch(
                small_hist, 1.0, np.random.default_rng(0), 3, detector="nope"
            )
