"""Fault-injection harness for the serving tier (no test cases here).

Two tools, both driven by ``tests/test_cluster_faults.py``:

* :class:`ChaosProxy` — a loopback TCP proxy that forwards bytes
  between a client and an upstream server while injecting transport
  faults on command: per-direction **delay**, **drop** (blackhole),
  one-shot **truncate** (forward N more bytes, then abruptly close
  both sides mid-frame) and **reset** (RST every live connection via
  ``SO_LINGER(1, 0)``).  Point a ``RemoteBackend`` at the proxy's
  address and the wire sees exactly the failure you asked for.
* :class:`EndpointProcess` — one ``RpcServer`` over a deterministic
  slice of the demo table, in its own OS process (so ``SIGKILL`` is a
  real endpoint death, not a mock).  The child reports its ephemeral
  address through a pipe; replicas built from the same ``(n, seed,
  lo, hi)`` serve bit-identical data by construction.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
import threading
import time

import numpy as np


def loopback_skip_reason() -> str | None:
    """Why socket tests cannot run here (None when they can)."""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


# ----------------------------------------------------------------------
# Deterministic data slices (shared by endpoints, replicas, mirrors)
# ----------------------------------------------------------------------


def make_db(n: int = 4000, seed: int = 0):
    """The full demo table every fault test slices and mirrors."""
    from repro.data.columnar import ColumnarDatabase

    rng = np.random.default_rng(seed)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def slice_db(n: int, seed: int, lo: int, hi: int):
    """Rows ``[lo, hi)`` of :func:`make_db` — one endpoint's slice."""
    from repro.data.columnar import ColumnarDatabase

    full = make_db(n, seed)
    return ColumnarDatabase(
        {
            name: np.asarray(full[name])[lo:hi].copy()
            for name in full.column_names
        }
    )


# ----------------------------------------------------------------------
# Endpoint-in-a-process (SIGKILL is a real death)
# ----------------------------------------------------------------------


def _endpoint_main(
    conn,
    n,
    seed,
    lo,
    hi,
    n_shards,
    wal_dir=None,
    port=0,
    budget_dir=None,
    budget_epsilon=None,
    quotas=None,
) -> None:
    from repro.service.rpc import RpcServer
    from repro.service.server import ReleaseServer

    accountant = None
    if budget_dir is not None:
        from repro.service.budget import DurableAccountant

        accountant = DurableAccountant(
            budget_dir, total_epsilon=budget_epsilon, quotas=quotas
        )
    server = ReleaseServer(
        slice_db(n, seed, lo, hi).shard(n_shards), accountant=accountant
    )
    wal = None
    if wal_dir is not None:
        from repro.service.wal import WriteAheadLog

        wal = WriteAheadLog(wal_dir)
        wal.recover(server)
    rpc = RpcServer(server, port=port, wal=wal)
    conn.send(rpc.address)
    conn.close()
    rpc.serve_forever()


class EndpointProcess:
    """One live ``repro`` serving endpoint in a child OS process.

    Endpoints are unmetered by default: in the cluster design the
    *coordinator* owns the accountant, so budget accounting survives
    any endpoint death.

    Pass ``wal_dir`` to make the endpoint durable: writes go through a
    :class:`repro.service.wal.WriteAheadLog` in that directory, and
    :meth:`restart` respawns the child *on the same port* so a
    recovered endpoint is reachable at its old address — the shape of
    a supervised production restart.

    Pass ``budget_dir`` (with ``budget_epsilon``, optionally
    ``quotas``) to meter the endpoint through a
    :class:`repro.service.budget.DurableAccountant`: every charge is
    journaled and fsync'd before its release returns, and a restarted
    child resumes from the recovered spent total.
    """

    def __init__(
        self,
        n: int,
        seed: int,
        lo: int,
        hi: int,
        n_shards: int = 2,
        wal_dir=None,
        port: int = 0,
        budget_dir=None,
        budget_epsilon=None,
        quotas=None,
    ):
        self.slice_args = (n, seed, lo, hi)
        self.n_shards = n_shards
        self.wal_dir = wal_dir
        self.budget_dir = budget_dir
        self.budget_epsilon = budget_epsilon
        self.quotas = quotas
        self._spawn(port)

    def _spawn(self, port: int) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_endpoint_main,
            args=(
                child_conn,
                *self.slice_args,
                self.n_shards,
                self.wal_dir,
                port,
                self.budget_dir,
                self.budget_epsilon,
                self.quotas,
            ),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(30):
                self.process.kill()
                raise RuntimeError(
                    "endpoint child never reported its address"
                )
            self.host, self.port = parent_conn.recv()
        except EOFError:
            self.process.join(timeout=10)
            raise RuntimeError(
                "endpoint child died before binding its port"
            ) from None
        finally:
            parent_conn.close()

    def kill(self) -> None:
        """SIGKILL — the endpoint dies without any cleanup or goodbye."""
        self.process.kill()
        self.process.join(timeout=10)

    def restart(self) -> None:
        """Respawn a (dead) endpoint on its previously bound port.

        With a ``wal_dir`` the child replays its write-ahead log on
        startup, so every write it acked before dying is served again.
        """
        if self.process.is_alive():
            self.kill()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                self._spawn(self.port)
                return
            except RuntimeError:
                # The old port can linger in TIME_WAIT briefly.
                time.sleep(0.2)
        raise RuntimeError("endpoint could not rebind its port")

    def close(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(timeout=10)

    def __enter__(self) -> "EndpointProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The chaos proxy
# ----------------------------------------------------------------------


class _Faults:
    """Mutable per-direction fault switches (guarded by the proxy lock)."""

    def __init__(self):
        self.delay = 0.0  # seconds to sleep before forwarding a chunk
        self.drop = False  # blackhole: consume bytes, forward nothing
        self.truncate_budget: int | None = None  # one-shot byte budget


class ChaosProxy:
    """A TCP proxy that injects transport faults on command.

    Directions are named from the client's point of view: ``"c2s"``
    (requests) and ``"s2c"`` (replies); fault setters default to
    ``"both"``.  All switches are live — they apply to bytes that
    cross the proxy *after* the call — and :meth:`clear` restores
    clean forwarding.  ``truncate_after(n)`` is one-shot: after ``n``
    more forwarded bytes the proxied connection is closed abruptly in
    both directions, which a peer mid-frame observes as truncation.
    """

    def __init__(self, upstream_host: str, upstream_port: int):
        self.upstream = (upstream_host, upstream_port)
        self._lock = threading.Lock()
        self._faults = {"c2s": _Faults(), "s2c": _Faults()}
        self._closed = False
        self._conns: list[tuple[socket.socket, socket.socket]] = []
        self.bytes_forwarded = {"c2s": 0, "s2c": 0}
        self.connections_seen = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # -- fault switches -------------------------------------------------
    def _each(self, direction: str):
        if direction == "both":
            return [self._faults["c2s"], self._faults["s2c"]]
        return [self._faults[direction]]

    def set_delay(self, seconds: float, direction: str = "both") -> None:
        with self._lock:
            for faults in self._each(direction):
                faults.delay = seconds

    def set_drop(self, dropping: bool = True, direction: str = "both") -> None:
        with self._lock:
            for faults in self._each(direction):
                faults.drop = dropping

    def truncate_after(self, nbytes: int, direction: str = "both") -> None:
        """Forward ``nbytes`` more bytes, then abruptly close (one-shot)."""
        with self._lock:
            for faults in self._each(direction):
                faults.truncate_budget = nbytes

    def clear(self) -> None:
        with self._lock:
            for faults in self._faults.values():
                faults.delay = 0.0
                faults.drop = False
                faults.truncate_budget = None

    def reset_connections(self) -> None:
        """RST every live proxied connection (SO_LINGER 1, 0)."""
        with self._lock:
            conns, self._conns = self._conns, []
        for client, upstream in conns:
            for sock in (client, upstream):
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    # -- plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self.connections_seen += 1
            try:
                upstream = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.append((client, upstream))
            for direction, src, dst in (
                ("c2s", client, upstream),
                ("s2c", upstream, client),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(direction, src, dst, client, upstream),
                    name=f"chaos-proxy-{direction}",
                    daemon=True,
                ).start()

    def _pump(self, direction, src, dst, client, upstream) -> None:
        while True:
            try:
                chunk = src.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            with self._lock:
                faults = self._faults[direction]
                delay, drop = faults.delay, faults.drop
                budget = faults.truncate_budget
                if budget is not None:
                    if len(chunk) >= budget:
                        chunk = chunk[:budget]
                        faults.truncate_budget = None
                        drop_connection = True
                    else:
                        faults.truncate_budget = budget - len(chunk)
                        drop_connection = False
                else:
                    drop_connection = False
            if delay:
                time.sleep(delay)
            if drop:
                continue  # blackhole: swallow the bytes
            try:
                if chunk:
                    dst.sendall(chunk)
                    with self._lock:
                        self.bytes_forwarded[direction] += len(chunk)
            except OSError:
                break
            if drop_connection:
                self._sever(client, upstream)
                return
        self._sever(client, upstream)

    def _sever(self, client, upstream) -> None:
        with self._lock:
            self._conns = [
                pair for pair in self._conns if pair[0] is not client
            ]
        for sock in (client, upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.reset_connections()
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
