"""The grouped inverse-CDF binomial kernel (dense-support fast path).

``binomial_support_rows`` must stay a drop-in for numpy's
``Generator.binomial`` on support counts: per-column marginals exactly
``Binomial(n_j, p)`` (chi-squared against the closed-form pmf, moment
checks at large ``n``), deterministic in the seed, and structurally
bounded (``0 <= k <= n``).  The dispatch between the table transform and
numpy's per-draw loop is a pure performance choice and must never
change the distribution.
"""

from __future__ import annotations

from math import comb

import numpy as np
import pytest

from repro.mechanisms.batch_sampling import (
    _BINOM_WINDOW_SIGMAS,
    _binomial_windows,
    binomial_inverse_cdf_rows,
    binomial_support_rows,
)


def _exact_pmf(n: int, p: float) -> np.ndarray:
    return np.array([comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(n + 1)])


class TestDistribution:
    @pytest.mark.parametrize("n,p", [(1, 0.632), (4, 0.095), (12, 0.632), (30, 0.39)])
    def test_small_n_chi_squared(self, n, p):
        """Empirical pmf vs the closed form, over every outcome."""
        draws = binomial_inverse_cdf_rows(
            np.random.default_rng(7), np.full(500, n), p, 400
        ).ravel()
        obs = np.bincount(draws.astype(int), minlength=n + 1)
        expected = _exact_pmf(n, p) * draws.size
        keep = expected > 5  # standard chi-squared applicability rule
        chi2 = float(((obs[keep] - expected[keep]) ** 2 / expected[keep]).sum())
        dof = int(keep.sum()) - 1
        # P(chi2 > dof + 6*sqrt(2*dof)) is ~1e-8; generous and stable.
        assert chi2 < dof + 6 * np.sqrt(2 * dof), (chi2, dof)

    @pytest.mark.parametrize("n", [84, 2_000, 28_000])
    def test_large_n_moments(self, n):
        p = 0.632
        draws = binomial_inverse_cdf_rows(
            np.random.default_rng(3), np.full(300, n), p, 300
        ).ravel()
        mean, var = n * p, n * p * (1 - p)
        z = (draws.mean() - mean) / np.sqrt(var / draws.size)
        assert abs(z) < 5.0
        assert 0.93 < draws.var() / var < 1.07

    def test_bounds_always_hold(self):
        counts = np.sort(np.random.default_rng(0).integers(1, 400, 64))
        draws = binomial_support_rows(
            np.random.default_rng(1), counts, 0.39, 50
        )
        assert np.all(draws >= 0)
        assert np.all(draws <= counts[np.newaxis, :])

    def test_columns_follow_their_count(self):
        """Each output column is driven by its own n_j."""
        counts = np.array([1, 1000])
        draws = binomial_support_rows(
            np.random.default_rng(2), counts, 0.5, 2000
        )
        assert draws[:, 0].max() <= 1
        assert draws[:, 1].mean() == pytest.approx(500, rel=0.05)


class TestDispatchAndDeterminism:
    def test_deterministic_in_seed(self):
        counts = np.sort(np.random.default_rng(0).integers(1, 300, 40))
        a = binomial_support_rows(np.random.default_rng(5), counts, 0.632, 8)
        b = binomial_support_rows(np.random.default_rng(5), counts, 0.632, 8)
        assert np.array_equal(a, b)

    def test_table_cache_does_not_change_draws(self):
        """The first (table-building) call and a later cache-hit call
        with the same seed produce identical matrices."""
        counts = np.sort(np.random.default_rng(1).integers(1, 500, 256))
        first = binomial_inverse_cdf_rows(
            np.random.default_rng(9), counts, 0.39, 10
        )
        again = binomial_inverse_cdf_rows(
            np.random.default_rng(9), counts, 0.39, 10
        )
        assert np.array_equal(first, again)

    def test_empty_support(self):
        out = binomial_support_rows(
            np.random.default_rng(0), np.empty(0, dtype=np.int64), 0.5, 3
        )
        assert out.shape == (3, 0)

    def test_needs_a_row(self):
        with pytest.raises(ValueError):
            binomial_support_rows(
                np.random.default_rng(0), np.array([3]), 0.5, 0
            )

    def test_degenerate_p_falls_back_exactly(self):
        counts = np.array([2, 5, 9])
        ones = binomial_support_rows(np.random.default_rng(0), counts, 1.0, 4)
        assert np.array_equal(ones, np.broadcast_to(counts, (4, 3)))

    def test_float64_rows(self):
        out = binomial_support_rows(
            np.random.default_rng(0), np.array([10, 20]), 0.3, 2
        )
        assert out.dtype == np.float64


class TestWindows:
    def test_windows_cover_the_mass(self):
        uniq = np.array([1, 10, 500, 30_000])
        lo, hi = _binomial_windows(uniq, 0.632)
        assert np.all(lo >= 0)
        assert np.all(hi <= uniq)
        assert np.all(lo <= hi)
        # truncated tail mass is negligible by construction
        sd = np.sqrt(uniq * 0.632 * (1 - 0.632))
        assert np.all((uniq * 0.632 - lo) >= np.minimum(
            _BINOM_WINDOW_SIGMAS * sd, uniq * 0.632
        ) - 1)

    def test_small_n_windows_cover_everything(self):
        lo, hi = _binomial_windows(np.array([1, 2, 3]), 0.5)
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [1, 2, 3])


class TestPathDeterminism:
    def test_route_ignores_cache_state(self):
        """A seeded draw must not change because some earlier workload
        built a table for the same (counts, p): path selection is a
        pure function of the request."""
        import repro.mechanisms.batch_sampling as bs

        counts = np.array([10_000])  # 1 draw, wide window -> BTPE route
        p = 0.25
        bs._binom_table_pool.clear()
        bs._binom_size_pool.clear()
        cold = binomial_support_rows(np.random.default_rng(11), counts, p, 1)
        # a big workload builds and caches the table for the same pair
        binomial_inverse_cdf_rows(np.random.default_rng(0), counts, p, 10)
        assert bs._binom_key(counts, p) in bs._binom_table_pool
        warm = binomial_support_rows(np.random.default_rng(11), counts, p, 1)
        assert np.array_equal(cold, warm)

    def test_pool_evicts_one_entry_not_all(self):
        import repro.mechanisms.batch_sampling as bs

        bs._binom_table_pool.clear()
        for i in range(bs._MAX_BINOM_TABLES + 2):
            binomial_inverse_cdf_rows(
                np.random.default_rng(0), np.array([50 + i]), 0.5, 2
            )
        assert len(bs._binom_table_pool) == bs._MAX_BINOM_TABLES
