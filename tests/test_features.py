"""Tests for trajectory feature extraction."""

import numpy as np
import pytest

from repro.classification.features import TrajectoryFeaturizer, resident_labels
from repro.data.tippers import Trajectory


def traj(aps, user_id=0, day=0):
    return Trajectory(
        user_id=user_id, day=day, slots=tuple((i, ap) for i, ap in enumerate(aps))
    )


class TestFeaturizer:
    def test_base_features(self):
        f = TrajectoryFeaturizer(n_aps=8, min_support=100)
        f.fit([traj([1, 1, 2])])
        v = f.transform_one(traj([1, 1, 2]))
        assert v[0] == 3  # duration
        assert v[1] == 2  # distinct aps
        assert v[2 + 1] == 2  # ap 1 visited twice
        assert v[2 + 2] == 1

    def test_pattern_vocabulary_by_support(self):
        f = TrajectoryFeaturizer(n_aps=8, min_support=2)
        trajectories = [
            traj([1, 2, 3], user_id=i) for i in range(3)
        ] + [traj([4, 5, 6], user_id=9)]
        f.fit(trajectories)
        assert (1, 2, 3) in f.patterns_
        assert (4, 5, 6) not in f.patterns_

    def test_pattern_counts_in_vector(self):
        f = TrajectoryFeaturizer(n_aps=8, min_support=1)
        t = traj([1, 2, 3, 1, 2, 3])
        f.fit([t])
        v = f.transform_one(t)
        offset = 2 + 8
        index = f.patterns_.index((1, 2, 3))
        assert v[offset + index] == 2.0

    def test_consecutive_runs_collapsed(self):
        """Idling at an AP does not spawn spurious patterns."""
        f = TrajectoryFeaturizer(n_aps=8, min_support=1)
        f.fit([traj([1, 1, 1, 2, 2, 3])])
        assert f.patterns_ == [(1, 2, 3)]

    def test_transform_matches_transform_one(self):
        f = TrajectoryFeaturizer(n_aps=8, min_support=1)
        trajectories = [traj([1, 2, 3, 4]), traj([2, 2, 5])]
        f.fit(trajectories)
        X = f.transform(trajectories)
        for row, t in zip(X, trajectories):
            assert np.array_equal(row, f.transform_one(t))

    def test_unfitted_raises(self):
        f = TrajectoryFeaturizer()
        with pytest.raises(RuntimeError):
            f.transform([traj([1, 2])])
        with pytest.raises(RuntimeError):
            _ = f.n_features

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            TrajectoryFeaturizer(min_support=0)

    def test_unknown_patterns_ignored_at_transform(self):
        f = TrajectoryFeaturizer(n_aps=8, min_support=1)
        f.fit([traj([1, 2, 3])])
        v = f.transform_one(traj([4, 5, 6, 7]))
        assert v[2 + 8 :].sum() == 0.0


class TestResidentLabels:
    def test_label_lookup(self):
        trajectories = [traj([1], user_id=1), traj([2], user_id=2)]
        labels = resident_labels(trajectories, {1: True, 2: False})
        assert np.array_equal(labels, [1, 0])

    def test_missing_user_defaults_to_visitor(self):
        labels = resident_labels([traj([1], user_id=5)], {})
        assert np.array_equal(labels, [0])
