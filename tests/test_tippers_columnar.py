"""The columnar TIPPERS generator: stream parity with the row generator.

``generate_tippers_columnar`` must replay exactly the rng stream of
``generate_tippers`` while never constructing ``Trajectory`` objects —
so with the same seed the two produce the *same arrays*, column for
column (the strongest possible form of "distributionally identical").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.columnar import RaggedColumn
from repro.data.tippers import (
    TippersConfig,
    generate_tippers,
    generate_tippers_columnar,
)


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_same_seed_same_arrays(seed):
    config = TippersConfig(n_users=90, n_days=20, seed=seed)
    row = generate_tippers(config).columnar()
    col = generate_tippers_columnar(config)
    assert len(row) == len(col)
    assert row.column_names == col.column_names
    for name in row.column_names:
        a, b = row[name], col[name]
        if isinstance(a, RaggedColumn):
            assert np.array_equal(a.flat, b.flat), name
            assert np.array_equal(a.offsets, b.offsets), name
        else:
            assert np.array_equal(a, b), name
            assert a.dtype == b.dtype, name


def test_columnar_generator_feeds_policies_directly():
    config = TippersConfig(n_users=60, n_days=10, seed=5)
    dataset = generate_tippers(config)
    col = generate_tippers_columnar(config)
    policy = dataset.policy_for_fraction(90)
    reference = np.fromiter(
        (policy(t) for t in dataset.trajectories),
        dtype=np.int8,
        count=len(dataset.trajectories),
    )
    assert np.array_equal(policy.evaluate_batch(col), reference)
    # ...and it shards like any other columnar database.
    assert np.array_equal(col.shard(4).mask(policy), reference)


def test_different_seeds_differ():
    a = generate_tippers_columnar(TippersConfig(n_users=40, n_days=8, seed=1))
    b = generate_tippers_columnar(TippersConfig(n_users=40, n_days=8, seed=2))
    assert len(a) != len(b) or not np.array_equal(
        a["duration_slots"], b["duration_slots"]
    )


def test_slot_invariants():
    col = generate_tippers_columnar(TippersConfig(n_users=50, n_days=10, seed=3))
    from repro.data.tippers import SLOTS_PER_DAY

    starts = col["start_slot"]
    ends = col["end_slot"]
    durations = col["duration_slots"]
    assert (ends == starts + durations - 1).all()
    assert (ends < SLOTS_PER_DAY).all()
    assert (durations >= 1).all()
    aps = col["aps"]
    assert np.array_equal(aps.lengths, durations)
