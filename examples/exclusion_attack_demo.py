"""The exclusion attack, made concrete (the paper's §1 and §3.2).

Scenario: Alice queries the smart-building system for Bob's location.
The smoker's lounge is the only sensitive location.  We compare four
disclosure mechanisms and compute, exactly, how much each lets Alice
sharpen her belief that Bob is in the lounge:

* Truman-model access control (release the authorized view),
* non-Truman access control (answer fully or reject),
* PDP Suppress with tau = inf (release all non-sensitive records),
* OsdpRR (Algorithm 1).

The first three have *unbounded* posterior odds inflation — observing
"no data about Bob" proves he is somewhere sensitive.  OsdpRR's
inflation is bounded by e^eps (Theorem 3.1).

Run:  python examples/exclusion_attack_demo.py
"""

import math

from repro.core.exclusion import (
    ProductPrior,
    non_truman_mechanism,
    posterior_odds_ratio,
    reveal_non_sensitive_mechanism,
    worst_case_odds_inflation,
)
from repro.core.policy import LambdaPolicy
from repro.mechanisms.osdp_rr import OsdpRR
from repro.mechanisms.suppress import Suppress

LOCATIONS = ("lounge", "office", "lobby")
POLICY = LambdaPolicy(lambda loc: loc == "lounge", name="lounge-sensitive")
EPSILON = 1.0


def describe(name: str, mechanism) -> None:
    prior = ProductPrior.uniform(LOCATIONS, n_records=1)
    result = worst_case_odds_inflation(mechanism, prior, POLICY)
    if result.bounded:
        print(f"  {name:28s} phi = {result.phi:.3f} "
              f"(odds inflation <= {result.max_inflation:.2f})")
    else:
        print(f"  {name:28s} phi = INFINITY  <- exclusion attack!")
        print(f"      witness: output {result.witness_output!r} makes "
              f"'{result.witness_x}' vs '{result.witness_y}' fully distinguishable")


def main() -> None:
    print("Bob's location is one of", LOCATIONS)
    print(f"policy: only the lounge is sensitive; Alice's prior is uniform\n")

    print("worst-case posterior odds inflation per mechanism:")
    describe("Truman access control", reveal_non_sensitive_mechanism(POLICY))
    describe("non-Truman access control", non_truman_mechanism(POLICY))
    describe("PDP Suppress(tau=inf)", Suppress(POLICY, tau=None).output_distribution)
    describe(
        f"OsdpRR(eps={EPSILON})",
        OsdpRR(POLICY, EPSILON).output_distribution,
    )
    print(f"\n(theory: OsdpRR is bounded by e^eps = {math.exp(EPSILON):.2f} — "
          "Theorem 3.1)")

    # A single concrete observation: Alice sees the empty release.
    prior = ProductPrior.uniform(LOCATIONS, n_records=1)
    truman = reveal_non_sensitive_mechanism(POLICY)
    inflation = posterior_odds_ratio(
        truman, prior, (), target_index=0, x="lounge", y="office"
    )
    print("\nconcrete attack: the Truman view returns NOTHING about Bob.")
    print(f"  lounge-vs-office odds inflation: {inflation}")
    print("  -> Bob's absence from the release certifies he is in the lounge.")

    osdp = OsdpRR(POLICY, EPSILON)
    inflation = posterior_odds_ratio(
        osdp.output_distribution, prior, (), target_index=0, x="lounge", y="office"
    )
    print(f"\nunder OsdpRR the same observation yields inflation "
          f"{inflation:.3f} <= e^eps = {math.exp(EPSILON):.3f}:")
    print("  suppression is plausibly a coin flip, so Bob retains deniability.")

    # The paper's §7 caveat: correlations break the guarantee.
    print("\ncaveat (paper §7): Theorem 3.1 assumes the adversary's prior")
    print("treats records independently.  If the lounge is reachable only")
    print("through a sensitive corridor, releasing the corridor visit")
    print("re-identifies the lounge visit despite OSDP — constraint-aware")
    print("mechanisms are future work.")


if __name__ == "__main__":
    main()
