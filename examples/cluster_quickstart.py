"""Cluster quickstart: durable replicated serving that survives a kill.

The serving story of the paper's curator/analyst split, scaled out:

1. launch a supervised fleet — two shard ranges x two replicas, each
   endpoint with its own write-ahead log,
2. run replicated writes (``append_records`` / ``expire_prefix``)
   through the cluster's commit protocol,
3. SIGKILL one replica mid-service and watch writes keep succeeding,
4. let the supervisor restart it (WAL replay) and resync it back in,
5. verify every read along the way is **bit-identical** to a single
   server that took the same writes.

Run:  PYTHONPATH=src python examples/cluster_quickstart.py
"""

import os
import signal
import tempfile
import time

import numpy as np

from repro.api import ClusterBackend, RemoteBackend, RetryPolicy
from repro.queries.histogram import IntegerBinning
from repro.service.fleet import FleetSupervisor, FleetTopology, build_table
from repro.service.server import ReleaseServer

RECORDS, SEED = 2_000, 3
BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()


def topology(wal_root: str) -> FleetTopology:
    half = RECORDS // 2
    return FleetTopology.from_dict(
        {
            "table": {"records": RECORDS, "seed": SEED, "shards": 2},
            "ranges": [
                {
                    "name": name, "lo": lo, "hi": hi,
                    "replicas": [
                        {"port": 0,
                         "wal_dir": os.path.join(wal_root, f"{name}-r{r}")}
                        for r in range(2)
                    ],
                }
                for name, lo, hi in (("lo", 0, half), ("hi", half, RECORDS))
            ],
        }
    )


def new_rows(lo: int, hi: int) -> list[dict]:
    return [
        {"age": int(v % 100), "city": "x", "opt_in": bool(v % 2)}
        for v in range(lo, hi)
    ]


def check_identical(backend: ClusterBackend, mirror: ReleaseServer) -> None:
    ours = np.asarray(backend.true_histogram(BINNING_SPEC))
    reference = np.asarray(mirror.true_histogram(BINNING_SPEC))
    assert np.array_equal(ours, reference), (ours, reference)
    print(f"   cluster histogram == single-server histogram: {ours.sum():g} "
          "records accounted for, bit-identical")


def main() -> None:
    # The bit-identity reference: one unreplicated server over the
    # same table, taking the same writes.
    mirror = ReleaseServer(build_table(records=RECORDS, seed=SEED).shard(2))

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as wal_root:
        supervisor = FleetSupervisor(
            topology(wal_root),
            retry=RetryPolicy(
                max_attempts=5, base_delay=0.1, multiplier=1.0, jitter=0.0
            ),
            poll_interval=0.05,
            stable_after=1.0,
        )
        with supervisor:
            print("1. launching the fleet (2 ranges x 2 replicas, WAL each)")
            supervisor.start()
            for line in supervisor.events():
                print(f"   {line}")

            with ClusterBackend(
                supervisor.endpoints(),
                retry=RetryPolicy(
                    max_attempts=4, base_delay=0.05, jitter=0.0
                ),
                timeout=10.0,
            ) as backend:
                print("2. replicated writes through the commit protocol")
                backend.append_records(new_rows(0, 50))
                mirror.append_records(new_rows(0, 50))
                backend.expire_prefix(20)
                mirror.expire_prefix(20)
                check_identical(backend, mirror)

                print("3. SIGKILL one replica of the tail range")
                victim = supervisor.health()["hi-r0"]
                os.kill(victim["pid"], signal.SIGKILL)
                # Writes keep landing on the surviving replica; the
                # victim is marked stale the moment it misses one.
                backend.append_records(new_rows(50, 80))
                mirror.append_records(new_rows(50, 80))
                print(f"   write acked with hi-r0 dead; stale replicas: "
                      f"{list(backend.stale()) or 'none yet'}")
                check_identical(backend, mirror)

                print("4. the supervisor restarts it; resync rejoins it")
                deadline = time.monotonic() + 60
                while True:
                    doc = supervisor.health()["hi-r0"]
                    if doc["alive"] and doc["restarts"] >= 1:
                        break
                    assert time.monotonic() < deadline, "no restart"
                    time.sleep(0.05)
                for line in supervisor.events():
                    print(f"   {line}")
                rejoined = backend.resync()
                print(f"   resync verdicts: {rejoined}")
                assert all(rejoined.values()), rejoined

                # The recovered replica serves the full acked history:
                # WAL replay restored what it had, resync the rest.
                host, port = doc["address"]
                with RemoteBackend(host, port, timeout=10.0) as direct:
                    status = direct.wal_status()
                    print(f"   hi-r0 after WAL replay + resync: "
                          f"last_seq={status['last_seq']}, "
                          f"n_records={status['n_records']}")
                backend.append_records(new_rows(80, 90))
                mirror.append_records(new_rows(80, 90))

                print("5. final bit-identity across the whole history")
                check_identical(backend, mirror)

            print("   draining the fleet...")
        print("done: every read was bit-identical to a single server, "
              "through a kill, a restart, and a resync.")


if __name__ == "__main__":
    main()
