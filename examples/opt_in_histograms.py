"""Opt-in/opt-out histogram release: OSDP vs DP on benchmark data (§6.3.3).

Simulates a Close (MSampling) and a Far (HiLoSampling) policy over a
DPBench histogram, runs the full algorithm pool, and prints per-input
MRE and regret — a single-input slice of the paper's Figs 6-9.

Run:  python examples/opt_in_histograms.py
"""

import numpy as np

from repro.data.dpbench import generate_dpbench, measured_sparsity
from repro.data.sampling import hilo_sampling, m_sampling, shape_distance
from repro.evaluation.experiments.fig6_10_dpbench import DEFAULT_POOL, make_mechanism
from repro.evaluation.metrics import mean_relative_error, regret_table
from repro.evaluation.runner import format_table, spawn_rngs
from repro.queries.histogram import HistogramInput

DATASET = "adult"
RHO = 0.75
EPSILON = 1.0
N_TRIALS = 5


def evaluate_pool(hist: HistogramInput, rho: float, seed: int) -> dict[str, float]:
    errors = {}
    for name in DEFAULT_POOL:
        mech = make_mechanism(name, EPSILON, ns_ratio=rho)
        errors[name] = float(
            np.mean(
                [
                    mean_relative_error(hist.x, mech.release(hist, rng))
                    for rng in spawn_rngs(seed, N_TRIALS)
                ]
            )
        )
    return errors


def main() -> None:
    rng = np.random.default_rng(3)
    x = generate_dpbench(DATASET, seed=1).astype(float)
    print(
        f"dataset {DATASET}: scale {int(x.sum())}, "
        f"sparsity {measured_sparsity(x):.2f}, domain {len(x)}"
    )

    close = m_sampling(x, RHO, rng)
    far = hilo_sampling(x, RHO, rng)
    print(f"close policy shape distance: {shape_distance(x, close.x_ns):.3f}")
    print(f"far   policy shape distance: {shape_distance(x, far.x_ns):.3f}\n")

    for label, sample in (("close", close), ("far", far)):
        hist = HistogramInput(x=x, x_ns=sample.x_ns.astype(float))
        errors = evaluate_pool(hist, RHO, seed=11)
        regrets = regret_table(errors)
        rows = [
            [name, errors[name], regrets[name]]
            for name in sorted(errors, key=errors.__getitem__)
        ]
        print(f"policy = {label} (rho_x = {RHO}, epsilon = {EPSILON})")
        print(format_table(["algorithm", "MRE", "regret"], rows))
        print()

    print(
        "Expected shape: OSDP algorithms dominate under the Close policy;\n"
        "under the Far policy the pure OSDP primitives degrade while the\n"
        "hybrid DAWAz stays ahead of DAWA (the paper's Fig 7)."
    )


if __name__ == "__main__":
    main()
