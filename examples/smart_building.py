"""Smart-building analytics under OSDP (the paper's Example 3 / §6).

A synthetic TIPPERS-style Wi-Fi trace is generated; lounge/restroom
access points are sensitive, so every daily trajectory through them is
sensitive.  The example then runs the paper's two mobility analyses:

1. resident-vs-visitor classification on OsdpRR-released trajectories
   (Fig 1's setup), and
2. a 4-gram mobility histogram, comparing OsdpRR against the truncated
   Laplace mechanism (Fig 2's setup).

Run:  python examples/smart_building.py
"""

import numpy as np

from repro.classification.features import TrajectoryFeaturizer, resident_labels
from repro.classification.logistic import LogisticRegression
from repro.classification.metrics import roc_auc
from repro.data.tippers import TippersConfig, generate_tippers
from repro.mechanisms.osdp_rr import OsdpRR
from repro.queries.ngram import NGramCounter, sparse_mre


def classification_demo(dataset, policy, rng) -> None:
    trajectories = dataset.trajectories
    labels = dataset.heuristic_resident_labels()
    y = resident_labels(trajectories, labels)

    featurizer = TrajectoryFeaturizer(min_support=20)
    X = featurizer.fit_transform(trajectories)

    # Train/test split at the user level to avoid leakage.
    users = sorted({t.user_id for t in trajectories})
    test_users = set(users[:: 5])
    is_test = np.array([t.user_id in test_users for t in trajectories])

    # OSDP strategy: train only on the OsdpRR release of the train fold.
    mech = OsdpRR(policy, epsilon=1.0)
    train_trajs = [t for t, test in zip(trajectories, is_test) if not test]
    released = set(id(t) for t in mech.sample(train_trajs, rng))
    train_mask = np.array(
        [not test and id(t) in released for t, test in zip(trajectories, is_test)]
    )
    model = LogisticRegression(lam=1e-3).fit(X[train_mask], y[train_mask])
    auc = roc_auc(y[is_test], model.decision_function(X[is_test]))
    print(f"  trained on {int(train_mask.sum())} truthfully released trajectories")
    print(f"  resident classification: 1 - AUC = {1 - auc:.3f}")


def ngram_demo(dataset, policy, rng) -> None:
    counter = NGramCounter(n=4, n_aps=dataset.config.n_aps)
    truth = counter.count(dataset.trajectories)
    print(f"  4-gram support: {len(truth)} of {counter.domain_size:.2e} cells")

    # OsdpRR release: count over a truthful sample of non-sensitive data.
    mech = OsdpRR(policy, epsilon=1.0)
    sample = mech.sample(dataset.trajectories, rng)
    osdp_estimate = counter.count(sample)
    osdp_error = sparse_mre(truth, osdp_estimate.counts)

    # DP baseline: truncation k = 1 + Laplace noise on the support.
    truncated = NGramCounter(
        n=4, n_aps=dataset.config.n_aps, truncation=1
    ).count(dataset.trajectories)
    scale = 2.0 / 1.0  # sensitivity 2k / epsilon
    lap_estimate = {
        gram: truncated[gram] + rng.laplace(scale=scale)
        for gram in truth.support()
    }
    lap_error = sparse_mre(truth, lap_estimate)

    print(f"  MRE: OsdpRR {osdp_error:.3f} vs Laplace(T1) {lap_error:.3f}")


def main() -> None:
    rng = np.random.default_rng(21)
    dataset = generate_tippers(TippersConfig(n_users=400, n_days=40, seed=5))
    print(f"generated {len(dataset)} daily trajectories "
          f"({len(dataset.resident_user_ids)} residents of "
          f"{dataset.config.n_users} users)")

    policy = dataset.policy_for_fraction(90)
    frac = policy.sensitive_fraction(dataset.trajectories)
    print(f"policy {policy.name}: sensitive APs {sorted(policy.sensitive_aps)} "
          f"-> {frac:.1%} of trajectories sensitive\n")

    print("[1] classification on truthfully released trajectories")
    classification_demo(dataset, policy, rng)

    print("\n[2] high-dimensional 4-gram mobility histogram")
    ngram_demo(dataset, policy, rng)


if __name__ == "__main__":
    main()
