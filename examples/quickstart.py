"""Quickstart: one-sided differential privacy in five minutes.

A small GDPR-style scenario: a customer table where minors and
opted-out users are sensitive.  We

1. define the policy,
2. release a truthful sample of non-sensitive records with OsdpRR,
3. answer a histogram query with one-sided Laplace noise, and
4. track the privacy budget across both analyses.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import LambdaPolicy
from repro.data.database import Database
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.mechanisms.osdp_rr import OsdpRR
from repro.queries.histogram import HistogramInput, HistogramQuery, IntegerBinning


def build_customer_database(rng: np.random.Generator, n: int = 5000) -> Database:
    """Synthetic customers: age, region, opt-in flag."""
    records = []
    for _ in range(n):
        records.append(
            {
                "age": int(rng.integers(13, 90)),
                "region": int(rng.integers(0, 20)),
                "opt_in": bool(rng.random() < 0.85),
            }
        )
    return Database(records)


def main() -> None:
    rng = np.random.default_rng(7)
    db = build_customer_database(rng)

    # 1. The policy: minors OR opted-out users are sensitive.  Whether a
    #    record is sensitive is itself secret — that is OSDP's novelty.
    policy = LambdaPolicy(
        lambda r: r["age"] <= 17 or not r["opt_in"], name="gdpr"
    )
    sensitive, non_sensitive = policy.partition(db.records)
    print(f"database: {len(db)} records, "
          f"{len(sensitive)} sensitive / {len(non_sensitive)} non-sensitive")

    accountant = PrivacyAccountant(total_epsilon=2.0)

    # 2. Release true records with OsdpRR (Algorithm 1).
    osdp_rr = OsdpRR(policy, epsilon=1.0)
    sample = osdp_rr.sample(db.records, rng, accountant=accountant)
    print(f"\nOsdpRR released {len(sample)} true records "
          f"({100 * len(sample) / len(non_sensitive):.1f}% of non-sensitive; "
          f"expected {100 * osdp_rr.retention_probability:.1f}%)")
    print(f"first three released records: {sample[:3]}")

    # 3. Histogram of customers per region under OSDP vs DP.
    query = HistogramQuery(IntegerBinning("region", 0, 20))
    hist = HistogramInput.from_database(db, query, policy)

    osdp_mech = OsdpLaplaceL1Histogram(epsilon=1.0, policy=policy)
    osdp_estimate = osdp_mech.release(hist, rng)
    osdp_mech.charge(accountant, label="region histogram (OSDP)")

    dp_estimate = LaplaceHistogram(epsilon=1.0).release(hist, rng)

    print("\nregion | true | OSDP est | DP est")
    for region in range(6):
        print(
            f"{region:6d} | {hist.x[region]:4.0f} "
            f"| {osdp_estimate[region]:8.1f} | {dp_estimate[region]:7.1f}"
        )
    osdp_l1 = float(np.abs(osdp_estimate - hist.x).sum())
    dp_l1 = float(np.abs(dp_estimate - hist.x).sum())
    print(f"\nL1 error: OSDP {osdp_l1:.1f} vs DP {dp_l1:.1f} "
          f"(OSDP exploits the {hist.non_sensitive_ratio:.0%} non-sensitive share)")

    # 4. The budget ledger composes per Theorem 3.3.
    print("\n" + accountant.summary())
    print(f"overall guarantee: {accountant.composed_guarantee()}")


if __name__ == "__main__":
    main()
