"""Policy algebra, composition, and budget accounting (§3.3 / §7).

Two organizations analyze the same customer table under different
policies — a legal policy (minors are sensitive) and a consent policy
(opt-outs are sensitive).  Sequential composition of their OSDP
analyses yields a guarantee under the *minimum relaxation* of the two
policies (Theorem 3.3): a record keeps protection only if both policies
protected it.  The strictest combination (sensitive under either
policy) is what a conservative release should use.

Run:  python examples/policy_composition.py
"""

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import OSDPGuarantee, sequential_composition
from repro.core.policy import (
    AttributePolicy,
    OptInPolicy,
    is_relaxation_of,
    minimum_relaxation,
    strictest_combination,
)
from repro.data.database import Database
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import HistogramInput, HistogramQuery, IntegerBinning


def build_database(rng, n=2000) -> Database:
    return Database(
        {
            "age": int(rng.integers(10, 80)),
            "opt_in": bool(rng.random() < 0.8),
            "spend_bucket": int(rng.integers(0, 10)),
        }
        for _ in range(n)
    )


def main() -> None:
    rng = np.random.default_rng(4)
    db = build_database(rng)

    legal = AttributePolicy("age", lambda a: a <= 17, name="minors")
    consent = OptInPolicy(name="opt-in")

    for policy in (legal, consent):
        frac = policy.sensitive_fraction(db.records)
        print(f"policy {policy.name:8s}: {frac:.1%} of records sensitive")

    # The relaxation order (Definition 3.5), checked over the records.
    combined = strictest_combination(legal, consent)
    relaxed = minimum_relaxation(legal, consent)
    print(f"\nstrictest combination sensitive share: "
          f"{combined.sensitive_fraction(db.records):.1%}")
    print(f"minimum relaxation sensitive share:    "
          f"{relaxed.sensitive_fraction(db.records):.1%}")
    assert is_relaxation_of(legal, combined, db.records)
    assert is_relaxation_of(relaxed, legal, db.records)
    print("verified: each input policy relaxes the strictest combination,")
    print("and the minimum relaxation relaxes each input policy.\n")

    # Two analyses, one budget: composition lands on P_mr (Theorem 3.3).
    query = HistogramQuery(IntegerBinning("spend_bucket", 0, 10))
    accountant = PrivacyAccountant(total_epsilon=1.0)

    hist_legal = HistogramInput.from_database(db, query, legal)
    mech_legal = OsdpLaplaceL1Histogram(epsilon=0.5, policy=legal)
    mech_legal.release(hist_legal, rng)
    mech_legal.charge(accountant, label="spend histogram (legal policy)")

    hist_consent = HistogramInput.from_database(db, query, consent)
    mech_consent = OsdpLaplaceL1Histogram(epsilon=0.5, policy=consent)
    mech_consent.release(hist_consent, rng)
    mech_consent.charge(accountant, label="spend histogram (consent policy)")

    print(accountant.summary())
    composed = accountant.composed_guarantee()
    print(f"\ncomposed guarantee: {composed}")

    # The composed policy protects only records sensitive under BOTH
    # policies — e.g. an opted-out minor.
    examples = [
        {"age": 15, "opt_in": False, "spend_bucket": 0},  # both sensitive
        {"age": 15, "opt_in": True, "spend_bucket": 0},   # legal only
        {"age": 40, "opt_in": True, "spend_bucket": 0},   # neither
    ]
    manual = sequential_composition(
        [
            OSDPGuarantee(policy=legal, epsilon=0.5),
            OSDPGuarantee(policy=consent, epsilon=0.5),
        ]
    )
    print("\nprotection under the composed (minimum-relaxation) policy:")
    for record in examples:
        status = "sensitive" if manual.policy.is_sensitive(record) else "released"
        print(f"  age={record['age']:2d} opt_in={record['opt_in']!s:5s} -> {status}")
    print("\nlesson: composing analyses under different policies weakens the")
    print("effective policy to their minimum relaxation; use the strictest")
    print("combination up front when both constraints must hold.")


if __name__ == "__main__":
    main()
