"""One client, many backends: the public service API of the reproduction.

The paper's deployment story (Section 1's curator/analyst split) as a
protocol-first Python surface:

* :class:`OsdpClient` — the single entry point: ``release`` /
  ``release_batch`` / ``true_histogram`` plus live-data updates.
* :class:`Backend` — the substrate protocol, with
  :class:`InProcessBackend`, :class:`ShardedBackend` (optionally on
  the shard-resident worker pool) and :class:`RemoteBackend` (socket
  client for :class:`repro.service.rpc.RpcServer`).
* :mod:`repro.api.wire` — the canonical JSON / length-prefixed-frame
  wire format of :class:`~repro.service.server.ReleaseRequest` and
  :class:`~repro.service.server.ReleaseResponse`.

See ``docs/API.md`` for the full reference and deployment sketch.
"""

from repro.api.backends import (
    Backend,
    InProcessBackend,
    RemoteBackend,
    ShardedBackend,
)
from repro.api.client import OsdpClient
from repro.service.server import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
)

__all__ = [
    "Backend",
    "BatchBudgetExceededError",
    "InProcessBackend",
    "OsdpClient",
    "ReleaseRequest",
    "ReleaseResponse",
    "RemoteBackend",
    "ShardedBackend",
]
