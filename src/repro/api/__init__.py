"""One client, many backends: the public service API of the reproduction.

The paper's deployment story (Section 1's curator/analyst split) as a
protocol-first Python surface:

* :class:`OsdpClient` — the single entry point: ``release`` /
  ``release_batch`` / ``true_histogram`` plus live-data updates.
* :class:`Backend` — the substrate protocol, with
  :class:`InProcessBackend`, :class:`ShardedBackend` (optionally on
  the shard-resident worker pool), :class:`RemoteBackend` (socket
  client for :class:`repro.service.rpc.RpcServer`) and
  :class:`ClusterBackend` (replicated shard-range fleet with
  failover; see :mod:`repro.api.cluster` and ``docs/OPERATIONS.md``).
* :mod:`repro.api.resilience` — retry/backoff/deadline, circuit
  breaker and endpoint-health primitives the remote tiers build on.
* :mod:`repro.api.wire` — the canonical JSON / length-prefixed-frame
  wire format of :class:`~repro.service.server.ReleaseRequest` and
  :class:`~repro.service.server.ReleaseResponse`.

See ``docs/API.md`` for the full reference and deployment sketch.
"""

from repro.api.backends import (
    Backend,
    InProcessBackend,
    RemoteBackend,
    ShardedBackend,
)
from repro.api.client import OsdpClient
from repro.api.cluster import (
    ClusterBackend,
    ClusterEndpoint,
    ClusterWriteError,
    PartialClusterError,
)
from repro.api.resilience import (
    DeadlineExceeded,
    RetryPolicy,
    ServerOverloaded,
)
from repro.service.server import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
)

__all__ = [
    "Backend",
    "BatchBudgetExceededError",
    "ClusterBackend",
    "ClusterEndpoint",
    "ClusterWriteError",
    "DeadlineExceeded",
    "InProcessBackend",
    "OsdpClient",
    "PartialClusterError",
    "ReleaseRequest",
    "ReleaseResponse",
    "RemoteBackend",
    "RetryPolicy",
    "ServerOverloaded",
    "ShardedBackend",
]
