"""The three execution substrates behind :class:`repro.api.OsdpClient`.

The :class:`Backend` protocol is the seam that makes "where does the
release run" a deployment decision instead of a call-site decision:

* :class:`InProcessBackend` — one plain
  :class:`repro.data.columnar.ColumnarDatabase`, everything in the
  caller's process.  The notebook / unit-test substrate.
* :class:`ShardedBackend` — a
  :class:`repro.data.sharding.ShardedColumnarDatabase` behind the
  caching :class:`repro.service.server.ReleaseServer`, optionally with
  a shard-resident :class:`repro.data.workers.ShardWorkerPool` (one
  process per shard, specs on the pipes, failover/respawn on worker
  death).  The single-machine curator substrate.
* :class:`RemoteBackend` — a socket client speaking the
  :mod:`repro.api.wire` framing to a :class:`repro.service.rpc.RpcServer`
  on another process or machine.  The analyst substrate.

All three answer the same five questions (release one, release a
batch, true histogram, append, expire) with **bit-identical** results
for the same request and seed — the backends differ in *where* the
histogram pipeline runs, never in *what* it computes.
"""

from __future__ import annotations

import threading
import uuid
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.api.resilience import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    ServerOverloaded,
    call_with_retries,
)
from repro.service.server import (
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
)

#: Default connect behavior: a handful of quick retries so a client
#: starting up in a race against ``repro.cli serve`` does not fail on
#: one spurious ECONNREFUSED.  Pass ``connect_retry=None`` to fail on
#: the first refusal (the fail-fast mode the cluster tier uses).
DEFAULT_CONNECT_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.05, multiplier=2.0, max_delay=0.5
)

_UNSET = object()


@runtime_checkable
class Backend(Protocol):
    """What a release substrate must answer; see the module docstring."""

    def handle(self, request: ReleaseRequest) -> ReleaseResponse: ...

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]: ...

    def true_histogram(self, binning) -> np.ndarray: ...

    def append_records(self, records) -> int: ...

    def expire_prefix(self, n_records: int) -> list[int]: ...

    def close(self) -> None: ...


class _ServerBackend:
    """Shared plumbing of the two library-side backends.

    Both own a transport-independent :class:`ReleaseServer`; they
    differ only in how the database under it was assembled (and
    whether a worker pool must be torn down on close).
    """

    def __init__(self, server: ReleaseServer):
        self.server = server

    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        return self.server.handle(request)

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        return self.server.handle_batch(requests)

    def true_histogram(self, binning) -> np.ndarray:
        return self.server.true_histogram(binning)

    def histogram_counts(self, binning, policy) -> tuple[np.ndarray, np.ndarray]:
        return self.server.histogram_counts(binning, policy)

    def append_records(self, records) -> int:
        return self.server.append_records(records)

    def expire_prefix(self, n_records: int) -> list[int]:
        return self.server.expire_prefix(n_records)

    def stats(self) -> dict:
        return self.server.stats.as_dict()

    @property
    def budget_remaining(self) -> float | None:
        return self.server.budget_remaining

    def budget(self) -> dict | None:
        """The full ledger view (None when unmetered)."""
        return self.server.budget_view()

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessBackend(_ServerBackend):
    """A plain single-shard columnar database in the caller's process."""

    def __init__(
        self,
        db,
        registry=None,
        accountant=None,
        cache_limit: int = 128,
    ):
        super().__init__(
            ReleaseServer(
                db,
                registry=registry,
                accountant=accountant,
                n_shards=1,
                cache_limit=cache_limit,
            )
        )


class ShardedBackend(_ServerBackend):
    """The sharded engine, optionally on a shard-resident worker pool.

    ``workers=True`` builds a :class:`ShardWorkerPool` over the shards
    and installs it as the executor — columns ship to the worker
    processes once, requests cross as specs, and a killed worker is
    respawned from the parent's shard copy (the request degrades to a
    recompute, not a crash).  The backend owns the pool: ``close()``
    stops the processes.
    """

    def __init__(
        self,
        db,
        n_shards: int | None = None,
        workers: bool = False,
        executor=None,
        registry=None,
        accountant=None,
        cache_limit: int = 128,
        mp_context: str | None = None,
        shm: bool | None = None,
    ):
        from repro.data.columnar import ColumnarDatabase
        from repro.data.sharding import ShardedColumnarDatabase

        if workers and executor is not None:
            raise ValueError("pass workers=True or an executor, not both")
        if shm is not None and not workers:
            raise ValueError(
                "shm backing only applies to the worker pool; pass "
                "workers=True (or drop shm=)"
            )
        if not isinstance(db, ShardedColumnarDatabase):
            if not isinstance(db, ColumnarDatabase):
                db = ColumnarDatabase.from_database(db)
            db = db.shard(n_shards or _default_shards())
        elif n_shards is not None and n_shards != db.n_shards:
            raise ValueError(
                f"database already has {db.n_shards} shards; "
                f"cannot reshard to {n_shards}"
            )
        self.pool = None
        self._shared_stores: list = []
        if workers:
            from repro.data.workers import ShardWorkerPool, shard_shm_eligible

            # Share eligible shards *before* building the pool (the
            # same per-shard eligibility rule the pool applies): the
            # parent-side engine then reads the exact segments the
            # workers attach — one physical copy — instead of keeping
            # heap originals next to pool-placed shm copies.  The
            # backend owns these stores; close() unlinks them.
            shared_shards = []
            for shard in db.shards:
                if shard_shm_eligible(shard, shm) and shard.store is None:
                    shard = shard.share()
                    # only stores created *here* are the backend's to
                    # unlink — shards that arrived shm-backed belong to
                    # their creator
                    self._shared_stores.append(shard.store)
                shared_shards.append(shard)
            if self._shared_stores:
                db = ShardedColumnarDatabase(shared_shards)
            self.pool = ShardWorkerPool(
                db.shards, mp_context=mp_context, shm=shm
            )
            executor = self.pool
        super().__init__(
            ReleaseServer(
                db,
                registry=registry,
                accountant=accountant,
                executor=executor,
                cache_limit=cache_limit,
            )
        )

    @property
    def store_mode(self) -> str:
        """How the columns reach the release path — the operator-facing
        answer to "which storage path is live?".

        ``"shm"``: every worker attached shared-memory segments
        (zero-copy, one physical copy); ``"pickle"``: at least one
        shard shipped as a pickled copy; ``"heap"``: no worker pool,
        the engine reads this process's arrays directly.
        """
        if self.pool is None:
            return "heap"
        stats = self.pool.stats
        return "shm" if stats.shm_shards == self.pool.n_workers else "pickle"

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
        for store in self._shared_stores:
            store.unlink()
        self._shared_stores = []


def _default_shards() -> int:
    import os

    return max(1, min(8, os.cpu_count() or 1))


class RemoteBackend:
    """A release service on the other end of a socket.

    Speaks the :mod:`repro.api.wire` framing to a
    :class:`repro.service.rpc.RpcServer`.  Each *thread* gets its own
    connection, opened lazily on its first call, so one backend (or the
    :class:`~repro.api.OsdpClient` above it) shared across analyst
    threads issues truly concurrent requests — the server's
    readers-writer discipline serves them in parallel instead of
    queueing them behind a single stream.  Server-side failures
    re-raise faithfully — including
    :class:`repro.service.server.BatchBudgetExceededError` with its
    charged prefix of responses.  A mid-exchange transport failure
    (timeout, reset, truncated frame) leaves a stream unsynchronized,
    so it poisons the whole backend: every subsequent call raises
    rather than risk pairing a reply with the wrong request.

    ``connect_retry`` (on by default) retries the initial TCP connect
    with backoff, so client startup racing a ``repro.cli serve`` does
    not fail on one refused connection.  ``retry`` (off by default)
    upgrades *exchanges*: on a transport failure the thread's socket is
    dropped and the call re-sent on a fresh connection under the
    policy's backoff/deadline, instead of poisoning the backend.
    Every retried effectful op (release, batch, append, expire)
    carries a stable ``req_id``, and the server's idempotent-reply
    cache guarantees a retry after an *ambiguous* failure (request
    executed, reply lost) re-serves the cached response — the
    accountant is charged exactly once no matter how many resends it
    takes.

    :class:`~repro.api.resilience.ServerOverloaded` — an admission-gate
    refusal from a flooded server — is also retried under ``retry``,
    but *without* dropping the socket (the exchange completed cleanly;
    nothing ran and nothing was charged), and the backoff is floored
    at the server's ``retry_after`` hint.

    ``analyst`` stamps every request message's header with a
    credential: the server books each charge under it and enforces the
    analyst's quota when one is declared (a request carrying its own
    ``analyst`` field wins over the header).
    """

    #: Ops that must not run twice across a retry — they charge the
    #: accountant or mutate data — so their resends carry a stable
    #: idempotency key.
    _EFFECTFUL_OPS = frozenset(
        {
            "release",
            "release_batch",
            "append_records",
            "expire_prefix",
            "ingest",
            "flush",
        }
    )

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        connect_retry: RetryPolicy | None = _UNSET,  # type: ignore[assignment]
        retry_rng=None,
        analyst: str | None = None,
    ):
        self.address = (host, port)
        self._timeout = timeout
        self._retry = retry
        self._analyst = str(analyst) if analyst else None
        # A seeded random.Random here makes every backoff jitter draw
        # (connect and exchange retries) deterministic — the fault
        # tests' replayability hook.  None keeps the module-level rng.
        self._retry_rng = retry_rng
        self._connect_retry = (
            DEFAULT_CONNECT_RETRY if connect_retry is _UNSET else connect_retry
        )
        self._local = threading.local()
        self._registry_lock = threading.Lock()
        self._socks: list = []
        self._closed = False
        # Open the constructing thread's connection eagerly so a bad
        # address fails here, not at the first release.
        self._local.sock = self._connect()

    def _open_socket(self):
        from repro.service.rpc import connect

        if self._connect_retry is None:
            return connect(*self.address, timeout=self._timeout)
        return call_with_retries(
            lambda: connect(*self.address, timeout=self._timeout),
            self._connect_retry,
            retryable=(OSError,),
            rng=self._retry_rng,
            describe=f"connect to {self.address[0]}:{self.address[1]}",
        )

    def _connect(self):
        import threading as _threading

        sock = self._open_socket()
        with self._registry_lock:
            if self._closed:
                sock.close()
                raise ConnectionError(
                    "rpc connection is closed or broken; open a new "
                    "RemoteBackend"
                )
            # Prune connections whose threads are gone, so a long-lived
            # backend driven from short-lived threads holds one socket
            # per *live* thread, not per thread ever seen.
            live, dead = [], []
            for thread, old in self._socks:
                (live if thread.is_alive() else dead).append((thread, old))
            self._socks = live
            self._socks.append((_threading.current_thread(), sock))
        for _, old in dead:
            _close_socket(old)
        return sock

    def _thread_sock(self):
        if self._closed:
            raise ConnectionError(
                "rpc connection is closed or broken; open a new "
                "RemoteBackend"
            )
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = self._local.sock = self._connect()
        return sock

    def _invalidate_thread_sock(self) -> None:
        """Drop only the calling thread's socket (the retry path).

        Unlike :meth:`close`, other threads' healthy connections keep
        serving; this thread reconnects on its next exchange.
        """
        import threading as _threading

        sock = getattr(self._local, "sock", None)
        self._local.sock = None
        if sock is None:
            return
        me = _threading.current_thread()
        with self._registry_lock:
            self._socks = [
                (thread, s)
                for thread, s in self._socks
                if not (thread is me and s is sock)
            ]
        _close_socket(sock)

    # ------------------------------------------------------------------
    # One exchange
    # ------------------------------------------------------------------
    def _call(self, op: str, **payload):
        message = {"op": op, **payload}
        if self._analyst is not None:
            message["analyst"] = self._analyst
        if self._retry is None:
            return self._exchange_poisoning(message)
        return self._exchange_with_retries(message)

    def _exchange_once(self, message):
        from repro.api.wire import (
            exception_from_wire,
            recv_message,
            send_message,
        )

        sock = self._thread_sock()
        send_message(sock, message)
        reply = recv_message(sock)
        if not isinstance(reply, dict) or ("ok" not in reply) == (
            "err" not in reply
        ):
            raise RuntimeError(f"malformed rpc reply: {reply!r}")
        if "err" in reply:
            raise exception_from_wire(reply["err"])
        return reply["ok"]

    def _exchange_poisoning(self, message):
        try:
            return self._exchange_once(message)
        except (OSError, EOFError) as exc:
            # A mid-exchange failure desynchronizes the stream — the
            # server's eventual reply would pair with the *next*
            # request.  The backend dies with the exchange, never to
            # be reused (close() tears down every thread's socket).
            self.close()
            raise ConnectionError(
                f"rpc exchange failed mid-flight ({exc}); the "
                "connection has been closed"
            ) from exc

    def _exchange_with_retries(self, message):
        from repro.api.wire import WireError

        policy = self._retry
        if message["op"] in self._EFFECTFUL_OPS:
            # A stable id across every resend of this logical request:
            # the server runs the op once and replays the cached reply.
            message = {**message, "req_id": uuid.uuid4().hex}
        deadline = Deadline(policy.deadline)
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if deadline.expired():
                break
            remaining = deadline.remaining()
            if remaining is not None:
                message["deadline"] = remaining
            try:
                return self._exchange_once(message)
            except ServerOverloaded as exc:
                # An admission-gate refusal: the exchange completed
                # cleanly (framed request, framed error reply), so the
                # stream is still synchronized — keep the socket and
                # just back off, floored at the server's hint.
                last = exc
                if attempt + 1 >= policy.max_attempts:
                    break
                pause = policy.delay(attempt, rng=self._retry_rng)
                if exc.retry_after is not None:
                    pause = max(pause, float(exc.retry_after))
                if remaining is not None:
                    pause = min(pause, deadline.remaining() or 0.0)
                if pause > 0:
                    import time as _time

                    _time.sleep(pause)
            except (OSError, EOFError, WireError) as exc:
                # This thread's stream is unsynchronized; drop it and
                # retry on a fresh connection (other threads' sockets
                # stay live).
                last = exc
                self._invalidate_thread_sock()
                if self._closed or attempt + 1 >= policy.max_attempts:
                    break
                pause = policy.delay(attempt, rng=self._retry_rng)
                if remaining is not None:
                    pause = min(pause, deadline.remaining() or 0.0)
                if pause > 0:
                    import time as _time

                    _time.sleep(pause)
        if deadline.expired():
            raise DeadlineExceeded(
                f"rpc {message['op']!r} to {self.address[0]}:"
                f"{self.address[1]} exceeded its {policy.deadline}s deadline"
            ) from last
        assert last is not None
        if isinstance(last, ServerOverloaded):
            # The backend is healthy — the server is just full.  Leave
            # every connection open so the caller can retry later.
            raise last
        self.close()
        raise ConnectionError(
            f"rpc {message['op']!r} failed after {policy.max_attempts} "
            f"attempts ({last}); the connection has been closed"
        ) from last

    # ------------------------------------------------------------------
    # The Backend surface
    # ------------------------------------------------------------------
    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        from repro.api.wire import request_to_wire, response_from_wire

        doc = self._call("release", request=request_to_wire(request))
        return response_from_wire(doc)

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        from repro.api.wire import request_to_wire, response_from_wire

        docs = self._call(
            "release_batch",
            requests=[request_to_wire(r) for r in requests],
        )
        return [response_from_wire(doc) for doc in docs]

    def true_histogram(self, binning) -> np.ndarray:
        from repro.queries.histogram import binning_to_spec

        spec = (
            dict(binning)
            if isinstance(binning, Mapping)
            else binning_to_spec(binning)
        )
        return np.asarray(self._call("true_histogram", binning=spec))

    def histogram_counts(self, binning, policy) -> tuple[np.ndarray, np.ndarray]:
        """This endpoint's merged ``(x, x_ns)`` pair — the cluster's
        merge input (see :mod:`repro.api.cluster`)."""
        from repro.core.policy_language import policy_to_spec
        from repro.queries.histogram import binning_to_spec

        bspec = (
            dict(binning)
            if isinstance(binning, Mapping)
            else binning_to_spec(binning)
        )
        pspec = (
            dict(policy)
            if isinstance(policy, Mapping)
            else policy_to_spec(policy)
        )
        doc = self._call("hist_counts", binning=bspec, policy=pspec)
        return np.asarray(doc["x"]), np.asarray(doc["x_ns"])

    def append_records(self, records) -> int:
        return int(self._call("append_records", **_append_payload(records)))

    def expire_prefix(self, n_records: int) -> list[int]:
        return [
            int(i) for i in self._call("expire_prefix", n_records=n_records)
        ]

    # ------------------------------------------------------------------
    # Server-side group-commit ingest
    # ------------------------------------------------------------------
    def ingest(self, records) -> dict:
        """Stage an append batch in the server's group-commit buffer.

        The batch is validated and held server-side but **not** logged:
        it becomes durable only when a flush acks (:meth:`flush_ingest`,
        or the server's own ``ingest_flush_events`` watermark —
        ``flushed: true`` in the reply means this call's flush covered
        it).  ``accepted: false`` is backpressure: the buffer is full;
        flush (or wait) and resend.
        """
        return dict(self._call("ingest", **_append_payload(records)))

    def flush_ingest(self) -> dict:
        """Group-commit every staged batch as one WAL-logged write."""
        return dict(self._call("flush"))

    def ingest_status(self) -> dict:
        return dict(self._call("ingest_status"))

    # ------------------------------------------------------------------
    # The cluster commit protocol (coordinator side)
    # ------------------------------------------------------------------
    def prepare_write(self, write_id: str, wop: str, payload: dict) -> dict:
        """Stage a replicated write on this endpoint (phase one).

        The ``req_id`` derives from the write id, so a resent prepare
        for the same write rides the server's idempotent-reply cache
        instead of staging twice.
        """
        return self._call(
            "prepare_write",
            write_id=write_id,
            wop=wop,
            req_id=f"{write_id}:prepare",
            **payload,
        )

    def commit_write(self, write_id: str) -> dict:
        """Apply a staged write (phase two); retries replay, not re-run."""
        return self._call(
            "commit_write", write_id=write_id, req_id=f"{write_id}:commit"
        )

    def wal_status(self) -> dict:
        return self._call("wal_status")

    def sync_range(self, from_seq: int) -> dict:
        return self._call("sync_range", from_seq=int(from_seq))

    def sync_apply(self, base=None, entries=()) -> dict:
        return self._call("sync_apply", base=base, entries=list(entries))

    # ------------------------------------------------------------------
    # Remote introspection
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._call("ping")

    def mechanisms(self) -> list[str]:
        return list(self._call("mechanisms"))

    def stats(self) -> dict:
        return self._call("stats")

    def transport_stats(self) -> dict:
        return self._call("transport_stats")

    def budget(self) -> dict | None:
        """The server's full ledger view (None when unmetered)."""
        doc = self._call("budget")
        return dict(doc) if isinstance(doc, Mapping) else doc

    @property
    def budget_remaining(self) -> float | None:
        doc = self._call("budget")
        if doc is None:
            return None
        if isinstance(doc, Mapping):
            remaining = doc.get("remaining")
            return None if remaining is None else float(remaining)
        # Pre-ledger-view servers replied with the bare remaining float.
        return float(doc)

    def close(self) -> None:
        """Tear down every thread's connection (idempotent).

        Sockets are ``shutdown()`` before ``close()``: shutdown wakes a
        thread blocked in ``recv`` on that socket (a bare close of the
        fd would not on Linux), so a mid-exchange failure in one thread
        cannot leave another hanging forever — it surfaces there as a
        transport error and the usual poisoned-backend ConnectionError.
        """
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            socks, self._socks = self._socks, []
        for _, sock in socks:
            _close_socket(sock)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_socket(sock) -> None:
    """Shutdown-then-close: wakes any thread blocked in recv on it."""
    import socket as _socket

    try:
        sock.shutdown(_socket.SHUT_RDWR)
    except OSError:
        pass  # already disconnected
    try:
        sock.close()
    except OSError:  # pragma: no cover - platform-dependent
        pass


def _append_payload(records) -> dict:
    """Render an append for the wire: columns when columnar, else rows."""
    from repro.data.columnar import ColumnarDatabase

    if isinstance(records, ColumnarDatabase):
        columns = {}
        for name in records.column_names:
            column = np.asarray(records[name])
            if column.dtype.hasobject:
                return {"records": [dict(r) for r in records.iter_records()]}
            columns[name] = column
        return {"columns": columns}
    return {"records": [dict(r) for r in records]}
