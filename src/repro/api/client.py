"""The one client every caller talks to, whatever runs underneath.

Before this layer, a caller had to pick among ``ColumnarDatabase``,
``ShardedColumnarDatabase``, ``ShardWorkerPool`` and ``ReleaseServer``
by hand and then choose the right of four per-mechanism entry points.
:class:`OsdpClient` replaces all of that with the paper's deployment
shape — a curator serving releases to analysts — behind one surface::

    from repro.api import OsdpClient
    from repro.queries.histogram import IntegerBinning

    with OsdpClient.in_process(db) as client:       # or .sharded / .connect
        response = client.release(
            mechanism="osdp_laplace_l1",
            epsilon=0.5,
            binning=IntegerBinning("age", 0, 100, 10),
            policy={"attr": "age", "op": "<=", "value": 17},
            seed=7,
        )
    response.estimates        # (n_trials, n_bins)

The same call works against every backend, and for the same request
and seed returns **bit-identical** estimates — swapping a notebook's
in-process backend for a production socket is a one-line change that
cannot alter results.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.api.backends import (
    Backend,
    InProcessBackend,
    RemoteBackend,
    ShardedBackend,
)
from repro.service.server import ReleaseRequest, ReleaseResponse


class OsdpClient:
    """Issue release requests against any :class:`~repro.api.Backend`.

    ``analyst`` names the caller: every request this client sends that
    does not already carry an ``analyst`` field is stamped with it, so
    a quota-enforcing accountant books the charge against this
    analyst's sub-budget (see
    :class:`repro.core.accountant.PrivacyAccountant`).
    """

    def __init__(self, backend: Backend, analyst: str | None = None):
        self._backend = backend
        self._analyst = str(analyst) if analyst else None

    # ------------------------------------------------------------------
    # Constructors, one per substrate
    # ------------------------------------------------------------------
    @classmethod
    def in_process(cls, db, *, analyst=None, **kwargs) -> "OsdpClient":
        """A client over the caller's own process (plain columnar db)."""
        return cls(InProcessBackend(db, **kwargs), analyst=analyst)

    @classmethod
    def sharded(cls, db, *, analyst=None, **kwargs) -> "OsdpClient":
        """A client over the sharded engine (``workers=True`` for the
        shard-resident process pool with failover)."""
        return cls(ShardedBackend(db, **kwargs), analyst=analyst)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = None,
        *,
        analyst=None,
        **kwargs,
    ) -> "OsdpClient":
        """A client over a live :class:`repro.service.rpc.RpcServer`.

        Extra keywords reach :class:`RemoteBackend` — e.g.
        ``retry=RetryPolicy(...)`` for transparent resend-with-
        idempotency after transport failures.  ``analyst`` is passed to
        the backend too, so even ops built outside this client (raw
        backend calls) carry the credential.
        """
        return cls(
            RemoteBackend(
                host, port, timeout=timeout, analyst=analyst, **kwargs
            ),
            analyst=analyst,
        )

    @classmethod
    def cluster(cls, endpoints, *, analyst=None, **kwargs) -> "OsdpClient":
        """A client over a replicated endpoint fleet (read path only).

        ``endpoints`` is a sequence of
        :class:`repro.api.cluster.ClusterEndpoint`; keywords reach
        :class:`~repro.api.cluster.ClusterBackend` (``accountant=``,
        ``retry=``, ``health_interval=``, ...).  Noise is sampled once
        at this coordinator, so responses are bit-identical to a
        single server holding all the shards.
        """
        from repro.api.cluster import ClusterBackend

        return cls(ClusterBackend(endpoints, **kwargs), analyst=analyst)

    @property
    def backend(self) -> Backend:
        return self._backend

    # ------------------------------------------------------------------
    # The release surface
    # ------------------------------------------------------------------
    def release(
        self,
        request: ReleaseRequest | None = None,
        *,
        mechanism: str | None = None,
        epsilon: float | None = None,
        binning=None,
        policy=None,
        n_trials: int = 1,
        seed: int | None = None,
        label: str = "",
        analyst: str = "",
    ) -> ReleaseResponse:
        """Serve one release request.

        Pass a ready :class:`ReleaseRequest`, or its fields as keywords
        (``binning``/``policy`` may be live objects or wire specs).
        """
        if request is None:
            if mechanism is None or epsilon is None or binning is None:
                raise ValueError(
                    "pass a ReleaseRequest or at least mechanism, epsilon "
                    "and binning"
                )
            request = ReleaseRequest(
                mechanism=mechanism,
                epsilon=epsilon,
                binning=binning,
                policy=policy,
                n_trials=n_trials,
                seed=seed,
                label=label,
                analyst=analyst,
            )
        elif (
            mechanism is not None
            or epsilon is not None
            or binning is not None
            or policy is not None
            or n_trials != 1
            or seed is not None
            or label != ""
            or analyst != ""
        ):
            # Every keyword must be rejected, not just the required
            # trio — silently ignoring e.g. seed= next to a request
            # would hand back a non-reproducible release.
            raise ValueError(
                "pass either a ReleaseRequest or keyword fields, not both"
            )
        return self._backend.handle(self._stamp(request))

    def release_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        """Serve a traffic batch in order (see ``ReleaseServer.handle_batch``);
        a mid-batch budget overrun raises
        :class:`repro.service.server.BatchBudgetExceededError` carrying
        the already-charged prefix — on every backend, including over a
        socket."""
        return self._backend.handle_batch(
            [self._stamp(r) for r in requests]
        )

    def _stamp(self, request: ReleaseRequest) -> ReleaseRequest:
        """Fill in this client's analyst on requests that carry none."""
        if self._analyst is None or request.analyst:
            return request
        return dataclasses.replace(request, analyst=self._analyst)

    def true_histogram(self, binning) -> np.ndarray:
        """The exact (non-private) histogram — the curator's audit path."""
        return self._backend.true_histogram(binning)

    def budget(self) -> dict | None:
        """The backend's full ledger view (None when unmetered).

        The view carries ``total``/``spent``/``remaining``, per-entry
        ``label``/``epsilon``/``policy``/``analyst`` rows, and any
        per-analyst ``quotas`` — see
        :meth:`repro.core.accountant.PrivacyAccountant.view`.
        """
        getter = getattr(self._backend, "budget", None)
        if getter is None:
            return None
        return getter()

    # ------------------------------------------------------------------
    # Live data
    # ------------------------------------------------------------------
    def append_records(self, records) -> int:
        """Ingest new records; returns the tail shard index."""
        return self._backend.append_records(records)

    def expire_prefix(self, n_records: int) -> list[int]:
        """Drop the ``n_records`` oldest records; returns touched shards."""
        return self._backend.expire_prefix(n_records)

    def open_stream(self, **kwargs) -> "StreamingPipeline":
        """The streaming ingestion tier over this client.

        Returns a :class:`repro.ingest.pipeline.StreamingPipeline`:
        events group-commit through the buffer, a sliding ``window``
        drives retention, and a ``release`` schedule publishes
        periodic private histograms — see that module for keywords.
        The pipeline borrows this client; closing the pipeline flushes
        but does not close the client.
        """
        from repro.ingest.pipeline import StreamingPipeline

        return StreamingPipeline(self, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "OsdpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
