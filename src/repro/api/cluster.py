"""Fault-tolerant multi-endpoint serving: one client, N curators.

The single :class:`repro.service.rpc.RpcServer` owning every shard is
the scale-out blocker ROADMAP item 1 names: one process is both the
whole serving capacity and a single point of failure.  This module
splits the data plane across N ``repro.cli serve`` endpoints — each
owning a contiguous **shard range**, each range served by one or more
**replicas** — and keeps the trust plane (noise sampling, budget
accounting) in one place, the coordinator:

* Each release resolves to one ``hist_counts`` call per shard range:
  the endpoint answers with its merged ``(x, x_ns)`` int64 pair.
* The coordinator sums the per-range pairs —
  :meth:`repro.queries.histogram.HistogramInput.from_shard_counts`,
  the exact integer merge the in-process path performs over local
  shards — and samples noise **once** at the merge tier.  Integer
  addition is associative, so for the same request and seed a
  clustered release is **bit-identical** to a single server holding
  all the shards; the accountant (the coordinator's) is charged
  exactly once per release, just as in-process.
* When an endpoint fails mid-call (refused, reset, truncated frame,
  killed process), its range is re-served from a replica: failures
  demote the endpoint in the :class:`repro.api.resilience.HealthMonitor`
  state machine (healthy → suspect → dead), a per-endpoint
  :class:`~repro.api.resilience.CircuitBreaker` stops paying connect
  timeouts to an endpoint that keeps failing, and an optional
  background health-check thread pings demoted endpoints back into
  rotation.  A range with **no** reachable replica degrades to an
  explicit :class:`PartialClusterError` — carrying any already-charged
  responses — never a hang.

Writes are replicated with a durable commit protocol:
``append_records`` routes to the tail shard range and
``expire_prefix`` walks ranges head-first (ranges follow the
endpoints' listing order, which must match data order), each write
running **two-phase** against the owning range's replicas — prepare
(stage + validate) on every live replica, then commit (WAL-log,
fsync, apply) under a stable ``write_id`` whose derived ``req_id``
keys make every resend an idempotent replay, so a retry after a
truncated ack applies exactly once.  A replica that misses a commit
is marked **stale**, excluded from read rotation, and resynced from a
healthy peer by sequence-number catch-up (``sync_range`` /
``sync_apply``, with a chain digest guarding against silent
divergence) before rejoining — reads stay bit-identical to a single
server across any interleaving of writes, kills, and retries.  See
``docs/OPERATIONS.md`` for topology, the write-path state machine,
and failure-mode reference.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.api.backends import RemoteBackend, _append_payload
from repro.api.resilience import (
    CircuitBreaker,
    Deadline,
    HealthMonitor,
    RetryPolicy,
)
from repro.api.wire import RemoteError, WireError, dumps
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy_language import policy_to_spec
from repro.queries.histogram import HistogramInput, binning_to_spec
from repro.service.server import (
    BatchBudgetExceededError,
    MechanismRegistry,
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
    default_registry,
)

#: Errors that mean "this endpoint, not this request": the range fails
#: over to a replica.  Application errors (bad spec, unknown mechanism,
#: budget) propagate — they would fail identically everywhere.
FAILOVER_ERRORS = (ConnectionError, OSError, EOFError, WireError, RemoteError)

#: Default range-level sweep retry: each attempt tries every candidate
#: replica once (health-ranked), with backoff between sweeps.
DEFAULT_CLUSTER_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=0.5
)


@dataclass(frozen=True)
class ClusterEndpoint:
    """One ``repro.cli serve`` process in the topology.

    ``shard_range`` is the label of the data slice this endpoint owns —
    any hashable (a ``(lo, hi)`` tuple, a string); endpoints sharing a
    label are replicas of each other and **must** serve identical data
    (the bit-identity contract is theirs to keep).
    """

    host: str
    port: int
    shard_range: object = 0
    name: str = ""

    @property
    def key(self) -> str:
        """The endpoint's identity in health/breaker bookkeeping."""
        return self.name or f"{self.host}:{self.port}"


class PartialClusterError(RuntimeError):
    """A shard range had no serving replica; the request degraded.

    ``shard_range`` names the unserved range, ``responses`` holds any
    already-produced (and already-charged) batch prefix — charged
    noise is never silently discarded, mirroring
    :class:`~repro.service.server.BatchBudgetExceededError` — and
    ``failed_request`` is the request that could not be completed.
    """

    def __init__(
        self, message: str, shard_range, responses=(), failed_request=None
    ):
        super().__init__(message)
        self.shard_range = shard_range
        self.responses = list(responses)
        self.failed_request = failed_request


class ClusterWriteError(RuntimeError):
    """A replicated write could not reach its shard range.

    ``ambiguous`` is the retry contract: ``False`` means no replica
    logged the write (retrying is plainly safe); ``True`` means some
    replica *may* have logged it before failing — those replicas are
    already marked stale, so a retry (under a fresh ``write_id``)
    lands only on clean peers and the stale ones are overwritten by
    resync, keeping the cluster exactly-once either way.
    """

    def __init__(self, message, shard_range, write_id=None, ambiguous=False):
        super().__init__(message)
        self.shard_range = shard_range
        self.write_id = write_id
        self.ambiguous = ambiguous


@dataclass
class ClusterStats:
    """Coordinator-side counters (see also :meth:`ClusterBackend.health`)."""

    requests: int = 0
    range_calls: int = 0
    failovers: int = 0
    sweep_retries: int = 0
    breaker_skips: int = 0
    unserved_ranges: int = 0
    hist_merges: int = 0
    hist_memo_hits: int = 0
    writes: int = 0
    write_prepares: int = 0
    write_commits: int = 0
    stale_marks: int = 0
    resyncs: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ClusterBackend:
    """Route one :class:`~repro.api.OsdpClient` across N endpoints.

    Implements the read side of the :class:`~repro.api.Backend`
    protocol over a replicated topology; noise sampling and budget
    accounting happen here, at the merge tier, with this backend's
    ``registry``/``accountant`` — endpoints only ever answer exact
    count queries, so an endpoint crash can never half-charge a
    budget.

    ``retry`` paces the per-range failover sweep (each attempt walks
    every candidate replica, healthiest first); ``health_interval``
    (seconds) turns on the background ping loop that returns demoted
    endpoints to rotation.

    ``accountant`` may be a plain
    :class:`~repro.core.accountant.PrivacyAccountant` or a
    :class:`~repro.service.budget.DurableAccountant` — with the
    latter, every coordinator charge is fsync'd to a journal before
    the release returns, so a coordinator crash and restart resumes
    with the exact spent total (exactly-once charging across
    restarts).  Requests carrying an ``analyst`` are booked under that
    analyst's quota sub-budget.
    """

    def __init__(
        self,
        endpoints: Sequence[ClusterEndpoint],
        registry: MechanismRegistry | None = None,
        accountant: PrivacyAccountant | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = 5.0,
        health_interval: float | None = None,
        probe_timeout: float = 1.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 1.0,
        dead_after: int = 3,
        rng=None,
        clock=None,
    ):
        if not endpoints:
            raise ValueError("a cluster needs at least one endpoint")
        keys = [ep.key for ep in endpoints]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate endpoint keys in {keys}")
        self.endpoints = list(endpoints)
        self._by_key = {ep.key: ep for ep in self.endpoints}
        self._replicas: dict[object, list[ClusterEndpoint]] = {}
        for ep in self.endpoints:
            self._replicas.setdefault(ep.shard_range, []).append(ep)
        # Deterministic range order (merge addition is commutative, so
        # this is for readable errors/stats, not bit-identity).
        self._ranges = sorted(self._replicas, key=repr)
        # Data order for the write path: ranges as first listed in
        # ``endpoints``.  Topologies must list ranges oldest-data
        # first — appends go to the last range, expiry walks from the
        # first (the fleet launcher and docs both enforce/state this).
        self._range_order: list = []
        for ep in self.endpoints:
            if ep.shard_range not in self._range_order:
                self._range_order.append(ep.shard_range)
        self._registry = registry or default_registry()
        self.accountant = accountant
        self._retry = retry or DEFAULT_CLUSTER_RETRY
        # Seed a random.Random here to make every backoff jitter draw
        # deterministic (the fault tests' replayability hook).
        self._rng = rng
        # The temporal twin of rng=: an injectable clock
        # (repro.ingest.clock.Clock) whose sleep() paces every retry
        # backoff — a fake makes backoff-heavy fault tests instant.
        self._sleep = time.sleep if clock is None else clock.sleep
        self._timeout = timeout
        # Replicas known to have missed a commit: key -> reason.  They
        # are excluded from read rotation (serving them would break
        # bit-identity) until resync() catches them back up.
        self._stale: dict[str, str] = {}
        self._stale_lock = threading.Lock()
        # One writer at a time per shard range: the commit protocol's
        # prepare->commit window must not interleave with another
        # write to the same replicas (sequence numbers are per-range).
        self._write_locks = {
            shard_range: threading.Lock() for shard_range in self._replicas
        }
        self._probe_timeout = probe_timeout
        self.stats = ClusterStats()
        self._stats_lock = threading.Lock()
        self._clients: dict[str, RemoteBackend] = {}
        self._clients_lock = threading.Lock()
        self._closed = False
        self._breakers = {
            key: CircuitBreaker(
                failure_threshold=breaker_threshold, reset_after=breaker_reset
            )
            for key in keys
        }
        self._health = HealthMonitor(
            keys,
            probe=self._probe,
            interval=health_interval or 0.5,
            dead_after=dead_after,
        )
        if health_interval is not None:
            self._health.start()

    # ------------------------------------------------------------------
    # Endpoint plumbing
    # ------------------------------------------------------------------
    def _client(self, endpoint: ClusterEndpoint) -> RemoteBackend:
        """The cached fail-fast connection to one endpoint.

        Deliberately ``retry=None, connect_retry=None``: the cluster's
        range-level sweep is the retry layer, and stacking per-endpoint
        retries under it would multiply every dead endpoint's cost.
        """
        with self._clients_lock:
            if self._closed:
                raise ConnectionError("cluster backend is closed")
            client = self._clients.get(endpoint.key)
        if client is not None:
            return client
        client = RemoteBackend(
            endpoint.host,
            endpoint.port,
            timeout=self._timeout,
            retry=None,
            connect_retry=None,
        )
        with self._clients_lock:
            if self._closed:
                client.close()
                raise ConnectionError("cluster backend is closed")
            other = self._clients.setdefault(endpoint.key, client)
        if other is not client:
            client.close()
        return other

    def _drop_client(self, endpoint: ClusterEndpoint) -> None:
        with self._clients_lock:
            client = self._clients.pop(endpoint.key, None)
        if client is not None:
            client.close()

    def _probe(self, key: str) -> None:
        """One health-check ping (short-lived connection, fail fast)."""
        endpoint = self._by_key[key]
        probe = RemoteBackend(
            endpoint.host,
            endpoint.port,
            timeout=self._probe_timeout,
            retry=None,
            connect_retry=None,
        )
        try:
            probe.ping()
        finally:
            probe.close()

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + by)

    # ------------------------------------------------------------------
    # The failover core: call one shard range, walking its replicas
    # ------------------------------------------------------------------
    def _range_call(self, shard_range, fn, describe: str):
        """Run ``fn(client)`` against the healthiest live replica.

        Each sweep tries every candidate once, healthiest first (a
        stale "dead" verdict never *excludes* a replica — it only
        deprioritizes it); open circuit breakers are skipped unless
        they would leave no candidate at all.  Failed sweeps back off
        under the cluster retry policy; exhaustion raises
        :class:`PartialClusterError` — bounded time, never a hang.
        """
        policy = self._retry
        deadline = Deadline(policy.deadline)
        live = [
            ep
            for ep in self._replicas[shard_range]
            if not self._is_stale(ep)
        ]
        if not live:
            self._bump("unserved_ranges")
            raise PartialClusterError(
                f"shard range {shard_range!r} has no serving replica for "
                f"{describe}: every replica is stale (divergent until "
                "resync(); see ClusterBackend.stale())",
                shard_range,
            )
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if deadline.expired():
                break
            ranked = self._health.ranked(live, key=lambda ep: ep.key)
            candidates = [
                ep for ep in ranked if self._breakers[ep.key].allow()
            ]
            if not candidates:
                # Every breaker is open: force-try the healthiest one
                # anyway — fail-fast must not become fail-always.
                self._bump("breaker_skips")
                candidates = ranked[:1]
            for endpoint in candidates:
                deadline.require(describe)
                self._bump("range_calls")
                try:
                    result = fn(self._client(endpoint))
                except FAILOVER_ERRORS as exc:
                    last = exc
                    self._bump("failovers")
                    self._health.record_failure(endpoint.key, exc)
                    self._breakers[endpoint.key].record_failure()
                    self._drop_client(endpoint)
                    continue
                self._health.record_success(endpoint.key)
                self._breakers[endpoint.key].record_success()
                return result
            if attempt + 1 < policy.max_attempts:
                self._bump("sweep_retries")
                pause = policy.delay(attempt, rng=self._rng)
                remaining = deadline.remaining()
                if remaining is not None:
                    pause = min(pause, remaining)
                if pause > 0:
                    self._sleep(pause)
        self._bump("unserved_ranges")
        raise PartialClusterError(
            f"shard range {shard_range!r} has no serving replica for "
            f"{describe} (replicas: "
            f"{[ep.key for ep in self._replicas[shard_range]]}; "
            f"last error: {type(last).__name__ if last else None}: {last})",
            shard_range,
        ) from last

    # ------------------------------------------------------------------
    # The merge tier
    # ------------------------------------------------------------------
    def _merged_histogram(self, request: ReleaseRequest, memo: dict | None):
        """The cluster-wide :class:`HistogramInput` for one request.

        One ``hist_counts`` per shard range, then the canonical
        :meth:`HistogramInput.from_shard_counts` merge.  ``memo``
        (per-batch) plays the role of the single server's histogram
        cache: requests sharing a ``(binning, policy)`` pair pay the
        fan-out once and report ``cache_hit`` like the in-process path.
        """
        binning, policy = ReleaseServer._resolve(request)
        bspec = (
            dict(request.binning)
            if isinstance(request.binning, Mapping)
            else binning_to_spec(binning)
        )
        pspec = (
            dict(request.policy)
            if isinstance(request.policy, Mapping)
            else policy_to_spec(policy)
        )
        key = dumps({"binning": bspec, "policy": pspec})
        if memo is not None and key in memo:
            self._bump("hist_memo_hits")
            return memo[key], policy, True
        pairs = [
            self._range_call(
                shard_range,
                lambda client: client.histogram_counts(bspec, pspec),
                describe=f"hist_counts({request.label or request.mechanism})",
            )
            for shard_range in self._ranges
        ]
        hist = HistogramInput.from_shard_counts(pairs)
        hist.ns_support_sorted  # warm the release fast-path views
        self._bump("hist_merges")
        if memo is not None:
            memo[key] = hist
        return hist, policy, False

    def _handle_one(
        self, request: ReleaseRequest, memo: dict | None
    ) -> ReleaseResponse:
        # Mirrors ReleaseServer.handle step for step: same merge
        # product, same registry.create, same rng construction and
        # mechanism.run call — the bit-identity contract.
        if request.n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        hist, policy, cache_hit = self._merged_histogram(request, memo)
        mechanism = self._registry.create(request.mechanism, request.epsilon)
        accountant = self.accountant
        if accountant is not None and request.analyst:
            # Book the charge under the requesting analyst (quota
            # enforcement included) — same binding as ReleaseServer.
            accountant = accountant.for_analyst(request.analyst)
        estimates = mechanism.run(
            hist,
            np.random.default_rng(request.seed),
            n_trials=request.n_trials,
            policy=policy,
            accountant=accountant,
            label=request.label or request.mechanism,
        )
        self._bump("requests")
        return ReleaseResponse(
            request=request,
            estimates=estimates,
            epsilon_spent=request.epsilon,
            budget_remaining=self.budget_remaining,
            cache_hit=cache_hit,
        )

    # ------------------------------------------------------------------
    # The Backend surface (read path)
    # ------------------------------------------------------------------
    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        return self._handle_one(request, memo=None)

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        """Serve a batch in order, with the single server's semantics.

        Same upfront validation (no budget is charged on a batch
        doomed by a typo), same :class:`BatchBudgetExceededError` with
        the charged prefix on overrun; an unserved shard range raises
        :class:`PartialClusterError` carrying the prefix instead.
        """
        for request in requests:
            if request.mechanism not in self._registry:
                raise KeyError(
                    f"unknown mechanism {request.mechanism!r}; registered: "
                    f"{self._registry.names()}"
                )
            if request.n_trials < 1:
                raise ValueError("n_trials must be at least 1")
            if request.epsilon <= 0:
                raise ValueError("epsilon must be positive")
        responses: list[ReleaseResponse] = []
        memo: dict = {}
        for request in requests:
            try:
                responses.append(self._handle_one(request, memo))
            except BudgetExceededError as exc:
                raise BatchBudgetExceededError(
                    str(exc), responses, request
                ) from exc
            except PartialClusterError as exc:
                raise PartialClusterError(
                    str(exc), exc.shard_range, responses, request
                ) from exc
        return responses

    def true_histogram(self, binning) -> np.ndarray:
        spec = (
            dict(binning)
            if isinstance(binning, Mapping)
            else binning_to_spec(binning)
        )
        totals = [
            self._range_call(
                shard_range,
                lambda client: client.true_histogram(spec),
                describe="true_histogram",
            )
            for shard_range in self._ranges
        ]
        return np.sum(totals, axis=0)

    # ------------------------------------------------------------------
    # The write path: replicated two-phase writes + stale-replica resync
    # ------------------------------------------------------------------
    def append_records(self, records) -> int:
        """Append through the cluster: replicated on the tail range.

        Records arrive in time order, so new rows belong to the last
        shard range (the same invariant the single server's tail-shard
        append keeps).  Returns the owning endpoints' tail shard index.
        """
        tail_range = self._range_order[-1]
        reply = self._replicated_write(
            "append_records", _append_payload(records), tail_range
        )
        return int(reply["result"])

    def expire_prefix(self, n_records: int) -> list[int]:
        """Expire the oldest records cluster-wide (retention).

        Ranges hold data in listing order, so expiry walks them
        head-first, trimming each range's share as its own replicated
        write.  Bounds are pre-checked against the cluster-wide count
        (the single server's ``ValueError`` contract); the returned
        indices are each owning endpoint's touched shard indices,
        concatenated in range order.
        """
        n = int(n_records)
        counts = {
            shard_range: int(
                self._range_call(
                    shard_range,
                    lambda client: client.ping()["n_records"],
                    describe="expire_prefix count",
                )
            )
            for shard_range in self._range_order
        }
        total = sum(counts.values())
        if not 0 <= n <= total:
            raise ValueError(f"cannot expire {n} of {total} records")
        touched: list[int] = []
        remaining = n
        for shard_range in self._range_order:
            if remaining == 0:
                break
            take = min(remaining, counts[shard_range])
            if take == 0:
                continue
            reply = self._replicated_write(
                "expire_prefix", {"n_records": take}, shard_range
            )
            touched.extend(int(i) for i in reply["result"])
            remaining -= take
        return touched

    def _replicated_write(self, wop: str, payload: dict, shard_range) -> dict:
        """Two-phase commit of one write across a range's replicas.

        Under the range's write lock: opportunistically resync any
        stale replica first (so a recovered endpoint rejoins before it
        falls further behind), then **prepare** on every live replica
        and **commit** on each that prepared.  A replica that fails
        prepare while others go on to commit — or fails/misses its
        commit — has missed a write its peers applied: it is marked
        stale and left to resync.  The returned document is the
        highest-sequence commit reply.
        """
        with self._write_locks[shard_range]:
            self._resync_range_locked(shard_range)
            write_id = uuid.uuid4().hex
            self._bump("writes")
            ranked = self._health.ranked(
                self._replicas[shard_range], key=lambda ep: ep.key
            )
            live = [ep for ep in ranked if not self._is_stale(ep)]
            prepared: list[ClusterEndpoint] = []
            prepare_failures: list[ClusterEndpoint] = []
            for endpoint in live:
                try:
                    self._client(endpoint).prepare_write(
                        write_id, wop, payload
                    )
                except FAILOVER_ERRORS as exc:
                    self._health.record_failure(endpoint.key, exc)
                    self._drop_client(endpoint)
                    prepare_failures.append(endpoint)
                    continue
                self._bump("write_prepares")
                self._health.record_success(endpoint.key)
                prepared.append(endpoint)
            if not prepared:
                raise ClusterWriteError(
                    f"write {wop!r} to shard range {shard_range!r} reached "
                    f"no replica at prepare (live: "
                    f"{[ep.key for ep in live]}); nothing was applied",
                    shard_range,
                    write_id=write_id,
                    ambiguous=False,
                )
            # From here the write will land somewhere: a replica that
            # could not even stage it is about to miss the commit.
            for endpoint in prepare_failures:
                self._mark_stale(endpoint, f"unreachable at prepare of {wop}")
            best: dict | None = None
            committed: list[tuple[ClusterEndpoint, dict]] = []
            for endpoint in prepared:
                try:
                    reply = self._commit_with_retries(endpoint, write_id)
                except KeyError as exc:
                    # The endpoint restarted between prepare and
                    # commit and lost its staging — it needs the write
                    # via resync, not via a blind re-apply.
                    self._mark_stale(endpoint, f"lost staged {wop}: {exc}")
                    continue
                except FAILOVER_ERRORS as exc:
                    # Ambiguous: the commit may have been logged before
                    # the failure.  Stale-until-resync makes either
                    # outcome safe.
                    self._mark_stale(
                        endpoint, f"commit of {wop} unacknowledged: {exc}"
                    )
                    continue
                self._bump("write_commits")
                committed.append((endpoint, reply))
                if best is None or int(reply["seq"]) > int(best["seq"]):
                    best = reply
            if best is None:
                raise ClusterWriteError(
                    f"write {wop!r} ({write_id}) to shard range "
                    f"{shard_range!r} committed on no replica; replicas "
                    "that may have logged it are marked stale, so a "
                    "retry under a fresh write_id stays exactly-once",
                    shard_range,
                    write_id=write_id,
                    ambiguous=True,
                )
            for endpoint, reply in committed:
                # Pure defense: per-range writes are serialized and
                # replicas resync before each one, so every commit
                # should land at the same seq — if one disagrees, it
                # was already divergent and must not keep serving.
                if int(reply["seq"]) != int(best["seq"]):
                    self._mark_stale(
                        endpoint,
                        f"commit seq {reply['seq']} disagrees with "
                        f"{best['seq']}",
                    )
            return best

    def _commit_with_retries(self, endpoint: ClusterEndpoint, write_id: str):
        """Commit on one replica, retrying through transport faults.

        The per-endpoint client is fail-fast (it poisons on a broken
        stream), so each retry drops it and reconnects fresh; the
        commit's stable ``req_id`` turns a retry after a truncated ack
        into an idempotent replay of the cached reply — the op itself
        runs at most once.
        """
        policy = self._retry
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            try:
                return self._client(endpoint).commit_write(write_id)
            except FAILOVER_ERRORS as exc:
                last = exc
                self._bump("failovers")
                self._health.record_failure(endpoint.key, exc)
                self._drop_client(endpoint)
                if attempt + 1 < policy.max_attempts:
                    pause = policy.delay(attempt, rng=self._rng)
                    if pause > 0:
                        self._sleep(pause)
        assert last is not None
        raise last

    def resync(self, shard_range=None) -> dict[str, bool]:
        """Catch stale replicas back up from their healthy peers.

        Runs automatically before every write; call it explicitly to
        rejoin replicas on a read-only cluster (e.g. after restarting
        a killed endpoint).  Returns ``{endpoint key: rejoined?}`` for
        the replicas that were stale.
        """
        ranges = (
            list(self._replicas) if shard_range is None else [shard_range]
        )
        results: dict[str, bool] = {}
        for one_range in ranges:
            with self._write_locks[one_range]:
                results.update(self._resync_range_locked(one_range))
        return results

    def _resync_range_locked(self, shard_range) -> dict[str, bool]:
        stale = [
            ep for ep in self._replicas[shard_range] if self._is_stale(ep)
        ]
        if not stale:
            return {}
        healthy = [
            ep for ep in self._replicas[shard_range] if not self._is_stale(ep)
        ]
        return {ep.key: self._resync_one(ep, healthy) for ep in stale}

    def _resync_one(
        self, endpoint: ClusterEndpoint, healthy: Sequence[ClusterEndpoint]
    ) -> bool:
        """Bring one stale replica to its peers' exact state.

        Ask the replica where it stands (``wal_status``), fetch
        catch-up material from the healthiest peer (``sync_range``),
        and have the replica adopt it (``sync_apply``).  The chain
        digest decides between the cheap path (entries after the
        replica's seq — valid only if its history up to there matches
        the peer's) and the full base reset (diverged or too far
        behind).  Still-unreachable replicas simply stay stale.
        """
        try:
            status = self._client(endpoint).wal_status()
        except FAILOVER_ERRORS:
            self._drop_client(endpoint)
            return False
        from_seq = int(status["last_seq"])
        chain = int(status.get("chain", 0))
        for peer in self._health.ranked(healthy, key=lambda ep: ep.key):
            try:
                payload = self._client(peer).sync_range(from_seq)
                base, entries = payload["base"], payload["entries"]
                if base is None:
                    chain_at = payload.get("chain_at")
                    if chain_at is None or int(chain_at) != chain:
                        # Same/overlapping seq, different history: the
                        # replica holds writes the cluster never acked.
                        # Only a full reset reconverges it.
                        payload = self._client(peer).sync_range(-1)
                        base, entries = payload["base"], payload["entries"]
                    elif int(payload["last_seq"]) == from_seq:
                        # Already at the peers' head (WAL replay after
                        # a restart restored everything) — rejoin.
                        self._unmark_stale(endpoint)
                        self._bump("resyncs")
                        return True
                applied = self._client(endpoint).sync_apply(
                    base=base, entries=entries
                )
                if int(applied["last_seq"]) != int(payload["last_seq"]):
                    continue
            except FAILOVER_ERRORS:
                self._drop_client(peer)
                self._drop_client(endpoint)
                continue
            self._unmark_stale(endpoint)
            self._bump("resyncs")
            return True
        return False

    def _is_stale(self, endpoint: ClusterEndpoint) -> bool:
        with self._stale_lock:
            return endpoint.key in self._stale

    def _mark_stale(self, endpoint: ClusterEndpoint, reason: str) -> None:
        with self._stale_lock:
            if endpoint.key in self._stale:
                return
            self._stale[endpoint.key] = reason
        self._bump("stale_marks")

    def _unmark_stale(self, endpoint: ClusterEndpoint) -> None:
        with self._stale_lock:
            self._stale.pop(endpoint.key, None)

    def stale(self) -> dict[str, str]:
        """The currently stale replicas: ``{endpoint key: reason}``."""
        with self._stale_lock:
            return dict(self._stale)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mechanisms(self) -> list[str]:
        return self._registry.names()

    @property
    def budget_remaining(self) -> float | None:
        return self.accountant.remaining if self.accountant else None

    def budget(self) -> dict | None:
        """The coordinator accountant's full ledger view (None when
        unmetered) — entries, per-analyst quotas, totals."""
        return self.accountant.view() if self.accountant else None

    def health(self) -> dict[str, dict]:
        """Per-endpoint health snapshot (state, failures, last error)."""
        snapshot = self._health.status()
        with self._stale_lock:
            stale = dict(self._stale)
        for key, doc in snapshot.items():
            doc["breaker"] = self._breakers[key].state
            doc["shard_range"] = self._by_key[key].shard_range
            doc["stale"] = stale.get(key)
        return snapshot

    def cluster_stats(self) -> dict:
        with self._stats_lock:
            return self.stats.as_dict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._health.close()
        with self._clients_lock:
            if self._closed:
                return
            self._closed = True
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
