"""Fault-tolerant multi-endpoint serving: one client, N curators.

The single :class:`repro.service.rpc.RpcServer` owning every shard is
the scale-out blocker ROADMAP item 1 names: one process is both the
whole serving capacity and a single point of failure.  This module
splits the data plane across N ``repro.cli serve`` endpoints — each
owning a contiguous **shard range**, each range served by one or more
**replicas** — and keeps the trust plane (noise sampling, budget
accounting) in one place, the coordinator:

* Each release resolves to one ``hist_counts`` call per shard range:
  the endpoint answers with its merged ``(x, x_ns)`` int64 pair.
* The coordinator sums the per-range pairs —
  :meth:`repro.queries.histogram.HistogramInput.from_shard_counts`,
  the exact integer merge the in-process path performs over local
  shards — and samples noise **once** at the merge tier.  Integer
  addition is associative, so for the same request and seed a
  clustered release is **bit-identical** to a single server holding
  all the shards; the accountant (the coordinator's) is charged
  exactly once per release, just as in-process.
* When an endpoint fails mid-call (refused, reset, truncated frame,
  killed process), its range is re-served from a replica: failures
  demote the endpoint in the :class:`repro.api.resilience.HealthMonitor`
  state machine (healthy → suspect → dead), a per-endpoint
  :class:`~repro.api.resilience.CircuitBreaker` stops paying connect
  timeouts to an endpoint that keeps failing, and an optional
  background health-check thread pings demoted endpoints back into
  rotation.  A range with **no** reachable replica degrades to an
  explicit :class:`PartialClusterError` — carrying any already-charged
  responses — never a hang.

The cluster tier is read-path only: ``release``/``release_batch``/
``true_histogram`` fan out; data mutations must go to the endpoint
that owns the shard range (replicas are independent processes — a
coordinator-side write could not keep them bit-identical atomically).
See ``docs/OPERATIONS.md`` for topology and failure-mode reference.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.api.backends import RemoteBackend
from repro.api.resilience import (
    CircuitBreaker,
    Deadline,
    HealthMonitor,
    RetryPolicy,
)
from repro.api.wire import RemoteError, WireError, dumps
from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy_language import policy_to_spec
from repro.queries.histogram import HistogramInput, binning_to_spec
from repro.service.server import (
    BatchBudgetExceededError,
    MechanismRegistry,
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
    default_registry,
)

#: Errors that mean "this endpoint, not this request": the range fails
#: over to a replica.  Application errors (bad spec, unknown mechanism,
#: budget) propagate — they would fail identically everywhere.
FAILOVER_ERRORS = (ConnectionError, OSError, EOFError, WireError, RemoteError)

#: Default range-level sweep retry: each attempt tries every candidate
#: replica once (health-ranked), with backoff between sweeps.
DEFAULT_CLUSTER_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=0.5
)


@dataclass(frozen=True)
class ClusterEndpoint:
    """One ``repro.cli serve`` process in the topology.

    ``shard_range`` is the label of the data slice this endpoint owns —
    any hashable (a ``(lo, hi)`` tuple, a string); endpoints sharing a
    label are replicas of each other and **must** serve identical data
    (the bit-identity contract is theirs to keep).
    """

    host: str
    port: int
    shard_range: object = 0
    name: str = ""

    @property
    def key(self) -> str:
        """The endpoint's identity in health/breaker bookkeeping."""
        return self.name or f"{self.host}:{self.port}"


class PartialClusterError(RuntimeError):
    """A shard range had no serving replica; the request degraded.

    ``shard_range`` names the unserved range, ``responses`` holds any
    already-produced (and already-charged) batch prefix — charged
    noise is never silently discarded, mirroring
    :class:`~repro.service.server.BatchBudgetExceededError` — and
    ``failed_request`` is the request that could not be completed.
    """

    def __init__(
        self, message: str, shard_range, responses=(), failed_request=None
    ):
        super().__init__(message)
        self.shard_range = shard_range
        self.responses = list(responses)
        self.failed_request = failed_request


@dataclass
class ClusterStats:
    """Coordinator-side counters (see also :meth:`ClusterBackend.health`)."""

    requests: int = 0
    range_calls: int = 0
    failovers: int = 0
    sweep_retries: int = 0
    breaker_skips: int = 0
    unserved_ranges: int = 0
    hist_merges: int = 0
    hist_memo_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ClusterBackend:
    """Route one :class:`~repro.api.OsdpClient` across N endpoints.

    Implements the read side of the :class:`~repro.api.Backend`
    protocol over a replicated topology; noise sampling and budget
    accounting happen here, at the merge tier, with this backend's
    ``registry``/``accountant`` — endpoints only ever answer exact
    count queries, so an endpoint crash can never half-charge a
    budget.

    ``retry`` paces the per-range failover sweep (each attempt walks
    every candidate replica, healthiest first); ``health_interval``
    (seconds) turns on the background ping loop that returns demoted
    endpoints to rotation.
    """

    def __init__(
        self,
        endpoints: Sequence[ClusterEndpoint],
        registry: MechanismRegistry | None = None,
        accountant: PrivacyAccountant | None = None,
        retry: RetryPolicy | None = None,
        timeout: float | None = 5.0,
        health_interval: float | None = None,
        probe_timeout: float = 1.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 1.0,
        dead_after: int = 3,
    ):
        if not endpoints:
            raise ValueError("a cluster needs at least one endpoint")
        keys = [ep.key for ep in endpoints]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate endpoint keys in {keys}")
        self.endpoints = list(endpoints)
        self._by_key = {ep.key: ep for ep in self.endpoints}
        self._replicas: dict[object, list[ClusterEndpoint]] = {}
        for ep in self.endpoints:
            self._replicas.setdefault(ep.shard_range, []).append(ep)
        # Deterministic range order (merge addition is commutative, so
        # this is for readable errors/stats, not bit-identity).
        self._ranges = sorted(self._replicas, key=repr)
        self._registry = registry or default_registry()
        self.accountant = accountant
        self._retry = retry or DEFAULT_CLUSTER_RETRY
        self._timeout = timeout
        self._probe_timeout = probe_timeout
        self.stats = ClusterStats()
        self._stats_lock = threading.Lock()
        self._clients: dict[str, RemoteBackend] = {}
        self._clients_lock = threading.Lock()
        self._closed = False
        self._breakers = {
            key: CircuitBreaker(
                failure_threshold=breaker_threshold, reset_after=breaker_reset
            )
            for key in keys
        }
        self._health = HealthMonitor(
            keys,
            probe=self._probe,
            interval=health_interval or 0.5,
            dead_after=dead_after,
        )
        if health_interval is not None:
            self._health.start()

    # ------------------------------------------------------------------
    # Endpoint plumbing
    # ------------------------------------------------------------------
    def _client(self, endpoint: ClusterEndpoint) -> RemoteBackend:
        """The cached fail-fast connection to one endpoint.

        Deliberately ``retry=None, connect_retry=None``: the cluster's
        range-level sweep is the retry layer, and stacking per-endpoint
        retries under it would multiply every dead endpoint's cost.
        """
        with self._clients_lock:
            if self._closed:
                raise ConnectionError("cluster backend is closed")
            client = self._clients.get(endpoint.key)
        if client is not None:
            return client
        client = RemoteBackend(
            endpoint.host,
            endpoint.port,
            timeout=self._timeout,
            retry=None,
            connect_retry=None,
        )
        with self._clients_lock:
            if self._closed:
                client.close()
                raise ConnectionError("cluster backend is closed")
            other = self._clients.setdefault(endpoint.key, client)
        if other is not client:
            client.close()
        return other

    def _drop_client(self, endpoint: ClusterEndpoint) -> None:
        with self._clients_lock:
            client = self._clients.pop(endpoint.key, None)
        if client is not None:
            client.close()

    def _probe(self, key: str) -> None:
        """One health-check ping (short-lived connection, fail fast)."""
        endpoint = self._by_key[key]
        probe = RemoteBackend(
            endpoint.host,
            endpoint.port,
            timeout=self._probe_timeout,
            retry=None,
            connect_retry=None,
        )
        try:
            probe.ping()
        finally:
            probe.close()

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + by)

    # ------------------------------------------------------------------
    # The failover core: call one shard range, walking its replicas
    # ------------------------------------------------------------------
    def _range_call(self, shard_range, fn, describe: str):
        """Run ``fn(client)`` against the healthiest live replica.

        Each sweep tries every candidate once, healthiest first (a
        stale "dead" verdict never *excludes* a replica — it only
        deprioritizes it); open circuit breakers are skipped unless
        they would leave no candidate at all.  Failed sweeps back off
        under the cluster retry policy; exhaustion raises
        :class:`PartialClusterError` — bounded time, never a hang.
        """
        policy = self._retry
        deadline = Deadline(policy.deadline)
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            if deadline.expired():
                break
            ranked = self._health.ranked(
                self._replicas[shard_range], key=lambda ep: ep.key
            )
            candidates = [
                ep for ep in ranked if self._breakers[ep.key].allow()
            ]
            if not candidates:
                # Every breaker is open: force-try the healthiest one
                # anyway — fail-fast must not become fail-always.
                self._bump("breaker_skips")
                candidates = ranked[:1]
            for endpoint in candidates:
                deadline.require(describe)
                self._bump("range_calls")
                try:
                    result = fn(self._client(endpoint))
                except FAILOVER_ERRORS as exc:
                    last = exc
                    self._bump("failovers")
                    self._health.record_failure(endpoint.key, exc)
                    self._breakers[endpoint.key].record_failure()
                    self._drop_client(endpoint)
                    continue
                self._health.record_success(endpoint.key)
                self._breakers[endpoint.key].record_success()
                return result
            if attempt + 1 < policy.max_attempts:
                self._bump("sweep_retries")
                pause = policy.delay(attempt)
                remaining = deadline.remaining()
                if remaining is not None:
                    pause = min(pause, remaining)
                if pause > 0:
                    time.sleep(pause)
        self._bump("unserved_ranges")
        raise PartialClusterError(
            f"shard range {shard_range!r} has no serving replica for "
            f"{describe} (replicas: "
            f"{[ep.key for ep in self._replicas[shard_range]]}; "
            f"last error: {type(last).__name__ if last else None}: {last})",
            shard_range,
        ) from last

    # ------------------------------------------------------------------
    # The merge tier
    # ------------------------------------------------------------------
    def _merged_histogram(self, request: ReleaseRequest, memo: dict | None):
        """The cluster-wide :class:`HistogramInput` for one request.

        One ``hist_counts`` per shard range, then the canonical
        :meth:`HistogramInput.from_shard_counts` merge.  ``memo``
        (per-batch) plays the role of the single server's histogram
        cache: requests sharing a ``(binning, policy)`` pair pay the
        fan-out once and report ``cache_hit`` like the in-process path.
        """
        binning, policy = ReleaseServer._resolve(request)
        bspec = (
            dict(request.binning)
            if isinstance(request.binning, Mapping)
            else binning_to_spec(binning)
        )
        pspec = (
            dict(request.policy)
            if isinstance(request.policy, Mapping)
            else policy_to_spec(policy)
        )
        key = dumps({"binning": bspec, "policy": pspec})
        if memo is not None and key in memo:
            self._bump("hist_memo_hits")
            return memo[key], policy, True
        pairs = [
            self._range_call(
                shard_range,
                lambda client: client.histogram_counts(bspec, pspec),
                describe=f"hist_counts({request.label or request.mechanism})",
            )
            for shard_range in self._ranges
        ]
        hist = HistogramInput.from_shard_counts(pairs)
        hist.ns_support_sorted  # warm the release fast-path views
        self._bump("hist_merges")
        if memo is not None:
            memo[key] = hist
        return hist, policy, False

    def _handle_one(
        self, request: ReleaseRequest, memo: dict | None
    ) -> ReleaseResponse:
        # Mirrors ReleaseServer.handle step for step: same merge
        # product, same registry.create, same rng construction and
        # mechanism.run call — the bit-identity contract.
        if request.n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        hist, policy, cache_hit = self._merged_histogram(request, memo)
        mechanism = self._registry.create(request.mechanism, request.epsilon)
        estimates = mechanism.run(
            hist,
            np.random.default_rng(request.seed),
            n_trials=request.n_trials,
            policy=policy,
            accountant=self.accountant,
            label=request.label or request.mechanism,
        )
        self._bump("requests")
        return ReleaseResponse(
            request=request,
            estimates=estimates,
            epsilon_spent=request.epsilon,
            budget_remaining=self.budget_remaining,
            cache_hit=cache_hit,
        )

    # ------------------------------------------------------------------
    # The Backend surface (read path)
    # ------------------------------------------------------------------
    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        return self._handle_one(request, memo=None)

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        """Serve a batch in order, with the single server's semantics.

        Same upfront validation (no budget is charged on a batch
        doomed by a typo), same :class:`BatchBudgetExceededError` with
        the charged prefix on overrun; an unserved shard range raises
        :class:`PartialClusterError` carrying the prefix instead.
        """
        for request in requests:
            if request.mechanism not in self._registry:
                raise KeyError(
                    f"unknown mechanism {request.mechanism!r}; registered: "
                    f"{self._registry.names()}"
                )
            if request.n_trials < 1:
                raise ValueError("n_trials must be at least 1")
            if request.epsilon <= 0:
                raise ValueError("epsilon must be positive")
        responses: list[ReleaseResponse] = []
        memo: dict = {}
        for request in requests:
            try:
                responses.append(self._handle_one(request, memo))
            except BudgetExceededError as exc:
                raise BatchBudgetExceededError(
                    str(exc), responses, request
                ) from exc
            except PartialClusterError as exc:
                raise PartialClusterError(
                    str(exc), exc.shard_range, responses, request
                ) from exc
        return responses

    def true_histogram(self, binning) -> np.ndarray:
        spec = (
            dict(binning)
            if isinstance(binning, Mapping)
            else binning_to_spec(binning)
        )
        totals = [
            self._range_call(
                shard_range,
                lambda client: client.true_histogram(spec),
                describe="true_histogram",
            )
            for shard_range in self._ranges
        ]
        return np.sum(totals, axis=0)

    def append_records(self, records) -> int:
        raise NotImplementedError(
            "the cluster tier is read-path only: append via the endpoint "
            "that owns the shard range (replicas are independent "
            "processes; a coordinator-side write could not update them "
            "atomically)"
        )

    def expire_prefix(self, n_records: int) -> list[int]:
        raise NotImplementedError(
            "the cluster tier is read-path only: expire via the endpoint "
            "that owns the shard range"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mechanisms(self) -> list[str]:
        return self._registry.names()

    @property
    def budget_remaining(self) -> float | None:
        return self.accountant.remaining if self.accountant else None

    def health(self) -> dict[str, dict]:
        """Per-endpoint health snapshot (state, failures, last error)."""
        snapshot = self._health.status()
        for key, doc in snapshot.items():
            doc["breaker"] = self._breakers[key].state
            doc["shard_range"] = self._by_key[key].shard_range
        return snapshot

    def cluster_stats(self) -> dict:
        with self._stats_lock:
            return self.stats.as_dict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._health.close()
        with self._clients_lock:
            if self._closed:
                return
            self._closed = True
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
