"""Reusable resilience primitives for the serving tier.

Production OSDP serving lives or dies on operational reliability: a
release request must come back, degrade explicitly, or fail loudly —
never hang, and never charge the privacy accountant twice.  This
module is the transport-agnostic toolkit the client/cluster layers
build that behavior from:

* :class:`RetryPolicy` — bounded exponential backoff with jitter and an
  optional per-request **deadline**.  The deadline is a wall-clock
  budget for the whole logical request: every retry attempt deducts
  from it, the remaining budget rides the wire header (see
  :mod:`repro.service.rpc`), and a server refuses to start work — and
  charge budget — for a caller that has already given up.
* :class:`Deadline` — a monotonic-clock countdown shared by retry
  loops and socket timeouts.
* :class:`CircuitBreaker` — a per-endpoint fail-fast gate: after
  ``failure_threshold`` consecutive failures the breaker *opens* and
  calls skip the endpoint without paying a connect timeout; after
  ``reset_after`` seconds one probe is let through (half-open) and a
  success closes it again.
* :class:`HealthMonitor` — the healthy/suspect/dead endpoint state
  machine.  Call-path failures demote an endpoint (healthy → suspect →
  dead after ``dead_after`` consecutive failures); a background thread
  re-probes non-healthy endpoints (the RPC ``ping`` op in practice)
  and one successful probe restores it.  :meth:`HealthMonitor.ranked`
  orders candidate endpoints so live replicas are tried before
  suspects, and dead endpoints only as a last resort.

None of these classes know about sockets or the wire format;
:class:`repro.api.backends.RemoteBackend` and
:class:`repro.api.cluster.ClusterBackend` wire them to the transport.
"""

from __future__ import annotations

import random as _random_module
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


class DeadlineExceeded(RuntimeError):
    """A request's wall-clock budget ran out before it completed.

    Raised client-side when retries exhaust the deadline, and
    server-side (then re-raised across the wire) when a request
    arrives with its carried deadline already expired — serving it
    would spend privacy budget on a response nobody will read.
    """


class ServerOverloaded(RuntimeError):
    """An endpoint's admission gate refused the request (shed load).

    The retryable "come back later" signal of the serving tier: raised
    server-side when the bounded in-flight admission gate is full
    (:class:`repro.service.rpc.RpcServer` ``admission_limit``) and
    re-raised client-side from the wire.  ``retry_after`` is the
    server's hint, in seconds, for how long to back off before
    resending; retry loops (:func:`call_with_retries`,
    ``RemoteBackend``'s exchange retries) use it as a floor on their
    own backoff.  Unlike a transport failure, the exchange completed
    cleanly — the connection stays usable and nothing was charged.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class Deadline:
    """A monotonic countdown; ``seconds=None`` means no deadline."""

    def __init__(self, seconds: float | None, clock=time.monotonic):
        self._clock = clock
        self.total = seconds
        self._expires = None if seconds is None else clock() + seconds

    def remaining(self) -> float | None:
        """Seconds left (never negative); None when unbounded."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock())

    def expired(self) -> bool:
        return self._expires is not None and self._clock() >= self._expires

    def require(self, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.total}s deadline"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter and an optional deadline.

    ``delay(attempt)`` for attempts 0, 1, 2, ... grows as
    ``base_delay * multiplier**attempt`` capped at ``max_delay``, then
    spread by ``jitter`` (a fraction: 0.25 means ±25%) so a fleet of
    retrying clients does not re-arrive in lockstep.  ``deadline`` is
    the whole logical request's wall-clock budget in seconds — not a
    per-attempt timeout.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def delay(self, attempt: int, rng=None) -> float:
        """The backoff before retry number ``attempt + 1``."""
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if not self.jitter or base == 0.0:
            return base
        u = (rng or _random_module).random()
        return base * (1.0 - self.jitter + 2.0 * self.jitter * u)


def call_with_retries(
    fn: Callable,
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    rng=None,
    sleep: Callable[[float], None] = time.sleep,
    describe: str = "call",
    deadline: Deadline | None = None,
):
    """Run ``fn`` under ``policy``; re-raise the last failure when spent.

    Only ``retryable`` exception types are retried — anything else
    propagates immediately (an application error will fail the same
    way on every attempt).  ``deadline`` may be passed in to share one
    countdown across several retried calls; by default the policy's
    own deadline (if any) starts now.  A retryable failure carrying a
    ``retry_after`` hint (:class:`ServerOverloaded`) floors the backoff
    at the server's ask — retrying sooner would just be refused again.
    """
    deadline = deadline or Deadline(policy.deadline)
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        if deadline.expired():
            break
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                break
            pause = policy.delay(attempt, rng)
            hint = getattr(exc, "retry_after", None)
            if hint is not None:
                pause = max(pause, float(hint))
            remaining = deadline.remaining()
            if remaining is not None:
                pause = min(pause, remaining)
            if pause > 0:
                sleep(pause)
    if deadline.expired():
        raise DeadlineExceeded(
            f"{describe} exceeded its {deadline.total}s deadline"
        ) from last
    assert last is not None
    raise last


class CircuitBreaker:
    """Consecutive-failure fail-fast gate with timed half-open probes.

    Thread-safe.  ``allow()`` answers "should a call be attempted right
    now": always while closed; while open, only once per
    ``reset_after`` window (the half-open probe).  Callers report the
    outcome back via :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 1.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_after < 0:
            raise ValueError("reset_after must be non-negative")
        self._threshold = failure_threshold
        self._reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self._reset_after:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at >= self._reset_after:
                # Half-open: let exactly one probe through per window
                # by pushing the window forward before releasing the
                # lock — concurrent callers stay blocked.
                self._opened_at = self._clock()
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self._threshold:
                self._opened_at = self._clock()


# ----------------------------------------------------------------------
# Endpoint health state machine
# ----------------------------------------------------------------------

HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"

_STATE_ORDER = {HEALTHY: 0, SUSPECT: 1, DEAD: 2}


@dataclass
class EndpointStatus:
    """One endpoint's view in the health state machine."""

    state: str = HEALTHY
    consecutive_failures: int = 0
    last_error: str | None = None
    probes: int = 0
    transitions: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class HealthMonitor:
    """healthy/suspect/dead tracking plus background re-probing.

    Call-path outcomes drive the machine passively
    (:meth:`record_success` / :meth:`record_failure`); when a ``probe``
    callable is given and :meth:`start` is called, a daemon thread
    additionally probes every *non-healthy* endpoint each ``interval``
    seconds — healthy endpoints are validated by live traffic, so
    probing them would be redundant load — and one successful probe
    restores the endpoint to healthy.  A dead endpoint is therefore
    never abandoned: it re-enters rotation the moment it answers a
    ping again.
    """

    def __init__(
        self,
        keys: Iterable[str],
        probe: Callable[[str], None] | None = None,
        interval: float = 0.5,
        dead_after: int = 3,
    ):
        if dead_after < 1:
            raise ValueError("dead_after must be at least 1")
        self._status = {key: EndpointStatus() for key in keys}
        self._probe = probe
        self._interval = interval
        self._dead_after = dead_after
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- passive transitions (driven by real traffic) -------------------
    def record_success(self, key: str) -> None:
        with self._lock:
            status = self._status[key]
            if status.state != HEALTHY:
                status.transitions += 1
            status.state = HEALTHY
            status.consecutive_failures = 0
            status.last_error = None

    def record_failure(self, key: str, error: object = None) -> None:
        with self._lock:
            status = self._status[key]
            status.consecutive_failures += 1
            new_state = (
                DEAD
                if status.consecutive_failures >= self._dead_after
                else SUSPECT
            )
            if status.state != new_state:
                status.transitions += 1
            status.state = new_state
            if error is not None:
                status.last_error = f"{type(error).__name__}: {error}" if isinstance(
                    error, BaseException
                ) else str(error)

    # -- queries --------------------------------------------------------
    def state(self, key: str) -> str:
        with self._lock:
            return self._status[key].state

    def status(self) -> dict[str, dict]:
        """A snapshot of every endpoint's status (for operators)."""
        with self._lock:
            return {key: s.as_dict() for key, s in self._status.items()}

    def ranked(self, items: Sequence, key=lambda item: item) -> list:
        """``items`` stably sorted healthy-first, dead-last.

        The selection order of the failover path: live replicas are
        tried before suspects, and dead endpoints only when nothing
        better remains (a stale "dead" verdict must not turn a
        servable request into a failure).
        """
        with self._lock:
            return sorted(
                items,
                key=lambda item: _STATE_ORDER[self._status[key(item)].state],
            )

    # -- background probing ---------------------------------------------
    def start(self) -> "HealthMonitor":
        if self._probe is None:
            raise ValueError("no probe callable; cannot start the monitor")
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="repro-health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            with self._lock:
                unhealthy = [
                    key
                    for key, status in self._status.items()
                    if status.state != HEALTHY
                ]
            for key in unhealthy:
                if self._stop.is_set():
                    return
                with self._lock:
                    self._status[key].probes += 1
                try:
                    self._probe(key)
                except Exception as exc:
                    self.record_failure(key, exc)
                else:
                    self.record_success(key)

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "HealthMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
