"""The OSDP release wire format: canonical JSON + ndarray framing.

:class:`repro.service.server.ReleaseRequest` /
:class:`~repro.service.server.ReleaseResponse` are *the* protocol of
the release service (ROADMAP: "the spec wire format and
ReleaseRequest-as-data are the protocol").  This module pins their
portable form in two layers:

* **JSON documents.**  :func:`request_to_wire` renders a request as a
  plain dict whose policy/binning are the PR-3 specs
  (:func:`repro.core.policy_language.policy_to_spec`,
  :func:`repro.queries.histogram.binning_to_spec`);
  :func:`response_to_wire` does the same for responses, with ndarrays
  as ``{"__ndarray__": ...}`` descriptors.  :func:`dumps`/:func:`loads`
  turn any such object into JSON text and back — numeric arrays travel
  as base64 of their raw buffers, so the round trip is **bit-exact**
  (no float re-parsing is involved).
* **Socket frames.**  :func:`send_message`/:func:`recv_message` move
  the same objects over a stream socket as one length-prefixed JSON
  header followed by the referenced ndarray buffers, raw — large
  estimate matrices cross the wire without base64 inflation or pickle
  (the framing is language-agnostic: 4-byte big-endian lengths, UTF-8
  JSON, C-order array bytes).

Failures are part of the protocol: :func:`error_to_wire` serializes the
service exceptions — including
:class:`repro.service.server.BatchBudgetExceededError` with its charged
prefix of responses and the request that overran — and
:func:`exception_from_wire` rebuilds them so a remote client re-raises
exactly what the in-process caller would have seen.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Mapping

import numpy as np

from repro.api.resilience import DeadlineExceeded, ServerOverloaded
from repro.core.accountant import (
    AnalystQuotaExceededError,
    BudgetExceededError,
)
from repro.core.policy_language import PolicySpecError, policy_to_spec
from repro.queries.histogram import binning_to_spec
from repro.service.server import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
)

WIRE_VERSION = 1

#: Upper bound on a single frame (header or array payload); a length
#: prefix beyond this is treated as a corrupt/hostile stream rather
#: than honored with a giant allocation.
MAX_FRAME_BYTES = 1 << 31

_U32 = struct.Struct(">I")


class WireError(RuntimeError):
    """A malformed frame or an un-serializable value."""


class RemoteError(RuntimeError):
    """A server-side failure of a kind the client cannot reconstruct."""


# ----------------------------------------------------------------------
# ndarray <-> JSON-able descriptor (bit-exact via raw-buffer base64)
# ----------------------------------------------------------------------


def _check_dtype(arr: np.ndarray) -> np.ndarray:
    if arr.dtype.hasobject:
        raise WireError(
            "object-dtype arrays have no portable wire form; convert to "
            "a numeric or fixed-width string dtype first"
        )
    return np.ascontiguousarray(arr)


def array_to_jsonable(arr) -> dict:
    """A numeric ndarray as a plain-JSON descriptor (bit-exact)."""
    arr = _check_dtype(np.asarray(arr))
    return {
        "__ndarray__": True,
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def array_from_jsonable(obj: Mapping) -> np.ndarray:
    """Inverse of :func:`array_to_jsonable`."""
    raw = base64.b64decode(obj["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
    return arr.reshape(tuple(obj["shape"])).copy()


def _json_default(value):
    if isinstance(value, np.ndarray):
        return array_to_jsonable(value)
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(
        f"{type(value).__name__} is not JSON-serializable on the wire"
    )


def _json_object_hook(obj: dict):
    if obj.get("__ndarray__") is True:
        return array_from_jsonable(obj)
    return obj


def dumps(obj) -> str:
    """JSON text of a wire object (ndarrays become bit-exact descriptors)."""
    return json.dumps(obj, default=_json_default, sort_keys=True)


def loads(text: str):
    """Inverse of :func:`dumps`: descriptors come back as ndarrays."""
    return json.loads(text, object_hook=_json_object_hook)


# ----------------------------------------------------------------------
# Request / response documents
# ----------------------------------------------------------------------


def request_to_wire(request: ReleaseRequest) -> dict:
    """A request as a plain dict: policies/binnings as their specs.

    A request already carrying spec dicts (the transport-native form)
    passes them through untouched; live objects serialize via their
    ``to_spec``.  Opaque policies (hand-written predicates) raise
    :class:`repro.core.policy_language.PolicySpecError` — they cannot
    cross a machine boundary and must be rebuilt from the declarative
    language instead.
    """
    binning, policy = request.binning, request.policy
    return {
        "mechanism": request.mechanism,
        "epsilon": float(request.epsilon),
        "binning": dict(binning)
        if isinstance(binning, Mapping)
        else binning_to_spec(binning),
        "policy": dict(policy)
        if isinstance(policy, Mapping)
        else policy_to_spec(policy),
        "n_trials": int(request.n_trials),
        "seed": None if request.seed is None else int(request.seed),
        "label": str(request.label),
        "analyst": str(request.analyst),
    }


def request_from_wire(doc: Mapping) -> ReleaseRequest:
    """Rebuild a request; policy/binning stay as specs.

    The server resolves specs per request and its caches key by value
    identity, so handling the rebuilt request is bit-identical to
    handling the original.
    """
    return ReleaseRequest(
        mechanism=doc["mechanism"],
        epsilon=float(doc["epsilon"]),
        binning=doc["binning"],
        policy=doc["policy"],
        n_trials=int(doc.get("n_trials", 1)),
        seed=None if doc.get("seed") is None else int(doc["seed"]),
        label=doc.get("label", ""),
        analyst=doc.get("analyst", ""),
    )


def response_to_wire(response: ReleaseResponse) -> dict:
    """A response as a wire object (the estimates stay an ndarray —
    :func:`dumps` or the socket framing decide their byte form)."""
    remaining = response.budget_remaining
    return {
        "request": request_to_wire(response.request),
        "estimates": np.asarray(response.estimates),
        "epsilon_spent": float(response.epsilon_spent),
        "budget_remaining": None if remaining is None else float(remaining),
        "cache_hit": bool(response.cache_hit),
    }


def response_from_wire(doc: Mapping) -> ReleaseResponse:
    """Inverse of :func:`response_to_wire`."""
    estimates = doc["estimates"]
    if not isinstance(estimates, np.ndarray):
        estimates = array_from_jsonable(estimates)
    return ReleaseResponse(
        request=request_from_wire(doc["request"]),
        estimates=estimates,
        epsilon_spent=float(doc["epsilon_spent"]),
        budget_remaining=doc.get("budget_remaining"),
        cache_hit=bool(doc.get("cache_hit", False)),
    )


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------

_EXCEPTION_KINDS: dict[str, type[Exception]] = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "PolicySpecError": PolicySpecError,
    "WireError": WireError,
    "DeadlineExceeded": DeadlineExceeded,
}


def error_to_wire(exc: BaseException) -> dict:
    """Serialize a service failure, payload included.

    :class:`BatchBudgetExceededError` is the load-bearing case: its
    already-charged prefix of responses and the request that overran
    must reach the remote caller — charged noise is never silently
    discarded, not even across a socket.
    """
    if isinstance(exc, BatchBudgetExceededError):
        return {
            "kind": "batch_budget_exceeded",
            "message": str(exc),
            "responses": [response_to_wire(r) for r in exc.responses],
            "failed_request": request_to_wire(exc.failed_request),
        }
    if isinstance(exc, AnalystQuotaExceededError):
        return {"kind": "quota_exceeded", "message": str(exc)}
    if isinstance(exc, BudgetExceededError):
        return {"kind": "budget_exceeded", "message": str(exc)}
    if isinstance(exc, ServerOverloaded):
        doc = {"kind": "server_overloaded", "message": str(exc)}
        if exc.retry_after is not None:
            doc["retry_after"] = float(exc.retry_after)
        return doc
    kind = type(exc).__name__
    message = str(exc)
    if isinstance(exc, KeyError) and exc.args:
        # KeyError stringifies to the repr of its key; keep the bare
        # message so the round trip doesn't nest quotes.
        message = str(exc.args[0])
    return {"kind": kind, "message": message}


def exception_from_wire(doc: Mapping) -> Exception:
    """Rebuild the exception a server shipped with :func:`error_to_wire`."""
    kind = doc.get("kind", "RemoteError")
    message = doc.get("message", "")
    if kind == "batch_budget_exceeded":
        return BatchBudgetExceededError(
            message,
            [response_from_wire(r) for r in doc.get("responses", ())],
            request_from_wire(doc["failed_request"]),
        )
    if kind == "quota_exceeded":
        return AnalystQuotaExceededError(message)
    if kind == "budget_exceeded":
        return BudgetExceededError(message)
    if kind == "server_overloaded":
        return ServerOverloaded(message, retry_after=doc.get("retry_after"))
    cls = _EXCEPTION_KINDS.get(kind)
    if cls is not None:
        return cls(message)
    return RemoteError(f"{kind}: {message}")


# ----------------------------------------------------------------------
# Length-prefixed JSON/ndarray socket framing
# ----------------------------------------------------------------------


def encode_message(obj) -> bytes:
    """One message as bytes: JSON header frame + raw ndarray frames.

    ndarrays anywhere inside ``obj`` are pulled out into binary
    payloads and replaced by ``{"__array__": i}`` placeholders in the
    header's ``body``; the header's ``arrays`` list carries each
    payload's dtype/shape/byte count, so the reader knows exactly what
    follows without a second length prefix per array.
    """
    arrays: list[np.ndarray] = []

    def strip(value):
        if isinstance(value, np.ndarray):
            arrays.append(_check_dtype(value))
            return {"__array__": len(arrays) - 1}
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, Mapping):
            return {str(k): strip(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [strip(v) for v in value]
        return value

    body = strip(obj)
    header = {
        "v": WIRE_VERSION,
        "arrays": [
            {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "nbytes": int(arr.nbytes),
            }
            for arr in arrays
        ],
        "body": body,
    }
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_U32.pack(len(blob)), blob]
    parts.extend(arr.tobytes() for arr in arrays)
    return b"".join(parts)


def _reinflate(value, arrays: list[np.ndarray]):
    if isinstance(value, dict):
        index = value.get("__array__")
        if index is not None and value.keys() == {"__array__"}:
            return arrays[index]
        return {k: _reinflate(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_reinflate(v, arrays) for v in value]
    return value


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock, obj) -> None:
    """Frame ``obj`` and write it to a connected stream socket."""
    sock.sendall(encode_message(obj))


def recv_frame_prefix(sock) -> int:
    """Block for the next message's 4-byte length prefix.

    This is the *idle* blocking point of a connection: until the prefix
    arrives, no part of a message has been committed to the stream, so
    a server may safely shut the connection down here (the graceful-
    drain path in :mod:`repro.service.rpc` relies on that split).
    Returns the header length; raises ``EOFError`` on a closed peer and
    :class:`WireError` on a prefix beyond :data:`MAX_FRAME_BYTES`.
    """
    (header_len,) = _U32.unpack(_recv_exact(sock, _U32.size))
    if header_len > MAX_FRAME_BYTES:
        raise WireError(f"header frame of {header_len} bytes exceeds bound")
    return header_len


def recv_message_body(sock, header_len: int):
    """Read the rest of a message whose prefix announced ``header_len``.

    Every way a corrupt or hostile stream can fail decoding — header
    bytes that are not UTF-8 JSON, an unknown dtype, a shape that does
    not match the byte count, a negative or oversized array frame —
    raises :class:`WireError` (truncation still raises ``EOFError``).
    Nothing is silently skipped: after any of these the stream position
    is unknown and the caller must drop the connection.
    """
    raw_header = _recv_exact(sock, header_len)
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable header frame: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError(
            f"header frame is {type(header).__name__}, expected an object"
        )
    if header.get("v") != WIRE_VERSION:
        raise WireError(
            f"peer speaks wire version {header.get('v')!r}, "
            f"this client speaks {WIRE_VERSION}"
        )
    arrays = []
    descriptors = header.get("arrays", ())
    if not isinstance(descriptors, list):
        raise WireError("header 'arrays' is not a list")
    for descriptor in descriptors:
        try:
            nbytes = int(descriptor["nbytes"])
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(s) for s in descriptor["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed array descriptor: {exc}") from exc
        if nbytes < 0 or nbytes > MAX_FRAME_BYTES:
            raise WireError(f"array frame of {nbytes} bytes exceeds bound")
        raw = _recv_exact(sock, nbytes)
        try:
            arrays.append(
                np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
            )
        except (ValueError, TypeError) as exc:
            raise WireError(
                f"array frame does not match its descriptor: {exc}"
            ) from exc
    try:
        return _reinflate(header.get("body"), arrays)
    except (IndexError, TypeError) as exc:
        raise WireError(f"malformed message body: {exc}") from exc


def recv_message(sock):
    """Read one framed message; raises ``EOFError`` on a closed peer."""
    return recv_message_body(sock, recv_frame_prefix(sock))
