"""repro — a reproduction of *One-sided Differential Privacy* (ICDE 2020).

One-sided differential privacy (OSDP) protects databases in which only
some records are sensitive, as determined by a policy function that is
itself secret.  This package provides:

* the formal core — policies, one-sided neighbors, guarantees, budget
  accounting, an exact verifier, and the exclusion-attack framework
  (:mod:`repro.core`);
* the paper's mechanisms — ``OsdpRR``, ``OsdpLaplace``,
  ``OsdpLaplaceL1``, the ``Suppress`` PDP baseline, DAWA and DAWAz
  (:mod:`repro.mechanisms`);
* data substrates — a synthetic TIPPERS smart-building trace, the
  DPBench-1D histogram suite, and opt-in/opt-out policy simulators
  (:mod:`repro.data`);
* query layers, a from-scratch classification stack, and the full
  experiment harness reproducing every table and figure
  (:mod:`repro.queries`, :mod:`repro.classification`,
  :mod:`repro.evaluation`).

Quickstart (the client API — one surface over in-process, sharded and
remote backends; see ``docs/API.md``)::

    from repro.api import OsdpClient
    from repro.data.columnar import ColumnarDatabase
    from repro.queries.histogram import IntegerBinning

    db = ColumnarDatabase.from_records(records)
    with OsdpClient.in_process(db) as client:
        response = client.release(
            mechanism="osdp_laplace_l1",
            epsilon=1.0,
            binning=IntegerBinning("age", 0, 100, 10),
            policy={"attr": "age", "op": "<=", "value": 17},
            seed=0,
        )
    response.estimates    # the released histogram, (n_trials, n_bins)
"""

__version__ = "1.0.0"

from repro.api import OsdpClient, ReleaseRequest, ReleaseResponse
from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.core.policy import (
    AllSensitivePolicy,
    AttributePolicy,
    LambdaPolicy,
    OptInPolicy,
    Policy,
)
from repro.mechanisms import (
    Dawa,
    DawaZ,
    LaplaceHistogram,
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
    OsdpRR,
    OsdpRRHistogram,
    SuppressHistogram,
)
from repro.queries.histogram import HistogramInput

__all__ = [
    "AllSensitivePolicy",
    "AttributePolicy",
    "DPGuarantee",
    "Dawa",
    "DawaZ",
    "HistogramInput",
    "LambdaPolicy",
    "LaplaceHistogram",
    "OSDPGuarantee",
    "OptInPolicy",
    "OsdpLaplaceHistogram",
    "OsdpLaplaceL1Histogram",
    "OsdpClient",
    "OsdpRR",
    "OsdpRRHistogram",
    "Policy",
    "PrivacyAccountant",
    "ReleaseRequest",
    "ReleaseResponse",
    "SuppressHistogram",
    "__version__",
]
