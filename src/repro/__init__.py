"""repro — a reproduction of *One-sided Differential Privacy* (ICDE 2020).

One-sided differential privacy (OSDP) protects databases in which only
some records are sensitive, as determined by a policy function that is
itself secret.  This package provides:

* the formal core — policies, one-sided neighbors, guarantees, budget
  accounting, an exact verifier, and the exclusion-attack framework
  (:mod:`repro.core`);
* the paper's mechanisms — ``OsdpRR``, ``OsdpLaplace``,
  ``OsdpLaplaceL1``, the ``Suppress`` PDP baseline, DAWA and DAWAz
  (:mod:`repro.mechanisms`);
* data substrates — a synthetic TIPPERS smart-building trace, the
  DPBench-1D histogram suite, and opt-in/opt-out policy simulators
  (:mod:`repro.data`);
* query layers, a from-scratch classification stack, and the full
  experiment harness reproducing every table and figure
  (:mod:`repro.queries`, :mod:`repro.classification`,
  :mod:`repro.evaluation`).

Quickstart::

    import numpy as np
    from repro.core.policy import AttributePolicy
    from repro.mechanisms.osdp_rr import OsdpRR

    policy = AttributePolicy("age", lambda a: a <= 17)   # minors sensitive
    mech = OsdpRR(policy, epsilon=1.0)
    sample = mech.sample(records, np.random.default_rng(0))
"""

__version__ = "1.0.0"

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.core.policy import (
    AllSensitivePolicy,
    AttributePolicy,
    LambdaPolicy,
    OptInPolicy,
    Policy,
)
from repro.mechanisms import (
    Dawa,
    DawaZ,
    LaplaceHistogram,
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
    OsdpRR,
    OsdpRRHistogram,
    SuppressHistogram,
)
from repro.queries.histogram import HistogramInput

__all__ = [
    "AllSensitivePolicy",
    "AttributePolicy",
    "DPGuarantee",
    "Dawa",
    "DawaZ",
    "HistogramInput",
    "LambdaPolicy",
    "LaplaceHistogram",
    "OSDPGuarantee",
    "OptInPolicy",
    "OsdpLaplaceHistogram",
    "OsdpLaplaceL1Histogram",
    "OsdpRR",
    "OsdpRRHistogram",
    "Policy",
    "PrivacyAccountant",
    "SuppressHistogram",
    "__version__",
]
