"""Evaluation harness: error metrics, trial runner, experiment drivers.

The :mod:`repro.evaluation.experiments` package contains one driver per
paper table/figure; the benchmarks call into these with scaled-down
configurations and EXPERIMENTS.md records paper-vs-measured outcomes.
"""

from repro.evaluation.metrics import (
    l1_error,
    mean_relative_error,
    per_bin_relative_error,
    regret,
    regret_table,
    rel_percentile,
)
from repro.evaluation.runner import (
    average_over_trials,
    format_table,
    spawn_rngs,
)

__all__ = [
    "average_over_trials",
    "format_table",
    "l1_error",
    "mean_relative_error",
    "per_bin_relative_error",
    "regret",
    "regret_table",
    "rel_percentile",
    "spawn_rngs",
]
