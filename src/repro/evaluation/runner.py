"""Seeded multi-trial execution and plain-text result tables.

The paper averages every loss over 10 independent executions; the
helpers here keep that reproducible — a root seed spawns independent
child generators per trial — and render results as aligned text tables
for the benchmark harness output.

Two trial protocols coexist:

* :func:`average_over_trials` / :func:`spawn_rngs` — the original
  per-trial loop: one spawned generator and one ``release`` call per
  trial.  Bit-stable with the seed repository's recorded results.
* :func:`release_trials` — the batched path: one generator, one
  ``release_batch`` call producing the whole ``(n_trials, d)`` estimate
  matrix (see :mod:`repro.mechanisms.batch_sampling`).  Same release
  distribution, different streams, several times faster; the default
  for the sweep experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent generators from one root seed."""
    if n < 1:
        raise ValueError("need at least one generator")
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


def average_over_trials(
    fn: Callable[[np.random.Generator], float],
    n_trials: int = 10,
    seed: int = 0,
) -> float:
    """Mean of ``fn(rng)`` over independent trials (the paper's protocol)."""
    rngs = spawn_rngs(seed, n_trials)
    return float(np.mean([fn(rng) for rng in rngs]))


def release_trials(
    mechanism,
    hist,
    n_trials: int = 10,
    seed: int = 0,
    batched: bool = True,
) -> np.ndarray:
    """``n_trials`` releases of ``mechanism`` as an ``(n_trials, d)`` matrix.

    ``batched=True`` (default) runs the mechanism's vectorized
    ``release_batch`` fast path from a single seeded generator;
    ``batched=False`` reproduces the per-trial spawned-generator
    protocol exactly (each row is ``release`` under its own spawned
    stream).  Both are deterministic in ``seed``.
    """
    if batched:
        return mechanism.release_batch(
            hist, np.random.default_rng(seed), n_trials
        )
    return mechanism.release_batch(hist, spawn_rngs(seed, n_trials))


def release_trials_from_database(
    mechanism,
    db,
    query,
    policy,
    n_trials: int = 10,
    seed: int = 0,
    batched: bool = True,
    accountant=None,
) -> np.ndarray:
    """:func:`release_trials` fed straight from any database flavor.

    A seeded convenience wrapper over
    :meth:`repro.mechanisms.base.HistogramMechanism.run`
    (the single front door for build-histogram + charge + release): row,
    columnar and sharded databases all work, the latter evaluating
    policy masks and bincounts per shard (on the database's executor
    when it has one).  One accountant charge covers the trial matrix.
    """
    rng = (
        np.random.default_rng(seed)
        if batched
        else spawn_rngs(seed, n_trials)
    )
    return mechanism.run(
        db, rng, n_trials=n_trials, query=query, policy=policy,
        accountant=accountant,
    )


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned plain-text table (no external dependencies)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered)) if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
