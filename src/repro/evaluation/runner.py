"""Seeded multi-trial execution and plain-text result tables.

The paper averages every loss over 10 independent executions; the
helpers here keep that reproducible — a root seed spawns independent
child generators per trial — and render results as aligned text tables
for the benchmark harness output.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent generators from one root seed."""
    if n < 1:
        raise ValueError("need at least one generator")
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(n)]


def average_over_trials(
    fn: Callable[[np.random.Generator], float],
    n_trials: int = 10,
    seed: int = 0,
) -> float:
    """Mean of ``fn(rng)`` over independent trials (the paper's protocol)."""
    rngs = spawn_rngs(seed, n_trials)
    return float(np.mean([fn(rng) for rng in rngs]))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned plain-text table (no external dependencies)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered)) if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
