"""Result persistence: JSON round-trips and markdown rendering.

Experiment drivers return plain dicts/dataclasses; this module writes
them to disk in a stable, diff-friendly format and renders markdown
tables for EXPERIMENTS.md-style reports.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Mapping, Sequence


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalars and arrays
        return value.tolist()
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def save_results(results, path: str | Path) -> Path:
    """Write experiment results as pretty-printed, key-sorted JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(results), indent=2, sort_keys=True) + "\n")
    return path


def load_results(path: str | Path) -> dict:
    """Read results previously written by :func:`save_results`."""
    return json.loads(Path(path).read_text())


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4g}",
) -> str:
    """Render a GitHub-flavored markdown table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(render(c) for c in row) + " |")
    return "\n".join(lines)


def nested_dict_to_rows(
    table: Mapping, row_label: str = "key"
) -> tuple[list[str], list[list[object]]]:
    """Flatten {row: {col: value}} into (headers, rows) for rendering.

    Column order follows the first row's insertion order; missing cells
    render as empty strings.
    """
    if not table:
        raise ValueError("cannot render an empty table")
    first = next(iter(table.values()))
    if not isinstance(first, Mapping):
        raise ValueError("expected a two-level {row: {col: value}} mapping")
    columns = list(first)
    headers = [row_label, *map(str, columns)]
    rows = [
        [row_key] + [cells.get(col, "") for col in columns]
        for row_key, cells in table.items()
    ]
    return headers, rows
