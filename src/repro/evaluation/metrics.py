"""Error metrics of Section 6.2 and the regret measure of Section 6.3.3.

* mean relative error (MRE): ``mean_i |x_i - xhat_i| / max(x_i, delta)``
  with ``delta = 1`` throughout the paper;
* per-bin relative error and its percentiles: ``Rel50`` (median) and
  ``Rel95`` capture typical and worst-case bin error;
* regret: an algorithm's error divided by the best error any algorithm
  in the comparison pool achieved on the *same input* — the paper's
  device for aggregating across datasets with wildly different error
  scales.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

DEFAULT_DELTA = 1.0


def _as_pair(x: np.ndarray, estimate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if x.shape != estimate.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {estimate.shape}")
    return x, estimate


def per_bin_relative_error(
    x: np.ndarray, estimate: np.ndarray, delta: float = DEFAULT_DELTA
) -> np.ndarray:
    """``|x_i - xhat_i| / max(x_i, delta)`` per bin (the paper's Rel)."""
    x, estimate = _as_pair(x, estimate)
    return np.abs(x - estimate) / np.maximum(x, delta)


def mean_relative_error(
    x: np.ndarray, estimate: np.ndarray, delta: float = DEFAULT_DELTA
) -> float:
    """MRE: the mean of the per-bin relative errors."""
    return float(per_bin_relative_error(x, estimate, delta).mean())


def rel_percentile(
    x: np.ndarray,
    estimate: np.ndarray,
    percentile: float,
    delta: float = DEFAULT_DELTA,
) -> float:
    """Percentile of the per-bin relative error (Rel50, Rel95, ...)."""
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must lie in [0, 100]")
    return float(
        np.percentile(per_bin_relative_error(x, estimate, delta), percentile)
    )


def relative_error_rows(
    x: np.ndarray, estimates: np.ndarray, delta: float = DEFAULT_DELTA
) -> np.ndarray:
    """Per-bin relative errors for a whole ``(n_trials, d)`` release matrix.

    One broadcasted pass for all trials — the batched counterpart of
    :func:`per_bin_relative_error` used by the multi-trial sweeps.
    """
    x = np.asarray(x, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    if estimates.ndim != 2 or estimates.shape[1] != x.shape[0]:
        raise ValueError(
            f"estimates must be (n_trials, {x.shape[0]}), got {estimates.shape}"
        )
    return np.abs(x[None, :] - estimates) / np.maximum(x, delta)[None, :]


def mean_relative_error_rows(
    x: np.ndarray, estimates: np.ndarray, delta: float = DEFAULT_DELTA
) -> np.ndarray:
    """MRE per trial row; ``result[i] == mean_relative_error(x, estimates[i])``."""
    return relative_error_rows(x, estimates, delta).mean(axis=1)


def rel_percentile_rows(
    x: np.ndarray,
    estimates: np.ndarray,
    percentile: float,
    delta: float = DEFAULT_DELTA,
) -> np.ndarray:
    """Rel percentile per trial row (vectorized ``rel_percentile``)."""
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must lie in [0, 100]")
    return np.percentile(
        relative_error_rows(x, estimates, delta), percentile, axis=1
    )


def l1_error(x: np.ndarray, estimate: np.ndarray) -> float:
    """Total absolute error ``||x - xhat||_1``."""
    x, estimate = _as_pair(x, estimate)
    return float(np.abs(x - estimate).sum())


def l2_error(x: np.ndarray, estimate: np.ndarray) -> float:
    """Euclidean error ``||x - xhat||_2``."""
    x, estimate = _as_pair(x, estimate)
    return float(np.linalg.norm(x - estimate))


def regret(error: float, optimal_error: float) -> float:
    """``error / optimal_error``; >= 1 with 1 meaning per-input optimal.

    When the optimum is exactly 0 (an algorithm nailed the input), any
    nonzero error has infinite regret and zero error has regret 1.
    """
    if error < 0 or optimal_error < 0:
        raise ValueError("errors must be non-negative")
    if optimal_error == 0.0:
        return 1.0 if error == 0.0 else float("inf")
    return error / optimal_error


def regret_table(errors: Mapping[str, float]) -> dict[str, float]:
    """Per-algorithm regret relative to the pool's best error."""
    if not errors:
        raise ValueError("need at least one algorithm's error")
    optimal = min(errors.values())
    return {name: regret(err, optimal) for name, err in errors.items()}
