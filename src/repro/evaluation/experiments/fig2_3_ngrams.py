"""Figs 2 & 3: MRE of high-dimensional n-gram histograms (§6.3.2).

Task: count, per n-gram (n consecutive APs in a daily trajectory), the
number of trajectories containing it — a histogram over ``64**n`` cells.
Algorithms:

* **All NS** — exact counts over the non-sensitive trajectories (not
  OSDP; the PDP/Threshold strategy);
* **OsdpRR** — exact counts over an Algorithm-1 sample of the
  non-sensitive trajectories (OSDP; zero cells stay exactly zero);
* **LM T1** — Laplace mechanism with truncation k = 1 (sensitivity 2):
  the DP baseline;
* **LM T\\*** — Laplace mechanism with the (non-private) error-optimal
  truncation, selected by sweeping k.

The Laplace baselines conceptually perturb *every* cell of the 64**n
domain; only the truth's support is materialized and the zero cells'
expected contribution ``E|Lap(2k/eps)| = 2k/eps`` per cell enters the
MRE analytically — the paper's own accounting (§6.3.2).

Expected shape: All NS <= OsdpRR with a modest gap; at eps = 1 LM is
comparable to OsdpRR near the 50% policy; at eps = 0.01 LM is an order
of magnitude worse everywhere.

By default the experiment runs **columnar**: the trace comes from
:func:`repro.data.tippers.generate_tippers_columnar` (stream-identical
to the row generator, no ``Trajectory`` objects), policies from
:func:`repro.data.tippers.policy_for_fraction_columnar`, selections
from vectorized masks, and n-gram counting from
:meth:`repro.queries.ngram.NGramCounter.count_columnar`.  Both paths
consume identical rng streams over identical supports, so the reported
numbers are **bit-identical** (``tests/test_ngram.py`` pins it);
``columnar=False`` keeps the row-object reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.policy import NON_SENSITIVE
from repro.data.tippers import (
    TippersConfig,
    TippersDataset,
    generate_tippers,
    generate_tippers_columnar,
    policy_for_fraction_columnar,
)
from repro.evaluation.runner import spawn_rngs
from repro.mechanisms.osdp_rr import release_probability
from repro.queries.ngram import NGramCounter, SparseHistogram, sparse_mre


@dataclass(frozen=True)
class NGramConfig:
    """Configuration for the Fig 2/3 n-gram experiments."""

    tippers: TippersConfig = field(
        default_factory=lambda: TippersConfig(n_users=400, n_days=50, seed=7)
    )
    n: int = 4
    policies: tuple[float, ...] = (99, 90, 75, 50, 25, 10, 1)
    epsilons: tuple[float, ...] = (1.0, 0.01)
    truncation_sweep: tuple[int, ...] = (1, 2, 3, 5, 8)
    n_trials: int = 5
    seed: int = 0
    columnar: bool = True


def _laplace_ngram_mre(
    truth: SparseHistogram,
    truncated: SparseHistogram,
    epsilon: float,
    k: int,
    rng: np.random.Generator,
) -> float:
    """MRE of the truncated-Laplace release, zero cells analytic."""
    scale = 2.0 * k / epsilon
    support = sorted(truth.support() | truncated.support())
    noise = rng.laplace(scale=scale, size=len(support))
    estimate = {
        gram: truncated[gram] + noise[i] for i, gram in enumerate(support)
    }
    return sparse_mre(
        truth, estimate, expected_abs_noise_on_zeros=scale
    )


def _osdp_rr_mre(
    truth: SparseHistogram,
    counter: NGramCounter,
    dataset_ns: list,
    epsilon: float,
    rng: np.random.Generator,
) -> float:
    keep = rng.random(len(dataset_ns)) < release_probability(epsilon)
    sample = [t for t, k in zip(dataset_ns, keep) if k]
    estimate = counter.count(sample)
    return sparse_mre(truth, estimate.counts)


def _osdp_rr_mre_columnar(
    truth: SparseHistogram,
    counter: NGramCounter,
    ns_db,
    epsilon: float,
    rng: np.random.Generator,
) -> float:
    """The columnar twin of :func:`_osdp_rr_mre`.

    The Bernoulli draw has the same length and consumes the same rng
    stream as the row path (``len(ns_db)`` equals the row path's
    non-sensitive count), so the sampled record set — and hence the
    MRE — is bit-identical.
    """
    keep = rng.random(len(ns_db)) < release_probability(epsilon)
    estimate = counter.count_columnar(ns_db.select(keep))
    return sparse_mre(truth, estimate.counts)


class _ColumnarTrace:
    """Data-access layer of the columnar path (no row objects)."""

    def __init__(self, config: NGramConfig):
        self.config = config
        self.db = generate_tippers_columnar(config.tippers)

    def count(self, counter: NGramCounter) -> SparseHistogram:
        return counter.count_columnar(self.db)

    def policy_rows(self, rho: float):
        policy = policy_for_fraction_columnar(
            self.db, rho, self.config.tippers.n_aps
        )
        return self.db.select(
            policy.evaluate_batch(self.db) == NON_SENSITIVE
        )

    osdp_mre = staticmethod(_osdp_rr_mre_columnar)


class _RowTrace:
    """Data-access layer of the reference row path."""

    def __init__(self, config: NGramConfig):
        self.dataset: TippersDataset = generate_tippers(config.tippers)

    def count(self, counter: NGramCounter) -> SparseHistogram:
        return counter.count(self.dataset.trajectories)

    def policy_rows(self, rho: float):
        policy = self.dataset.policy_for_fraction(rho)
        return [
            t
            for t in self.dataset.trajectories
            if policy.is_non_sensitive(t)
        ]

    osdp_mre = staticmethod(_osdp_rr_mre)


def run_ngram_experiment(config: NGramConfig | None = None) -> dict:
    """Run the Fig 2 (n=4) or Fig 3 (n=5) sweep.

    Returns ``{"mre": {eps: {policy: {algo: MRE}}}, "lm_kstar": k}`` —
    the LM rows are policy-independent (the paper draws them as
    horizontal lines) but are repeated per policy for uniformity.  The
    two data paths (``config.columnar``) differ only in *how* counts
    and selections are computed, never in which values the rngs see, so
    they report identical numbers.
    """
    config = config or NGramConfig()
    trace = _ColumnarTrace(config) if config.columnar else _RowTrace(config)

    counter_full = NGramCounter(n=config.n, n_aps=config.tippers.n_aps)
    truth = trace.count(counter_full)

    results: dict[float, dict[float, dict[str, float]]] = {}
    lm_kstar: dict[float, int] = {}
    for epsilon in config.epsilons:
        results[epsilon] = {}
        rngs = spawn_rngs(config.seed, config.n_trials)

        # LM errors are policy independent: compute once per epsilon.
        lm_by_k: dict[int, float] = {}
        for k in config.truncation_sweep:
            truncated = trace.count(
                NGramCounter(
                    n=config.n, n_aps=config.tippers.n_aps, truncation=k
                )
            )
            lm_by_k[k] = float(
                np.mean(
                    [
                        _laplace_ngram_mre(truth, truncated, epsilon, k, rng)
                        for rng in spawn_rngs(config.seed + k, config.n_trials)
                    ]
                )
            )
        best_k = min(lm_by_k, key=lm_by_k.__getitem__)
        lm_kstar[epsilon] = best_k
        lm_t1 = lm_by_k[min(config.truncation_sweep)]
        lm_tstar = lm_by_k[best_k]

        for rho in config.policies:
            non_sensitive = trace.policy_rows(rho)
            all_ns_estimate = (
                counter_full.count_columnar(non_sensitive)
                if config.columnar
                else counter_full.count(non_sensitive)
            )
            all_ns = sparse_mre(truth, all_ns_estimate.counts)
            osdp_rr = float(
                np.mean(
                    [
                        trace.osdp_mre(
                            truth, counter_full, non_sensitive, epsilon, rng
                        )
                        for rng in rngs
                    ]
                )
            )
            results[epsilon][rho] = {
                "all_ns": all_ns,
                "osdp_rr": osdp_rr,
                "lm_t1": lm_t1,
                "lm_tstar": lm_tstar,
            }
    return {
        "mre": results,
        "lm_kstar": lm_kstar,
        "n_support": len(truth),
        "domain_size": truth.domain_size,
    }
