"""Table 1: percentage of non-sensitive records released by OsdpRR vs eps.

The paper reports ~63% at eps = 1.0, ~39% at eps = 0.5 and ~9.5% at
eps = 0.1 — the retention probability ``1 - e^-eps``.  The driver
produces both the analytic values and a Monte-Carlo confirmation using
the record-level mechanism on a synthetic opt-in database.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import OptInPolicy
from repro.mechanisms.osdp_rr import OsdpRR, release_probability

PAPER_EPSILONS = (1.0, 0.5, 0.1)


def expected_release_percentages(
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
) -> dict[float, float]:
    """Analytic release percentages ``100 * (1 - e^-eps)``."""
    return {eps: 100.0 * release_probability(eps) for eps in epsilons}


def monte_carlo_release_percentages(
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    n_records: int = 20_000,
    non_sensitive_fraction: float = 0.8,
    n_trials: int = 5,
    seed: int = 0,
) -> dict[float, float]:
    """Measured release rates of Algorithm 1 on a synthetic database.

    The rate is measured as released / non-sensitive, matching Table 1's
    "% of released ns records".
    """
    rng = np.random.default_rng(seed)
    records = [
        {"opt_in": bool(rng.random() < non_sensitive_fraction)}
        for _ in range(n_records)
    ]
    policy = OptInPolicy()
    n_non_sensitive = sum(1 for r in records if policy.is_non_sensitive(r))
    results: dict[float, float] = {}
    for eps in epsilons:
        mech = OsdpRR(policy, eps)
        rates = []
        for _ in range(n_trials):
            released = mech.sample(records, rng)
            rates.append(100.0 * len(released) / n_non_sensitive)
        results[eps] = float(np.mean(rates))
    return results
