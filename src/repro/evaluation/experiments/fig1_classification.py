"""Fig 1: resident-vs-visitor classification error (1 - AUC) per policy.

Four strategies, per the paper (§6.3.1):

* **All NS** — non-private logistic regression on all non-sensitive
  trajectories (the PDP Threshold strategy; exclusion-attack prone);
* **OsdpRR** — Algorithm 1 samples the non-sensitive trajectories and a
  non-private LR is trained on the released true records;
* **ObjDP** — objective-perturbation DP logistic regression over *all*
  trajectories (everything treated as sensitive);
* **Random** — label-distribution-only baseline (1 - AUC ≈ 0.5).

Protocol: stratified k-fold cross-validation over the full trajectory
set; each strategy trains on its available subset of the training fold
and is scored on the *complete* test fold, so all strategies face the
same prediction task.  Labels come from the paper's behavioral
heuristic applied to the synthetic trace.

Expected shape (paper): OsdpRR tracks All NS closely (absolute error
near 10%), both degrade as the non-sensitive fraction shrinks; ObjDP
sits near Random at both eps = 1 and eps = 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classification.features import TrajectoryFeaturizer, resident_labels
from repro.classification.logistic import LogisticRegression
from repro.classification.metrics import roc_auc, stratified_kfold
from repro.classification.objective_perturbation import (
    ObjectivePerturbationLR,
    normalize_rows,
)
from repro.data.tippers import TippersConfig, generate_tippers
from repro.mechanisms.osdp_rr import release_probability

ALGORITHMS = ("all_ns", "osdp_rr", "objdp", "random")


@dataclass(frozen=True)
class Fig1Config:
    """Laptop-scale defaults for the Fig 1 experiment."""

    tippers: TippersConfig = field(
        default_factory=lambda: TippersConfig(n_users=400, n_days=50, seed=7)
    )
    policies: tuple[float, ...] = (99, 90, 75, 50, 25, 10, 1)
    epsilons: tuple[float, ...] = (1.0, 0.01)
    cv_folds: int = 10
    min_pattern_support: int = 30
    lr_lambda: float = 1e-3
    seed: int = 0


def _fold_error(
    X: np.ndarray,
    y: np.ndarray,
    train_mask: np.ndarray,
    strategy: str,
    non_sensitive: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    config: Fig1Config,
) -> tuple[np.ndarray | None, object | None]:
    """Select the training subset and fit the strategy's model."""
    train_idx = np.flatnonzero(train_mask)
    if strategy == "all_ns":
        chosen = train_idx[non_sensitive[train_idx]]
        model: object = LogisticRegression(lam=config.lr_lambda)
    elif strategy == "osdp_rr":
        candidates = train_idx[non_sensitive[train_idx]]
        keep = rng.random(len(candidates)) < release_probability(epsilon)
        chosen = candidates[keep]
        model = LogisticRegression(lam=config.lr_lambda)
    elif strategy == "objdp":
        chosen = train_idx
        model = ObjectivePerturbationLR(epsilon=epsilon, lam=1e-2)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    # A strategy whose available training data collapses (too few
    # records, or a single class — e.g. OsdpRR at eps = 0.01 on a small
    # trace, or All NS under P1) cannot learn; it is scored at
    # random-baseline level rather than dropped.
    if len(chosen) < 10 or len(np.unique(y[chosen])) < 2:
        return None, None
    if strategy == "objdp":
        model.fit(normalize_rows(X[chosen]), y[chosen], rng=rng)
    else:
        model.fit(X[chosen], y[chosen])
    return chosen, model


def run_fig1(config: Fig1Config | None = None) -> dict:
    """Run the full Fig 1 sweep.

    Returns ``{"errors": {eps: {policy_rho: {algorithm: 1 - AUC}}},
    "n_trajectories": ..., "resident_fraction": ...}``.
    """
    config = config or Fig1Config()
    dataset = generate_tippers(config.tippers)
    trajectories = dataset.trajectories
    user_labels = dataset.heuristic_resident_labels()
    y = resident_labels(trajectories, user_labels)

    featurizer = TrajectoryFeaturizer(
        n_aps=config.tippers.n_aps, min_support=config.min_pattern_support
    )
    X = featurizer.fit_transform(trajectories)

    rng = np.random.default_rng(config.seed)
    errors: dict[float, dict[float, dict[str, float]]] = {}
    for epsilon in config.epsilons:
        errors[epsilon] = {}
        for rho in config.policies:
            policy = dataset.policy_for_fraction(rho)
            non_sensitive = np.array(
                [policy.is_non_sensitive(t) for t in trajectories]
            )
            fold_rng = np.random.default_rng([config.seed, int(rho * 100)])
            per_algo: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
            for train, test in stratified_kfold(y, config.cv_folds, fold_rng):
                if len(np.unique(y[test])) < 2:
                    continue
                train_mask = np.zeros(len(y), dtype=bool)
                train_mask[train] = True
                for strategy in ("all_ns", "osdp_rr", "objdp"):
                    chosen, model = _fold_error(
                        X, y, train_mask, strategy, non_sensitive,
                        epsilon, rng, config,
                    )
                    if model is None:
                        # Untrainable: random-level predictions.
                        per_algo[strategy].append(
                            1.0 - roc_auc(y[test], rng.uniform(size=len(test)))
                        )
                        continue
                    test_X = X[test]
                    if strategy == "objdp":
                        test_X = normalize_rows(test_X)
                    scores = model.decision_function(test_X)
                    per_algo[strategy].append(1.0 - roc_auc(y[test], scores))
                per_algo["random"].append(
                    1.0 - roc_auc(y[test], rng.uniform(size=len(test)))
                )
            errors[epsilon][rho] = {
                algo: float(np.mean(vals)) if vals else float("nan")
                for algo, vals in per_algo.items()
            }
    return {
        "errors": errors,
        "n_trajectories": len(trajectories),
        "resident_fraction": float(np.mean(y)),
    }
