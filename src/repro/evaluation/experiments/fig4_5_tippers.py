"""Figs 4 & 5: low-dimensional 2-D histogram release on TIPPERS (§6.3.3.1).

The query counts user-day presence events per (AP, hour) cell — a
64 x 24 histogram.  The policy is *value based* (an event at a sensitive
AP is sensitive), so every bin is purely sensitive or purely
non-sensitive; ``OsdpLaplaceL1`` is therefore run in its hybrid form —
ordinary Laplace noise on the sensitive bins, one-sided noise on the
rest — exactly the construction the paper describes for this figure.

Algorithms: OsdpLaplaceL1 (hybrid), DAWAz, DAWA.  Metrics: MRE for
eps in {1, 0.01} (Fig 4), Rel50 and Rel95 at eps = 1 (Fig 5).

Expected shape: OSDP algorithms beat DAWA for policies with >= 25%
non-sensitive records at eps = 1; at eps = 0.01 DAWAz stays competitive
everywhere while the pure OSDP primitive loses below ~25%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.tippers import TippersConfig, generate_tippers
from repro.evaluation.metrics import mean_relative_error, rel_percentile
from repro.evaluation.runner import spawn_rngs
from repro.mechanisms.dawa import Dawa
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.osdp_laplace import HybridOsdpLaplace
from repro.queries.histogram import HistogramInput

ALGORITHMS = ("osdp_laplace_l1", "dawaz", "dawa")
N_HOURS = 24


@dataclass(frozen=True)
class TippersHistogramConfig:
    """Configuration for the Fig 4/5 experiments."""

    tippers: TippersConfig = field(
        default_factory=lambda: TippersConfig(n_users=400, n_days=50, seed=7)
    )
    policies: tuple[float, ...] = (99, 90, 75, 50, 25, 10, 1)
    epsilons: tuple[float, ...] = (1.0, 0.01)
    n_trials: int = 10
    seed: int = 0


def build_histogram_input(dataset, policy) -> HistogramInput:
    """(AP, hour) event histogram split by the AP-level policy."""
    n_aps = dataset.config.n_aps
    x = np.zeros(n_aps * N_HOURS, dtype=float)
    x_ns = np.zeros_like(x)
    sensitive_aps = policy.sensitive_aps
    for _user, _day, ap, hour in dataset.presence_events():
        index = ap * N_HOURS + hour
        x[index] += 1.0
        if ap not in sensitive_aps:
            x_ns[index] += 1.0
    mask = np.zeros(n_aps * N_HOURS, dtype=bool)
    for ap in sensitive_aps:
        mask[ap * N_HOURS : (ap + 1) * N_HOURS] = True
    return HistogramInput(x=x, x_ns=x_ns, sensitive_bin_mask=mask)


def _make_mechanism(name: str, epsilon: float):
    if name == "osdp_laplace_l1":
        return HybridOsdpLaplace(epsilon)
    if name == "dawaz":
        return DawaZ(epsilon)
    if name == "dawa":
        return Dawa(epsilon)
    raise ValueError(f"unknown algorithm {name!r}")


def run_tippers_histogram(config: TippersHistogramConfig | None = None) -> dict:
    """Run the Fig 4/5 sweep.

    Returns ``{"mre": {eps: {policy: {algo: value}}},
    "rel50"/"rel95": {policy: {algo: value}}  (at the first epsilon)}``.
    """
    config = config or TippersHistogramConfig()
    dataset = generate_tippers(config.tippers)

    mre: dict[float, dict[float, dict[str, float]]] = {}
    rel50: dict[float, dict[str, float]] = {}
    rel95: dict[float, dict[str, float]] = {}

    for epsilon in config.epsilons:
        mre[epsilon] = {}
        for rho in config.policies:
            policy = dataset.policy_for_fraction(rho)
            hist = build_histogram_input(dataset, policy)
            per_algo_mre: dict[str, float] = {}
            per_algo_rel50: dict[str, float] = {}
            per_algo_rel95: dict[str, float] = {}
            for name in ALGORITHMS:
                mech = _make_mechanism(name, epsilon)
                mres, r50s, r95s = [], [], []
                for rng in spawn_rngs(config.seed, config.n_trials):
                    estimate = mech.release(hist, rng)
                    mres.append(mean_relative_error(hist.x, estimate))
                    r50s.append(rel_percentile(hist.x, estimate, 50))
                    r95s.append(rel_percentile(hist.x, estimate, 95))
                per_algo_mre[name] = float(np.mean(mres))
                per_algo_rel50[name] = float(np.mean(r50s))
                per_algo_rel95[name] = float(np.mean(r95s))
            mre[epsilon][rho] = per_algo_mre
            if epsilon == config.epsilons[0]:
                rel50[rho] = per_algo_rel50
                rel95[rho] = per_algo_rel95
    return {"mre": mre, "rel50": rel50, "rel95": rel95}
