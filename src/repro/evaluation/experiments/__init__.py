"""Experiment drivers, one per paper table/figure (see DESIGN.md §3).

Each driver returns plain data structures (dicts / dataclasses) and the
corresponding benchmark module renders the same rows/series the paper
reports.  Configurations default to laptop-scale versions of the
paper's setups; every driver is deterministic in its seed.
"""

from repro.evaluation.experiments.table1 import (
    expected_release_percentages,
    monte_carlo_release_percentages,
)
from repro.evaluation.experiments.fig1_classification import Fig1Config, run_fig1
from repro.evaluation.experiments.fig2_3_ngrams import NGramConfig, run_ngram_experiment
from repro.evaluation.experiments.fig4_5_tippers import (
    TippersHistogramConfig,
    run_tippers_histogram,
)
from repro.evaluation.experiments.fig6_10_dpbench import (
    DPBenchConfig,
    aggregate_regret,
    run_dpbench_sweep,
)

__all__ = [
    "DPBenchConfig",
    "Fig1Config",
    "NGramConfig",
    "TippersHistogramConfig",
    "aggregate_regret",
    "expected_release_percentages",
    "monte_carlo_release_percentages",
    "run_dpbench_sweep",
    "run_fig1",
    "run_ngram_experiment",
    "run_tippers_histogram",
]
