"""Figs 6-10: the DPBench-1D regret study (§6.3.3.2).

The sweep crosses 7 benchmark histograms x 2 simulated policies
(Close = MSampling, Far = HiLoSampling) x 7 non-sensitive ratios x
epsilons x an algorithm pool of 4 OSDP algorithms (OsdpRR,
OsdpLaplace, OsdpLaplaceL1, DAWAz) and 2 DP algorithms (Laplace, DAWA).
Because error scales differ wildly across inputs, results aggregate as
*regret*: an algorithm's error divided by the best error any pool
algorithm achieved on the identical input.

Figure mapping:

* Fig 6 — average MRE-regret by ratio, both policies, eps in {1, 0.01};
* Fig 7 — MRE-regret by ratio split by policy (eps = 1, rho >= 0.25);
* Fig 8 — Rel95-regret by ratio split by policy (eps = 1);
* Fig 9 — per-dataset MRE-regret, Close policy, rho in {0.99, 0.5};
* Fig 10 — OsdpLaplaceL1 vs the PDP Suppress(tau = 10, 100) baselines.

Expected shape: OSDP wins for rho >= 0.25 and loses below; DAWAz
dominates at eps = 0.01 and on Far policies; sparse datasets (Adult,
Nettrace) give OSDP its largest advantage (up to ~25x in the paper);
Suppress approaches competitiveness only at tau ~ 100, i.e. at 100x
weaker exclusion-attack protection.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import hilo_sampling, m_sampling
from repro.evaluation.metrics import (
    mean_relative_error_rows,
    rel_percentile_rows,
)
from repro.evaluation.runner import release_trials
from repro.mechanisms.dawa import Dawa
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import (
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
)
from repro.mechanisms.osdp_rr import OsdpRRHistogram
from repro.mechanisms.suppress import SuppressHistogram
from repro.queries.histogram import HistogramInput

OSDP_POOL = ("osdp_rr", "osdp_laplace", "osdp_laplace_l1", "dawaz")
DP_POOL = ("laplace", "dawa")
DEFAULT_POOL = OSDP_POOL + DP_POOL

PAPER_RATIOS = (0.99, 0.90, 0.75, 0.50, 0.25, 0.10, 0.01)
PAPER_DATASETS = (
    "adult",
    "nettrace",
    "medcost",
    "searchlogs",
    "income",
    "hepth",
    "patent",
)


def make_mechanism(name: str, epsilon: float, ns_ratio: float | None = None):
    """Factory covering the full pool plus ``suppress<tau>`` names.

    ``ns_ratio`` enables the inverse-ratio de-biasing of the pure OSDP
    primitives — appropriate for the opt-in/opt-out policy simulations
    where the sampling ratio is an experiment parameter (and privately
    estimable in a deployment); see EXPERIMENTS.md.  DAWAz and the DP
    algorithms need no correction (they consume the full histogram).
    """
    factories = {
        "osdp_rr": lambda: OsdpRRHistogram(epsilon, scaled=True, ns_ratio=ns_ratio),
        "osdp_laplace": lambda: OsdpLaplaceHistogram(epsilon, ns_ratio=ns_ratio),
        "osdp_laplace_l1": lambda: OsdpLaplaceL1Histogram(epsilon, ns_ratio=ns_ratio),
        "dawaz": lambda: DawaZ(epsilon),
        "dawa": lambda: Dawa(epsilon),
        "laplace": lambda: LaplaceHistogram(epsilon),
    }
    if name in factories:
        return factories[name]()
    if name.startswith("suppress"):
        return SuppressHistogram(tau=float(name[len("suppress") :]), ns_ratio=ns_ratio)
    raise ValueError(f"unknown algorithm {name!r}")


@dataclass(frozen=True)
class DPBenchConfig:
    """Sweep configuration (defaults mirror the paper's grid).

    ``batched=True`` runs each cell through the mechanisms'
    ``release_batch`` fast path (same release distribution, one noise
    matrix per cell); ``batched=False`` restores the per-trial
    spawned-generator loop of the original protocol.
    """

    datasets: tuple[str, ...] = PAPER_DATASETS
    ratios: tuple[float, ...] = PAPER_RATIOS
    policies: tuple[str, ...] = ("close", "far")
    epsilons: tuple[float, ...] = (1.0, 0.01)
    algorithms: tuple[str, ...] = DEFAULT_POOL
    n_trials: int = 10
    seed: int = 0
    batched: bool = True


@dataclass(frozen=True)
class SweepRecord:
    """Averaged metrics for one (input, epsilon, algorithm) cell."""

    dataset: str
    policy: str
    rho: float
    epsilon: float
    algorithm: str
    mre: float
    rel50: float
    rel95: float

    def metric(self, name: str) -> float:
        return {"mre": self.mre, "rel50": self.rel50, "rel95": self.rel95}[name]


def _sample_policy(
    x: np.ndarray, policy: str, rho: float, rng: np.random.Generator
) -> np.ndarray:
    if policy == "close":
        return m_sampling(x, rho, rng).x_ns
    if policy == "far":
        return hilo_sampling(x, rho, rng).x_ns
    raise ValueError(f"unknown policy {policy!r}")


def run_dpbench_sweep(config: DPBenchConfig | None = None) -> list[SweepRecord]:
    """Run the full sweep; deterministic in ``config.seed``."""
    config = config or DPBenchConfig()
    records: list[SweepRecord] = []
    for dataset in config.datasets:
        x = generate_dpbench(dataset, seed=config.seed).astype(float)
        for policy in config.policies:
            for rho in config.ratios:
                # crc32, not hash(): str hashing is randomized per
                # process, which made the simulated policies differ
                # between interpreter runs.
                sample_rng = np.random.default_rng(
                    [
                        config.seed,
                        zlib.crc32(f"{dataset}|{policy}".encode()),
                        int(rho * 100),
                    ]
                )
                x_ns = _sample_policy(x, policy, rho, sample_rng).astype(float)
                hist = HistogramInput(x=x, x_ns=x_ns)
                for epsilon in config.epsilons:
                    for algorithm in config.algorithms:
                        mech = make_mechanism(algorithm, epsilon, ns_ratio=rho)
                        # Batched trial protocol: one (n_trials, d)
                        # release matrix per cell, metrics vectorized
                        # over the rows.
                        estimates = release_trials(
                            mech,
                            hist,
                            n_trials=config.n_trials,
                            seed=config.seed,
                            batched=config.batched,
                        )
                        rel = mean_relative_error_rows(x, estimates)
                        r50 = rel_percentile_rows(x, estimates, 50)
                        r95 = rel_percentile_rows(x, estimates, 95)
                        records.append(
                            SweepRecord(
                                dataset=dataset,
                                policy=policy,
                                rho=rho,
                                epsilon=epsilon,
                                algorithm=algorithm,
                                mre=float(rel.mean()),
                                rel50=float(r50.mean()),
                                rel95=float(r95.mean()),
                            )
                        )
    return records


def _input_key(record: SweepRecord) -> tuple:
    return (record.dataset, record.policy, record.rho, record.epsilon)


def per_input_regret(
    records: Sequence[SweepRecord],
    metric: str = "mre",
    pool: tuple[str, ...] = DEFAULT_POOL,
    optimum_floor: float = 1e-3,
) -> dict[tuple, dict[str, float]]:
    """Regret of every algorithm on every input, optimum over ``pool``.

    Algorithms outside the pool (e.g. the Suppress variants in Fig 10)
    still receive a regret value — relative to the pool's optimum — but
    do not influence it, matching the paper's framing of Suppress as a
    non-member comparison point.

    ``optimum_floor`` bounds the denominator away from zero: on very
    sparse inputs an OSDP algorithm can achieve *exactly* zero Rel50 or
    Rel95, which would make every competitor's regret infinite and
    poison group averages.  The default 1e-3 treats sub-0.1% relative
    error as "perfect" — regret reads as "times worse than the better of
    the pool optimum and a 0.1% error".
    """
    if optimum_floor <= 0:
        raise ValueError("optimum_floor must be positive")
    by_input: dict[tuple, dict[str, float]] = {}
    for record in records:
        by_input.setdefault(_input_key(record), {})[record.algorithm] = record.metric(
            metric
        )
    regrets: dict[tuple, dict[str, float]] = {}
    for key, errors in by_input.items():
        pool_errors = {a: e for a, e in errors.items() if a in pool}
        if not pool_errors:
            continue
        optimum = max(min(pool_errors.values()), optimum_floor)
        regrets[key] = {
            algo: max(error / optimum, 1.0) if algo in pool else error / optimum
            for algo, error in errors.items()
        }
    return regrets


def aggregate_regret(
    records: Sequence[SweepRecord],
    metric: str = "mre",
    group_by: str = "rho",
    pool: tuple[str, ...] = DEFAULT_POOL,
    where: Mapping[str, object] | None = None,
) -> dict[object, dict[str, float]]:
    """Average regret grouped by an input attribute, with filters.

    ``group_by`` is one of ``dataset | policy | rho | epsilon``;
    ``where`` filters inputs, e.g. ``{"policy": "close", "epsilon": 1.0}``.
    Values are mean regret per algorithm within the group — the y-axis
    of Figs 6-10.
    """
    where = dict(where or {})
    regrets = per_input_regret(records, metric=metric, pool=pool)
    attr_index = {"dataset": 0, "policy": 1, "rho": 2, "epsilon": 3}
    if group_by not in attr_index:
        raise ValueError(f"cannot group by {group_by!r}")
    grouped: dict[object, dict[str, list[float]]] = {}
    for key, algo_regrets in regrets.items():
        keep = all(
            key[attr_index[attr]] == value for attr, value in where.items()
        )
        if not keep:
            continue
        group = key[attr_index[group_by]]
        bucket = grouped.setdefault(group, {})
        for algo, value in algo_regrets.items():
            bucket.setdefault(algo, []).append(value)
    return {
        group: {algo: float(np.mean(vals)) for algo, vals in bucket.items()}
        for group, bucket in grouped.items()
    }


def overall_average_regret(
    records: Sequence[SweepRecord],
    metric: str = "mre",
    pool: tuple[str, ...] = DEFAULT_POOL,
    where: Mapping[str, object] | None = None,
) -> dict[str, float]:
    """The 'Avg' bar of Figs 6-9: mean regret over all matching inputs."""
    where = dict(where or {})
    regrets = per_input_regret(records, metric=metric, pool=pool)
    attr_index = {"dataset": 0, "policy": 1, "rho": 2, "epsilon": 3}
    totals: dict[str, list[float]] = {}
    for key, algo_regrets in regrets.items():
        if not all(key[attr_index[a]] == v for a, v in where.items()):
            continue
        for algo, value in algo_regrets.items():
            totals.setdefault(algo, []).append(value)
    return {algo: float(np.mean(vals)) for algo, vals in totals.items()}
