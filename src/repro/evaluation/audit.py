"""Empirical privacy audits: one-run odds-ratio lower bounds.

The OSDP guarantee (Definition 3.2) is an inequality over output
events: for every database ``D`` and every one-sided neighbor ``D'``
(a sensitive record of ``D`` replaced by an arbitrary record),

    P[M(D) in S] <= e^eps * P[M(D') in S]   for all S.

The audit here is the classical two-world frequency test, in the spirit
of recent one-run auditing work (Xiang et al., "Tight Privacy Audit in
One Run"): run the mechanism many times on a fixed neighboring pair,
histogram the outputs over a shared discretization, and report the
largest observed odds ratio.  Its log is an *empirical lower bound* on
the mechanism's true epsilon — sampling error aside, no mechanism can
produce a ratio above ``e^eps`` on any event, while a broken mechanism
(e.g. noise at half scale) shows ratios near ``e^{2 eps}``.

Two properties make this a sharp regression tripwire for the OSDP
primitives, not just a smoke test:

* the worst-case event is known in closed form for both primitives
  (the zero count for binomial thinning, any sub-support interval for
  one-sided Laplace) and its ratio is *exactly* ``e^eps``, so the
  audit should land near ``eps`` from below — a bound far under
  ``eps`` means the audit lost power, far over means the mechanism (or
  a new fast path) is leaking;
* OSDP's neighbor relation is asymmetric, and so is the audit: only
  the ``P[M(D)] / P[M(D')]`` direction is bounded.  (The reverse
  direction is legitimately unbounded — e.g. OsdpRR assigns zero
  probability under ``D`` to outputs revealing the replaced record —
  so auditing it would be wrong, not conservative.)

Events are discrete outcome codes (integers): integer-valued outputs
audit as-is, continuous outputs go through :func:`discretize_outputs`.

Composed mechanisms (DAWAz's two-phase release) audit over **joint
events**: a single phase's marginal can hide a leak that only shows in
the correlation between the phases' outputs, so
:func:`audit_composed_release` codes each trial as the pair
*(zero-set membership of the audited bin, discretized estimate)* and
runs the same odds-ratio bound over the pair codes — sequential
composition (Theorem 3.3) bounds the joint observation by ``e^eps``,
so the estimator applies unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def discretize_outputs(samples: np.ndarray, width: float) -> np.ndarray:
    """Map continuous outputs to integer event codes (floor binning).

    Post-processing, so the odds-ratio bound survives: any event set of
    the discretized output is an event set of the original output.
    """
    if width <= 0:
        raise ValueError("bin width must be positive")
    return np.floor(np.asarray(samples, dtype=float) / width).astype(np.int64)


@dataclass(frozen=True)
class OddsRatioAudit:
    """The audit verdict for one neighboring pair.

    ``epsilon_lower_bound`` is the log of the largest observed odds
    ratio ``P_hat[M(D) = omega] / P_hat[M(D') = omega]`` over events
    where world D produced at least ``min_count`` samples; ``event`` is
    the outcome code attaining it, and ``n_events`` the number of
    events that passed the count threshold.
    """

    epsilon_lower_bound: float
    max_ratio: float
    event: int
    n_events: int

    def violates(self, epsilon: float, slack: float = 0.0) -> bool:
        """True when the empirical bound exceeds ``epsilon + slack``."""
        return self.epsilon_lower_bound > epsilon + slack


def empirical_odds_ratio_audit(
    world_a: np.ndarray,
    world_b: np.ndarray,
    min_count: int = 50,
) -> OddsRatioAudit:
    """Max empirical odds ratio of integer outcomes, A over B.

    ``world_a``/``world_b`` are outcome codes from many independent runs
    of ``M(D)`` and ``M(D')`` respectively.  Events are selected by the
    *numerator* count (``>= min_count``, keeping the estimate's relative
    error controlled); the denominator count is floored at one, so
    mass that world B (nearly) never produces — the signature of a
    broken suppression/noise path — surfaces as a huge ratio instead of
    being filtered away.
    """
    if min_count < 1:
        raise ValueError("min_count must be positive")
    a = np.asarray(world_a).ravel().astype(np.int64)
    b = np.asarray(world_b).ravel().astype(np.int64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both worlds need samples")
    lo = int(min(a.min(), b.min()))
    hi = int(max(a.max(), b.max()))
    counts_a = np.bincount(a - lo, minlength=hi - lo + 1)
    counts_b = np.bincount(b - lo, minlength=hi - lo + 1)
    eligible = counts_a >= min_count
    if not eligible.any():
        raise ValueError(
            f"no event reached min_count={min_count}; increase trials"
        )
    freq_a = counts_a[eligible] / a.size
    freq_b = np.maximum(counts_b[eligible], 1) / b.size
    ratios = freq_a / freq_b
    argmax = int(np.argmax(ratios))
    max_ratio = float(ratios[argmax])
    event = int(np.flatnonzero(eligible)[argmax]) + lo
    return OddsRatioAudit(
        epsilon_lower_bound=math.log(max_ratio),
        max_ratio=max_ratio,
        event=event,
        n_events=int(eligible.sum()),
    )


def joint_zero_estimate_codes(
    estimates: np.ndarray, bin_index: int, width: float
) -> np.ndarray:
    """Per-trial joint (zero-set, estimate) event codes for one bin.

    A two-phase release (DAWAz: OSDP zero detection, then a DP
    estimate post-processed by the zero set) reveals *two* things about
    the audited bin: whether it landed in the zero set ``Z`` (the
    release is exactly ``0.0`` — zeroing is the only path to an exact
    zero once estimates are continuous) and the estimate's value.  The
    joint code ``2 * floor(estimate / width) + [estimate == 0]`` keeps
    both: the zero indicator occupies the low bit, so zero-set
    membership and near-zero-but-released estimates are *different*
    events — exactly the distinction a leaky zero detector alters.
    """
    column = np.asarray(estimates)[:, bin_index]
    zero = column == 0.0
    return discretize_outputs(column, width) * 2 + zero.astype(np.int64)


def audit_composed_release(
    mechanism,
    hist_d,
    hist_d_prime,
    n_trials: int,
    seed: int,
    bin_index: int = 0,
    width: float = 0.5,
    min_count: int = 50,
) -> OddsRatioAudit:
    """Joint-event audit of a composed (two-phase) mechanism.

    Same two-world protocol as :func:`audit_release_mechanism`, but the
    outcome alphabet is the joint :func:`joint_zero_estimate_codes`
    instead of the estimate marginal.  Sequential composition bounds
    any event over the *pair* of phase outputs by ``e^eps``, so
    ``epsilon_lower_bound`` is still a lower bound on the composed
    mechanism's epsilon — and a zero-detection phase spending more than
    its accounted share surfaces here even when the estimate marginal
    stays quiet.
    """
    rng_a = np.random.default_rng([seed, 0])
    rng_b = np.random.default_rng([seed, 1])
    out_a = mechanism.release_batch(hist_d, rng_a, n_trials)
    out_b = mechanism.release_batch(hist_d_prime, rng_b, n_trials)
    return empirical_odds_ratio_audit(
        joint_zero_estimate_codes(out_a, bin_index, width),
        joint_zero_estimate_codes(out_b, bin_index, width),
        min_count=min_count,
    )


def audit_release_mechanism(
    mechanism,
    hist_d,
    hist_d_prime,
    n_trials: int,
    seed: int,
    bin_index: int = 0,
    width: float | None = None,
    min_count: int = 50,
) -> OddsRatioAudit:
    """Audit a histogram mechanism on a fixed one-sided neighbor pair.

    Runs ``release_batch`` (the production fast path — exactly the code
    an engine refactor might break) ``n_trials`` times in each world,
    audits the marginal of ``bin_index``.  ``width`` discretizes
    continuous outputs; integer-valued outputs (thinning counts) pass
    ``None``.  The two worlds use distinct deterministic streams.
    """
    rng_a = np.random.default_rng([seed, 0])
    rng_b = np.random.default_rng([seed, 1])
    out_a = mechanism.release_batch(hist_d, rng_a, n_trials)[:, bin_index]
    out_b = mechanism.release_batch(hist_d_prime, rng_b, n_trials)[:, bin_index]
    if width is not None:
        out_a = discretize_outputs(out_a, width)
        out_b = discretize_outputs(out_b, width)
    else:
        out_a = np.rint(out_a).astype(np.int64)
        out_b = np.rint(out_b).astype(np.int64)
    return empirical_odds_ratio_audit(out_a, out_b, min_count=min_count)
