"""ROC / AUC and cross-validation utilities (§6.2).

The paper reports ``1 - AUC`` averaged over 10-fold cross-validation.
AUC is computed by the rank statistic (Mann-Whitney U with midrank tie
handling), which equals the area under the ROC curve exactly.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve via midranks (ties handled exactly)."""
    y = np.asarray(y_true)
    s = np.asarray(scores, dtype=float)
    if y.shape != s.shape:
        raise ValueError("labels and scores must have the same length")
    n_pos = int((y == 1).sum())
    n_neg = int((y == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both classes present")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(len(s), dtype=float)
    sorted_scores = s[order]
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        # midrank for the tie group [i, j] (1-based ranks)
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[y == 1].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def roc_curve(
    y_true: Sequence[int], scores: Sequence[float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(false positive rates, true positive rates, thresholds).

    Thresholds sweep the distinct scores descending; the curve starts at
    (0, 0) and ends at (1, 1).
    """
    y = np.asarray(y_true)
    s = np.asarray(scores, dtype=float)
    order = np.argsort(-s, kind="mergesort")
    y_sorted = y[order]
    s_sorted = s[order]
    distinct = np.where(np.diff(s_sorted))[0]
    cutpoints = np.concatenate([distinct, [len(s_sorted) - 1]])
    tps = np.cumsum(y_sorted == 1)[cutpoints]
    fps = np.cumsum(y_sorted == 0)[cutpoints]
    n_pos = max(int((y == 1).sum()), 1)
    n_neg = max(int((y == 0).sum()), 1)
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], s_sorted[cutpoints]])
    return fpr, tpr, thresholds


def stratified_kfold(
    y: Sequence[int], k: int, rng: np.random.Generator
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, test_indices) with per-class balance."""
    y = np.asarray(y)
    if k < 2:
        raise ValueError("k must be at least 2")
    folds: list[list[int]] = [[] for _ in range(k)]
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        rng.shuffle(members)
        for position, index in enumerate(members):
            folds[position % k].append(int(index))
    all_indices = set(range(len(y)))
    for fold in folds:
        test = np.array(sorted(fold), dtype=int)
        train = np.array(sorted(all_indices - set(fold)), dtype=int)
        yield train, test


def cross_validated_auc(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 10,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean AUC over stratified k-fold CV.

    Models must expose ``fit(X, y)`` and ``decision_function(X)``;
    folds lacking a class (tiny inputs) are skipped.
    """
    rng = rng if rng is not None else np.random.default_rng()
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    aucs = []
    for train, test in stratified_kfold(y, k, rng):
        if len(np.unique(y[test])) < 2 or len(np.unique(y[train])) < 2:
            continue
        model = model_factory()
        model.fit(X[train], y[train])
        scores = model.decision_function(X[test])
        aucs.append(roc_auc(y[test], scores))
    if not aucs:
        raise ValueError("no usable folds (classes too small for k folds)")
    return float(np.mean(aucs))
