"""Trajectory feature extraction for the resident classifier (§6.2).

The paper derives, per daily trajectory:

* duration of stay (in slots);
* number of distinct access points visited;
* per-access-point visit counts (64 features);
* counts of *frequent patterns* ``(AP1, AP2, AP3)`` — consecutive
  AP triples appearing in at least ``min_support`` trajectories, one
  feature per pattern counting its occurrences in the trajectory.

The featurizer is fit on a training collection (to learn the frequent
pattern vocabulary) and then maps trajectories to dense vectors.  For
the private ObjDP baseline, vectors must be normalized afterwards
(see :func:`repro.classification.objective_perturbation.normalize_rows`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.tippers import Trajectory

Pattern = tuple[int, int, int]


def _trajectory_triples(trajectory: Trajectory) -> list[Pattern]:
    """Consecutive AP triples at consecutive time intervals.

    Consecutive *distinct* AP transitions are what carries signal, so
    runs of the same AP are collapsed before extracting triples (a user
    idling at their office for an hour is one visit, not 6 patterns).
    """
    collapsed: list[int] = []
    for ap in trajectory.aps:
        if not collapsed or collapsed[-1] != ap:
            collapsed.append(ap)
    return [
        (collapsed[i], collapsed[i + 1], collapsed[i + 2])
        for i in range(len(collapsed) - 2)
    ]


class TrajectoryFeaturizer:
    """Learns a frequent-pattern vocabulary; maps trajectories to vectors."""

    def __init__(self, n_aps: int = 64, min_support: int = 50):
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self.n_aps = n_aps
        self.min_support = min_support
        self.patterns_: list[Pattern] | None = None

    @property
    def n_features(self) -> int:
        if self.patterns_ is None:
            raise RuntimeError("featurizer is not fitted")
        return 2 + self.n_aps + len(self.patterns_)

    def fit(self, trajectories: Sequence[Trajectory]) -> "TrajectoryFeaturizer":
        """Select patterns appearing in >= min_support trajectories."""
        support: dict[Pattern, int] = {}
        for trajectory in trajectories:
            for pattern in set(_trajectory_triples(trajectory)):
                support[pattern] = support.get(pattern, 0) + 1
        self.patterns_ = sorted(
            (p for p, count in support.items() if count >= self.min_support)
        )
        return self

    def transform_one(self, trajectory: Trajectory) -> np.ndarray:
        if self.patterns_ is None:
            raise RuntimeError("featurizer is not fitted")
        pattern_index = {p: i for i, p in enumerate(self.patterns_)}
        vector = np.zeros(self.n_features)
        vector[0] = trajectory.duration_slots
        vector[1] = len(trajectory.distinct_aps)
        for ap in trajectory.aps:
            vector[2 + ap] += 1.0
        offset = 2 + self.n_aps
        for pattern in _trajectory_triples(trajectory):
            index = pattern_index.get(pattern)
            if index is not None:
                vector[offset + index] += 1.0
        return vector

    def transform(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        if self.patterns_ is None:
            raise RuntimeError("featurizer is not fitted")
        pattern_index = {p: i for i, p in enumerate(self.patterns_)}
        X = np.zeros((len(trajectories), self.n_features))
        offset = 2 + self.n_aps
        for row, trajectory in enumerate(trajectories):
            X[row, 0] = trajectory.duration_slots
            X[row, 1] = len(trajectory.distinct_aps)
            for ap in trajectory.aps:
                X[row, 2 + ap] += 1.0
            for pattern in _trajectory_triples(trajectory):
                index = pattern_index.get(pattern)
                if index is not None:
                    X[row, offset + index] += 1.0
        return X

    def fit_transform(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        return self.fit(trajectories).transform(trajectories)


def resident_labels(
    trajectories: Sequence[Trajectory], user_labels: dict[int, bool]
) -> np.ndarray:
    """Per-trajectory 0/1 labels from a per-user resident mapping."""
    return np.array(
        [1 if user_labels.get(t.user_id, False) else 0 for t in trajectories],
        dtype=int,
    )
