"""ObjDP: objective perturbation for private logistic regression.

Implements Algorithm 2 ("objective perturbation") of Chaudhuri,
Monteleoni & Sarwate, *Differentially Private Empirical Risk
Minimization*, JMLR 2011 — the paper's all-records-sensitive baseline
for Fig 1.  For logistic loss (smoothness constant c = 1/4) and feature
vectors normalized to ``||x|| <= 1``:

1. ``eps' = eps - log(1 + 2c/(n lam) + c^2 / (n lam)^2)``;
2. if ``eps' <= 0``, raise the regularizer to
   ``lam' = c / (n (e^{eps/4} - 1))`` and use ``eps' = eps/2``;
3. draw noise ``b`` with density proportional to ``exp(-eps' ||b|| / 2)``
   (norm ~ Gamma(d, 2/eps'), direction uniform on the sphere);
4. output ``argmin_w J(w) + b.w / n``.

As prescribed, inputs are scaled so every row has norm at most 1 (the
paper notes it applies the same normalization), and no intercept column
is used — the bias would violate the norm bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.classification.logistic import (
    LogisticRegression,
    fit_regularized_logistic,
)
from repro.core.guarantees import DPGuarantee

LOGISTIC_SMOOTHNESS = 0.25


def normalize_rows(X: np.ndarray) -> np.ndarray:
    """Scale the whole matrix so max row norm is 1 (paper's preprocessing)."""
    X = np.asarray(X, dtype=float)
    max_norm = float(np.linalg.norm(X, axis=1).max(initial=0.0))
    if max_norm <= 1.0 or max_norm == 0.0:
        return X.copy()
    return X / max_norm


def sample_perturbation(
    d: int, epsilon_prime: float, rng: np.random.Generator
) -> np.ndarray:
    """Noise with density ~ exp(-eps' ||b|| / 2) in R^d."""
    direction = rng.normal(size=d)
    norm = np.linalg.norm(direction)
    if norm == 0.0:  # pragma: no cover - probability zero
        direction = np.ones(d)
        norm = math.sqrt(d)
    magnitude = rng.gamma(shape=d, scale=2.0 / epsilon_prime)
    return direction / norm * magnitude


class ObjectivePerturbationLR(LogisticRegression):
    """epsilon-DP logistic regression via objective perturbation."""

    def __init__(self, epsilon: float, lam: float = 1e-2):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        # No intercept: the norm-1 feature bound must cover every column.
        super().__init__(lam=lam, fit_intercept=False)
        self.epsilon = epsilon
        self.effective_lam_: float | None = None
        self.epsilon_prime_: float | None = None

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "ObjectivePerturbationLR":
        rng = rng if rng is not None else np.random.default_rng()
        X = normalize_rows(X)
        signed = self._signed_labels(np.asarray(y))
        n, d = X.shape
        c = LOGISTIC_SMOOTHNESS

        lam = self.lam
        epsilon_prime = self.epsilon - math.log(
            1.0 + 2.0 * c / (n * lam) + c**2 / (n * lam) ** 2
        )
        if epsilon_prime <= 0:
            lam = c / (n * (math.exp(self.epsilon / 4.0) - 1.0))
            epsilon_prime = self.epsilon / 2.0
        self.effective_lam_ = lam
        self.epsilon_prime_ = epsilon_prime

        b = sample_perturbation(d, epsilon_prime, rng)
        self.weights = fit_regularized_logistic(
            X, signed, lam, linear_perturbation=b
        )
        return self


class RandomBaseline:
    """Label-distribution-only predictor (Fig 1's 'Random').

    Scores every example with an independent uniform draw, so its ROC
    curve is the diagonal and 1 - AUC concentrates at 0.5 regardless of
    the label skew.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomBaseline":
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self._rng.uniform(size=len(X))
