"""Classification substrate for the Fig 1 experiment (§6.2, §6.3.1).

* :mod:`repro.classification.logistic` — L2-regularized logistic
  regression trained with L-BFGS (the non-private learner behind the
  All-NS and OsdpRR strategies);
* :mod:`repro.classification.objective_perturbation` — ObjDP, the
  objective-perturbation DP empirical-risk minimizer of Chaudhuri,
  Monteleoni and Sarwate (JMLR 2011) used as the all-sensitive baseline;
* :mod:`repro.classification.features` — trajectory feature extraction:
  stay duration, distinct APs, per-AP visit counts, and frequent
  consecutive (AP1, AP2, AP3) patterns;
* :mod:`repro.classification.metrics` — ROC curve, AUC, and stratified
  k-fold cross-validation, reported as 1 - AUC per the paper.
"""

from repro.classification.features import TrajectoryFeaturizer
from repro.classification.logistic import LogisticRegression
from repro.classification.metrics import (
    cross_validated_auc,
    roc_auc,
    roc_curve,
    stratified_kfold,
)
from repro.classification.objective_perturbation import ObjectivePerturbationLR

__all__ = [
    "LogisticRegression",
    "ObjectivePerturbationLR",
    "TrajectoryFeaturizer",
    "cross_validated_auc",
    "roc_auc",
    "roc_curve",
    "stratified_kfold",
]
