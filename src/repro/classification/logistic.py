"""L2-regularized logistic regression, trained with L-BFGS.

The learner minimizes the standard regularized empirical risk

    J(w) = (1/n) sum_i log(1 + exp(-y_i w.x_i)) + (lam/2) ||w||^2

with labels in {-1, +1}.  This exact objective (average loss, no
separate intercept) is the form required by the objective-perturbation
DP variant, which subclasses the optimization here; the non-private
model optionally augments features with a constant column for a bias
term.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize


def _logistic_loss_and_grad(
    w: np.ndarray, X: np.ndarray, y: np.ndarray, lam: float
) -> tuple[float, np.ndarray]:
    """Average logistic loss + L2 penalty, with gradient."""
    n = len(y)
    margins = y * (X @ w)
    # log(1 + exp(-m)) computed stably for both signs of m.
    loss_terms = np.where(
        margins > 0,
        np.log1p(np.exp(-margins)),
        -margins + np.log1p(np.exp(margins)),
    )
    loss = float(loss_terms.mean()) + 0.5 * lam * float(w @ w)
    sigma = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
    grad = -(X.T @ (y * sigma)) / n + lam * w
    return loss, grad


def fit_regularized_logistic(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    linear_perturbation: np.ndarray | None = None,
    max_iter: int = 200,
) -> np.ndarray:
    """Minimize J(w) [+ b.w/n if a perturbation vector b is given]."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, d = X.shape
    b = linear_perturbation

    def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
        loss, grad = _logistic_loss_and_grad(w, X, y, lam)
        if b is not None:
            loss += float(b @ w) / n
            grad = grad + b / n
        return loss, grad

    result = minimize(
        objective,
        x0=np.zeros(d),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter},
    )
    return result.x


class LogisticRegression:
    """Non-private L2-regularized logistic regression.

    Parameters
    ----------
    lam:
        L2 regularization strength (on the averaged loss).
    fit_intercept:
        Append a constant-1 column so the model learns a bias term.
    """

    def __init__(self, lam: float = 1e-3, fit_intercept: bool = True):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        self.lam = lam
        self.fit_intercept = fit_intercept
        self.weights: np.ndarray | None = None

    def _design(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if self.fit_intercept:
            return np.hstack([X, np.ones((len(X), 1))])
        return X

    @staticmethod
    def _signed_labels(y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        unique = set(np.unique(y).tolist())
        if unique <= {0, 1}:
            return np.where(y > 0, 1.0, -1.0)
        if unique <= {-1, 1}:
            return y.astype(float)
        raise ValueError(f"labels must be binary, got values {sorted(unique)}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        design = self._design(X)
        signed = self._signed_labels(y)
        self.weights = fit_regularized_logistic(design, signed, self.lam)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        return self._design(X) @ self.weights

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
