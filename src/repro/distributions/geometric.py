"""Discrete counterparts of the Laplace noise distributions.

These are extensions beyond the paper: when counts must remain integers
(e.g. releasing exact histogram cells), the two-sided geometric
distribution plays the role of the Laplace distribution and the one-sided
geometric plays the role of ``Lap^-``.

``TwoSidedGeometric(alpha)`` has pmf proportional to ``alpha**|k|`` over
the integers; setting ``alpha = exp(-epsilon / sensitivity)`` gives an
epsilon-DP additive mechanism for integer queries.  ``OneSidedGeometric``
puts all mass on the non-positive integers and is the OSDP analogue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def _validate_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie strictly in (0, 1), got {alpha}")


@dataclass(frozen=True)
class TwoSidedGeometric:
    """Two-sided geometric distribution over the integers.

    pmf(k) = (1 - alpha) / (1 + alpha) * alpha**|k|
    """

    alpha: float

    def __post_init__(self) -> None:
        _validate_alpha(self.alpha)

    @classmethod
    def from_epsilon(cls, epsilon: float, sensitivity: float = 1.0) -> "TwoSidedGeometric":
        """Calibrate so additive noise gives epsilon-DP at given sensitivity."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls(alpha=math.exp(-epsilon / sensitivity))

    def pmf(self, k: int | np.ndarray) -> float | np.ndarray:
        arr = np.abs(np.asarray(k, dtype=float))
        out = (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha**arr
        return float(out) if np.isscalar(k) else out

    @property
    def variance(self) -> float:
        return 2.0 * self.alpha / (1.0 - self.alpha) ** 2

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None
    ) -> int | np.ndarray:
        """Difference of two iid geometric draws is two-sided geometric."""
        # numpy's geometric counts trials >= 1; subtract 1 for support {0,1,...}.
        g1 = rng.geometric(p=1.0 - self.alpha, size=size) - 1
        g2 = rng.geometric(p=1.0 - self.alpha, size=size) - 1
        out = g1 - g2
        return int(out) if size is None else out


@dataclass(frozen=True)
class OneSidedGeometric:
    """Geometric distribution on the non-positive integers.

    pmf(k) = (1 - alpha) * alpha**(-k)   for k <= 0.

    The discrete analogue of ``Lap^-``: suitable for OSDP release of
    integer counts over non-sensitive records, where neighbors can only
    increase the true count.
    """

    alpha: float

    def __post_init__(self) -> None:
        _validate_alpha(self.alpha)

    @classmethod
    def from_epsilon(cls, epsilon: float, sensitivity: float = 1.0) -> "OneSidedGeometric":
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls(alpha=math.exp(-epsilon / sensitivity))

    def pmf(self, k: int | np.ndarray) -> float | np.ndarray:
        arr = np.asarray(k, dtype=float)
        out = np.where(arr <= 0, (1.0 - self.alpha) * self.alpha ** (-arr), 0.0)
        return float(out) if np.isscalar(k) else out

    @property
    def mean(self) -> float:
        return -self.alpha / (1.0 - self.alpha)

    @property
    def variance(self) -> float:
        return self.alpha / (1.0 - self.alpha) ** 2

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None
    ) -> int | np.ndarray:
        out = -(rng.geometric(p=1.0 - self.alpha, size=size) - 1)
        return int(out) if size is None else out
