"""The one-sided Laplace distribution ``Lap^-(lambda)`` of Definition 5.1.

This is the mirrored exponential distribution, with all probability mass
on the non-positive reals:

    f(x; lambda) = exp(x / lambda) / lambda   for x <= 0, and 0 otherwise.

Adding ``Lap^-(1/epsilon)`` noise to counts computed over *non-sensitive*
records yields the ``OsdpLaplace`` mechanism (Theorem 5.2): one-sided
neighbors can only *increase* non-sensitive counts, so strictly negative
noise suffices for indistinguishability.

Key facts used by the paper and verified in the test suite:

* median = ``-lambda * ln 2`` (the de-biasing constant of Algorithm 2),
* mean = ``-lambda``, variance = ``lambda**2``,
* at matched epsilon the variance is 1/8 that of the histogram Laplace
  mechanism's noise (exponential halves the variance; the sensitivity
  drop from 2 to 1 contributes another factor of 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.common import as_float_array as _as_float_array


@dataclass(frozen=True)
class OneSidedLaplace:
    """One-sided Laplace (negative exponential) with scale ``scale``."""

    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Density: ``exp(x/scale)/scale`` for x <= 0, else 0."""
        arr, scalar = _as_float_array(x)
        out = np.where(arr <= 0, np.exp(arr / self.scale) / self.scale, 0.0)
        return float(out) if scalar else out

    def log_pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Log-density; ``-inf`` on the positive reals."""
        arr, scalar = _as_float_array(x)
        with np.errstate(divide="ignore"):
            out = np.where(
                arr <= 0, arr / self.scale - math.log(self.scale), -np.inf
            )
        return float(out) if scalar else out

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """CDF: ``exp(x/scale)`` for x <= 0, else 1."""
        arr, scalar = _as_float_array(x)
        out = np.where(arr <= 0, np.exp(np.minimum(arr, 0.0) / self.scale), 1.0)
        return float(out) if scalar else out

    def ppf(self, q: float | np.ndarray) -> float | np.ndarray:
        """Quantile function: ``scale * ln q`` for q in (0, 1]."""
        arr, scalar = _as_float_array(q)
        if np.any((arr <= 0) | (arr > 1)):
            raise ValueError("quantile levels must lie in (0, 1]")
        out = self.scale * np.log(arr)
        return float(out) if scalar else out

    @property
    def mean(self) -> float:
        return -self.scale

    @property
    def median(self) -> float:
        """``-scale * ln 2``; Algorithm 2 adds this back to de-bias."""
        return -self.scale * math.log(2.0)

    @property
    def variance(self) -> float:
        return self.scale**2

    @property
    def expected_abs(self) -> float:
        """E|X| = scale (all mass is non-positive)."""
        return self.scale

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None
    ) -> float | np.ndarray:
        """Draw samples: the negation of an Exponential(scale) draw."""
        out = -rng.exponential(scale=self.scale, size=size)
        return float(out) if size is None else out


def sample_one_sided_laplace(
    rng: np.random.Generator,
    scale: float,
    size: int | tuple[int, ...] | None = None,
) -> float | np.ndarray:
    """Draw ``Lap^-(scale)`` samples (paper notation, Definition 5.1)."""
    return OneSidedLaplace(scale=scale).sample(rng, size=size)
