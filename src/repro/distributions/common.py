"""Shared helpers for the distribution implementations."""

from __future__ import annotations

import numpy as np


def as_float_array(x) -> tuple[np.ndarray, bool]:
    """Coerce to a float array and report whether the input was scalar.

    ``np.isscalar`` misclassifies 0-d arrays (and, depending on numpy
    version, numpy scalar types), which previously made the
    distributions' ``pdf``/``cdf``/``ppf`` return 0-d arrays for some
    scalar-like inputs and floats for others.  Scalar-ness is decided
    by the coerced array's dimensionality — the one check that treats
    Python numbers, numpy scalars and 0-d arrays identically.
    """
    arr = np.asarray(x, dtype=float)
    return arr, arr.ndim == 0
