"""Noise distributions used by the DP and OSDP mechanisms.

The paper relies on two continuous distributions:

* the (two-sided) Laplace distribution (Definition 2.3), used by the
  classical Laplace mechanism, and
* the *one-sided* Laplace distribution ``Lap^-(lambda)`` (Definition 5.1),
  a mirrored exponential with all mass on the non-positive reals, used by
  ``OsdpLaplace`` and ``OsdpLaplaceL1``.

A discrete two-sided/one-sided geometric pair is provided as the integer
counterpart (an extension beyond the paper, useful for exact-count
releases).
"""

from repro.distributions.laplace import LaplaceDistribution, sample_laplace
from repro.distributions.one_sided_laplace import (
    OneSidedLaplace,
    sample_one_sided_laplace,
)
from repro.distributions.geometric import OneSidedGeometric, TwoSidedGeometric

__all__ = [
    "LaplaceDistribution",
    "OneSidedLaplace",
    "OneSidedGeometric",
    "TwoSidedGeometric",
    "sample_laplace",
    "sample_one_sided_laplace",
]
