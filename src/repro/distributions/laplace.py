"""The (two-sided) Laplace distribution of Definition 2.3.

``LaplaceDistribution(scale=b, loc=mu)`` has density

    f(x; mu, b) = exp(-|x - mu| / b) / (2 b)

The paper writes ``Lap(b)`` for the zero-mean variant; the classical
Laplace mechanism (Definition 2.5) adds ``Lap(S(f)/epsilon)`` noise to a
query answer with L1-sensitivity ``S(f)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.common import as_float_array as _as_float_array


@dataclass(frozen=True)
class LaplaceDistribution:
    """Laplace distribution with location ``loc`` and scale ``scale``."""

    scale: float
    loc: float = 0.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Probability density at ``x``."""
        arr, scalar = _as_float_array(x)
        z = np.abs(arr - self.loc) / self.scale
        out = np.exp(-z) / (2.0 * self.scale)
        return float(out) if scalar else out

    def log_pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Log-density at ``x`` (useful for likelihood-ratio checks)."""
        arr, scalar = _as_float_array(x)
        z = np.abs(arr - self.loc) / self.scale
        out = -z - math.log(2.0 * self.scale)
        return float(out) if scalar else out

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Cumulative distribution function at ``x``."""
        arr, scalar = _as_float_array(x)
        z = (arr - self.loc) / self.scale
        out = np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))
        return float(out) if scalar else out

    def ppf(self, q: float | np.ndarray) -> float | np.ndarray:
        """Quantile function (inverse CDF) at probability ``q``."""
        arr, scalar = _as_float_array(q)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        out = np.where(
            arr < 0.5,
            self.loc + self.scale * np.log(2.0 * arr),
            self.loc - self.scale * np.log(2.0 * (1.0 - arr)),
        )
        return float(out) if scalar else out

    @property
    def mean(self) -> float:
        return self.loc

    @property
    def variance(self) -> float:
        return 2.0 * self.scale**2

    @property
    def expected_abs(self) -> float:
        """E|X - loc|; the expected L1 noise magnitude per coordinate."""
        return self.scale

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None
    ) -> float | np.ndarray:
        """Draw samples using the supplied generator."""
        out = rng.laplace(loc=self.loc, scale=self.scale, size=size)
        return float(out) if size is None else out


def sample_laplace(
    rng: np.random.Generator,
    scale: float,
    size: int | tuple[int, ...] | None = None,
) -> float | np.ndarray:
    """Draw zero-mean ``Lap(scale)`` samples (paper notation ``Lap(b)``)."""
    return LaplaceDistribution(scale=scale).sample(rng, size=size)
