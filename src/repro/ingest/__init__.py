"""Streaming ingestion tier: group commits, retention, continual release.

See :mod:`repro.ingest.pipeline` for the assembled loop; the pieces —
:class:`~repro.ingest.buffer.IngestBuffer`,
:class:`~repro.ingest.retention.RetentionDriver`,
:class:`~repro.ingest.continual.ContinualReleaseScheduler` — compose
over any backend and run off one injectable clock
(:mod:`repro.ingest.clock`).
"""

from repro.ingest.buffer import IngestBackpressure, IngestBuffer
from repro.ingest.clock import SYSTEM_CLOCK, Clock, SystemClock
from repro.ingest.continual import ContinualReleaseScheduler
from repro.ingest.pipeline import StreamingPipeline
from repro.ingest.retention import RetentionDriver

__all__ = [
    "Clock",
    "ContinualReleaseScheduler",
    "IngestBackpressure",
    "IngestBuffer",
    "RetentionDriver",
    "StreamingPipeline",
    "SYSTEM_CLOCK",
    "SystemClock",
]
