"""The assembled streaming tier: buffer + retention + continual release.

One object drives the whole live-workload loop of the paper's TIPPERS
deployment over any :class:`~repro.api.OsdpClient`:

* events :meth:`submit` into an :class:`~repro.ingest.buffer.
  IngestBuffer`, group-committing on size/age watermarks;
* each flush's durable timestamps feed a :class:`~repro.ingest.
  retention.RetentionDriver`, which expires the prefix that aged past
  the sliding window;
* a :class:`~repro.ingest.continual.ContinualReleaseScheduler`
  publishes a private histogram per period over whatever the window
  currently holds, charging the accountant cumulatively.

Everything runs off one injectable clock, so a whole day of simulated
streaming is a deterministic unit test.  Obtain one via
``client.open_stream(...)``.
"""

from __future__ import annotations

from repro.ingest.buffer import IngestBuffer
from repro.ingest.clock import SYSTEM_CLOCK, Clock
from repro.ingest.continual import ContinualReleaseScheduler
from repro.ingest.retention import RetentionDriver


class StreamingPipeline:
    """Compose the three streaming pieces over one client.

    ``window`` (seconds, None = keep everything) enables retention;
    ``release`` (a dict of :class:`ContinualReleaseScheduler` keywords:
    ``mechanism``, ``epsilon``, ``binning``, ``period``, ...) enables
    the continual-release schedule; ``timestamp_column`` names the
    event field retention reads.  Buffer keywords (``max_events``,
    ``max_age``, ``max_pending``) pass through.
    """

    def __init__(
        self,
        client,
        *,
        window: float | None = None,
        release: dict | None = None,
        timestamp_column: str = "ts",
        max_events: int = 512,
        max_age: float | None = None,
        max_pending: int = 4096,
        clock: Clock | None = None,
    ):
        self._clock = SYSTEM_CLOCK if clock is None else clock
        self._timestamp_column = timestamp_column
        self.retention = (
            RetentionDriver(client, window, clock=self._clock)
            if window is not None
            else None
        )
        self.continual = (
            ContinualReleaseScheduler(client, clock=self._clock, **release)
            if release is not None
            else None
        )
        self.buffer = IngestBuffer(
            client,
            max_events=max_events,
            max_age=max_age,
            max_pending=max_pending,
            clock=self._clock,
            on_flush=self._on_flush,
        )

    def _on_flush(self, records) -> None:
        if self.retention is not None:
            self.retention.observe(
                record[self._timestamp_column] for record in records
            )

    def submit(self, record) -> None:
        """Stage one event and run whatever the clock now makes due."""
        self.buffer.append(record)
        self.tick()

    def tick(self) -> dict:
        """One scheduling pass: age flush, retention, continual release.

        Drive this from a timer for quiet streams (nothing fires
        without it when no events arrive).  Returns what happened.
        """
        flushed = self.buffer.tick()
        expired = self.retention.tick() if self.retention is not None else 0
        released = self.continual.tick() if self.continual is not None else []
        return {
            "flushed": 0 if flushed is None else flushed["events"],
            "expired": expired,
            "released": len(released),
        }

    def close(self) -> dict:
        """Flush staged events and run one final scheduling pass."""
        self.buffer.flush()
        return self.tick()

    def __enter__(self) -> "StreamingPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
