"""Continual release: periodic private histograms over the live window.

The continual-observation setting (surveyed in Das & Mishra,
arXiv:2404.04706): the database changes under a stream and the curator
publishes a fresh private histogram every period, each release charged
against the same cumulative privacy budget.  This scheduler is that
loop's timer and ledger: every :meth:`tick` issues one release per
elapsed period — deterministic seeds (``base_seed + index``), so a
replayed schedule reproduces the exact noise draws — and records what
was charged.  The accountant itself lives wherever the target's server
put it; a budget overrun surfaces as the usual
``BudgetExceededError`` from the release call, stopping the schedule
loudly rather than silently overspending.

The clock is injectable (:mod:`repro.ingest.clock`): under a fake
clock, "every 30 seconds for an hour" is 120 instant, reproducible
releases.
"""

from __future__ import annotations

from repro.ingest.clock import SYSTEM_CLOCK, Clock


class ContinualReleaseScheduler:
    """Issue one private release per elapsed period on :meth:`tick`.

    ``client`` needs the keyword ``release`` surface of
    :class:`~repro.api.OsdpClient`; ``mechanism``/``epsilon``/
    ``binning``/``policy``/``n_trials`` are the per-release request
    fields, fixed for the schedule.  The first tick releases
    immediately (the window's opening publication), then every
    ``period`` seconds after.
    """

    def __init__(
        self,
        client,
        *,
        mechanism: str,
        epsilon: float,
        binning,
        policy=None,
        n_trials: int = 1,
        period: float,
        base_seed: int = 0,
        label: str = "continual",
        clock: Clock | None = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self._client = client
        self._mechanism = mechanism
        self._epsilon = float(epsilon)
        self._binning = binning
        self._policy = policy
        self._n_trials = int(n_trials)
        self.period = float(period)
        self.base_seed = int(base_seed)
        self._label = label
        self._clock = SYSTEM_CLOCK if clock is None else clock
        self._next_due: float | None = None
        #: Every response issued, in schedule order.
        self.releases: list = []
        #: Cumulative epsilon this schedule has charged.
        self.epsilon_charged = 0.0

    @property
    def next_due(self) -> float | None:
        """When the next release fires (None before the first tick)."""
        return self._next_due

    def tick(self) -> list:
        """Issue every release now due; returns them (possibly empty).

        A clock that jumped several periods yields one release per
        elapsed period — the continual-observation contract is a
        release *per period*, not per wakeup — each with its own
        deterministic seed.
        """
        now = self._clock.now()
        if self._next_due is None:
            self._next_due = now
        issued = []
        while now >= self._next_due:
            index = len(self.releases)
            response = self._client.release(
                mechanism=self._mechanism,
                epsilon=self._epsilon,
                binning=self._binning,
                policy=self._policy,
                n_trials=self._n_trials,
                seed=self.base_seed + index,
                label=f"{self._label}[{index}]",
            )
            self.releases.append(response)
            self.epsilon_charged += self._epsilon
            issued.append(response)
            self._next_due += self.period
        return issued
