"""Sliding-window retention: expire records by timestamp, not by hand.

The paper's TIPPERS deployment defines sensitivity partly as a
function of *age* — events older than the retention window leave the
queryable state.  The engine's primitive for that is
``expire_prefix(n)``: records are stored in arrival order, so "drop
everything older than T" is "drop the first n".  This driver does the
bookkeeping from record timestamps: it observes the timestamp of every
**durable** event (hook it to :class:`~repro.ingest.buffer.
IngestBuffer`'s ``on_flush``), and on each :meth:`tick` expires the
prefix whose timestamps have fallen behind ``now - window``.

Only durable events are observed, so the driver can never expire past
what the target actually holds; and because it issues plain
``expire_prefix`` calls, the trimmed state is bit-identical to loading
the surviving window cold — on every backend, including the cluster's
replicated path.

Timestamps must be non-decreasing in arrival order (event time tracks
arrival for a live stream); the driver trusts that order and walks the
front of its deque.
"""

from __future__ import annotations

from collections import deque

from repro.ingest.clock import SYSTEM_CLOCK, Clock


class RetentionDriver:
    """Schedule ``expire_prefix`` from durable record timestamps."""

    def __init__(
        self,
        target,
        window: float,
        clock: Clock | None = None,
    ):
        if window <= 0:
            raise ValueError("retention window must be positive")
        self._target = target
        self.window = float(window)
        self._clock = SYSTEM_CLOCK if clock is None else clock
        self._timestamps: deque = deque()
        self.events_expired = 0
        self.expirations = 0

    @property
    def retained(self) -> int:
        """Durable events the driver still considers live."""
        return len(self._timestamps)

    def observe(self, timestamps) -> None:
        """Record durable events' timestamps, in arrival order."""
        self._timestamps.extend(float(t) for t in timestamps)

    def due(self) -> int:
        """How many retained events have aged past the window."""
        cutoff = self._clock.now() - self.window
        n = 0
        for ts in self._timestamps:
            if ts >= cutoff:
                break
            n += 1
        return n

    def tick(self) -> int:
        """Expire every event older than the window; returns the count."""
        n = self.due()
        if n == 0:
            return 0
        # Expire first, then forget: if the call fails, the timestamps
        # stay and the next tick retries the same prefix.
        self._target.expire_prefix(n)
        for _ in range(n):
            self._timestamps.popleft()
        self.events_expired += n
        self.expirations += 1
        return n
