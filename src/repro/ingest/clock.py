"""Injectable time for the streaming tier.

Every ingest-side timer — flush-age watermarks, sliding-window
retention, the continual-release period, cluster retry backoffs —
reads time through this seam instead of calling :mod:`time` directly,
the temporal twin of the ``rng=`` injection the fault tests use for
randomness: hand a component a fake clock and every "after 30 seconds"
behavior becomes a deterministic, instant assertion
(``tests/clocks.FakeClock``).  The default :data:`SYSTEM_CLOCK` is
plain wall time, so production call sites read exactly as before.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What the streaming tier asks of time: read it, and wait on it."""

    def now(self) -> float:
        """Seconds since an arbitrary epoch; must be non-decreasing."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or, for a fake, instantly advance) by ``seconds``."""
        ...


class SystemClock:
    """Wall time: ``time.time`` / ``time.sleep``."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


#: The shared default — components treat ``clock=None`` as this.
SYSTEM_CLOCK = SystemClock()
