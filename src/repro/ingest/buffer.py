"""Client-side group-commit batching for streaming appends.

One sensor event at a time through ``append_records`` pays the full
write path per event — an exclusive lock acquisition, a WAL fsync (or
a replicated two-phase commit) for a single row.  :class:`IngestBuffer`
coalesces: events stage in memory and flush as **one** append — one
lock, one WAL entry, one fsync, one replicated commit — when a size or
age watermark trips (or on an explicit :meth:`flush`).  Because the
flush rides the ordinary ``append_records`` of whatever target it was
given, the same buffer batches into an in-process engine, a remote
endpoint, or a replicated cluster's 2PC path unchanged, and the final
column state is bit-identical to a cold batch load of the same events
(appends concatenate in arrival order on every path).

Durability semantics are explicit: an event is **acked** — durable,
counted in :attr:`events_flushed` — only when the flush that carried
it returns.  Staged events live in this process's memory; a crash
before their flush loses exactly them and nothing acked, which is the
contract the WAL tests pin (replay recovers to the acked watermark).

Backpressure is a bounded queue: when staging would exceed
``max_pending`` events, :meth:`append` first tries to flush; if the
flush cannot drain (the target is down), it raises
:class:`IngestBackpressure` instead of growing without bound.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ingest.clock import SYSTEM_CLOCK, Clock


class IngestBackpressure(RuntimeError):
    """The buffer is full and could not drain; retry after a flush."""


def _columnar_batch(records: list):
    """Columnarize a flush batch when it has a plain fixed-width form.

    Columns ride the wire as raw ndarray frames (cheap); anything
    without that form — ragged trajectories, mixed-type values — ships
    as the row list instead.  Either way the receiving engine appends
    the same records in the same order.
    """
    from repro.data.columnar import ColumnarDatabase, RaggedColumn

    try:
        db = ColumnarDatabase.from_any_records(records)
    except Exception:
        return records
    for name in db.column_names:
        column = db[name]
        if isinstance(column, RaggedColumn):
            return records
        if np.asarray(column).dtype.hasobject:
            return records
    return db


class IngestBuffer:
    """Batch events client-side; flush as one append per group commit.

    ``target`` is anything with ``append_records`` — a backend, an
    :class:`~repro.api.OsdpClient`, or a live engine.  Watermarks:
    ``max_events`` flushes on size, ``max_age`` (seconds, None = off)
    flushes when the oldest staged event has waited that long (checked
    on :meth:`append` and :meth:`tick` — drive ``tick`` from a timer
    for quiet streams).  ``on_flush(records)`` runs after each
    successful flush with the events it made durable, in order — the
    retention driver hooks it to learn durable timestamps.
    """

    def __init__(
        self,
        target,
        max_events: int = 512,
        max_age: float | None = None,
        max_pending: int = 4096,
        clock: Clock | None = None,
        on_flush: Callable[[list], None] | None = None,
    ):
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        if max_pending < max_events:
            raise ValueError("max_pending must be at least max_events")
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive (or None)")
        self._target = target
        self.max_events = int(max_events)
        self.max_age = max_age
        self.max_pending = int(max_pending)
        self._clock = SYSTEM_CLOCK if clock is None else clock
        self._on_flush = on_flush
        self._staged: list = []
        self._oldest_staged_at: float | None = None
        self.events_in = 0
        self.events_flushed = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Staged-but-unflushed (not yet durable) event count."""
        return len(self._staged)

    def append(self, record) -> dict | None:
        """Stage one event; flush if a watermark trips.

        Returns the flush report when this append triggered one, else
        None.  Raises :class:`IngestBackpressure` when the buffer is
        full and flushing could not drain it.
        """
        if len(self._staged) >= self.max_pending:
            # Full: draining is the only way forward.  A flush failure
            # here propagates as backpressure, not silent growth.
            try:
                self.flush()
            except IngestBackpressure:
                raise
            except Exception as exc:
                raise IngestBackpressure(
                    f"ingest buffer is full ({self.max_pending} events) "
                    f"and the flush that would drain it failed: {exc}"
                ) from exc
        if self._oldest_staged_at is None:
            self._oldest_staged_at = self._clock.now()
        self._staged.append(record)
        self.events_in += 1
        if len(self._staged) >= self.max_events:
            return self.flush()
        return self.tick()

    def extend(self, records) -> dict | None:
        """Stage many events; returns the last flush report, if any."""
        report = None
        for record in records:
            flushed = self.append(record)
            if flushed is not None:
                report = flushed
        return report

    def tick(self) -> dict | None:
        """Flush if the age watermark has tripped; timer-driven entry."""
        if (
            self.max_age is not None
            and self._staged
            and self._clock.now() - self._oldest_staged_at >= self.max_age
        ):
            return self.flush()
        return None

    # ------------------------------------------------------------------
    # The group commit
    # ------------------------------------------------------------------
    def flush(self) -> dict:
        """Commit every staged event as one append; returns a report.

        On failure the events stay staged (nothing is dropped before it
        is durable) and the error propagates.
        """
        if not self._staged:
            return {"events": 0, "pending": 0}
        batch = self._staged
        self._target.append_records(_columnar_batch(batch))
        # Only now — after the ack — do the events leave the buffer.
        self._staged = []
        self._oldest_staged_at = None
        self.events_flushed += len(batch)
        self.flushes += 1
        if self._on_flush is not None:
            self._on_flush(batch)
        return {"events": len(batch), "pending": 0}

    def close(self) -> dict:
        """Final flush; the buffer stays usable but should be dropped."""
        return self.flush()

    def __enter__(self) -> "IngestBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
