"""A minimal multiset-of-records database abstraction.

The privacy definitions treat a database as a multiset of records from a
universe ``T`` (Section 2).  Records here are arbitrary Python objects —
usually dicts for tabular data, or :class:`repro.data.tippers.Trajectory`
objects for mobility data.  Policies index into records themselves, so
the database class stays schema-free and only provides the operations
the mechanisms need: iteration, filtering by policy, and histogram
construction via a binning function.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.policy import Policy


class Database:
    """An immutable multiset of records.

    Examples
    --------
    >>> db = Database([{"age": 15}, {"age": 40}])
    >>> len(db)
    2
    """

    def __init__(self, records: Iterable[object]):
        self._records: tuple = tuple(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[object]:
        return iter(self._records)

    def __getitem__(self, index: int) -> object:
        return self._records[index]

    @property
    def records(self) -> tuple:
        return self._records

    def filter(self, predicate: Callable[[object], bool]) -> "Database":
        """A new database with only the records satisfying ``predicate``."""
        return Database(r for r in self._records if predicate(r))

    def non_sensitive(self, policy: Policy) -> "Database":
        """The subset ``D_ns = {r in D | P(r) = 1}`` used by OSDP primitives."""
        return Database(policy.non_sensitive_subset(self._records))

    def sensitive(self, policy: Policy) -> "Database":
        return Database(policy.sensitive_subset(self._records))

    def partition(self, policy: Policy) -> tuple["Database", "Database"]:
        """(sensitive, non_sensitive) split under ``policy``."""
        sens, non_sens = policy.partition(self._records)
        return Database(sens), Database(non_sens)

    def histogram(
        self, bin_of: Callable[[object], int], n_bins: int
    ) -> np.ndarray:
        """Counts per bin; ``bin_of`` maps a record to its bin index.

        Records mapped outside ``[0, n_bins)`` raise — a histogram query
        is defined over a complete non-overlapping partitioning
        (Section 5), so every record must land in a bin.
        """
        counts = np.zeros(n_bins, dtype=np.int64)
        for record in self._records:
            index = bin_of(record)
            if not 0 <= index < n_bins:
                raise ValueError(
                    f"record {record!r} mapped to bin {index}, "
                    f"outside [0, {n_bins})"
                )
            counts[index] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database(n={len(self._records)})"
