"""Building-telemetry event stream in the shape of the paper's testbed.

The TIPPERS deployment the paper evaluates on is a ~300-sensor
instrumented building emitting a continuous event stream; this module
is that workload's synthetic twin for the streaming tier — the bench
and fault lanes need sustained, realistic-shaped traffic with
timestamps the retention window can act on.

Events are plain fixed-width dicts (``ts`` float64 seconds,
``sensor``/``region``/``occupancy`` int64, ``opt_in`` bool), so every
storage path is exercised end to end: shm headroom segments, WAL
snapshots and the wire codec all accept the columns unmodified.
Timestamps are non-decreasing (exponential inter-arrival gaps at
``rate_hz`` aggregate events/sec), matching the arrival-order contract
``expire_prefix`` retention relies on.

Determinism is the point: :func:`telemetry_events` and
:func:`telemetry_database` draw from one seeded generator, so the
record stream and its cold batch-load form are the **same data** —
the bit-identity checks compare a streamed ingest directly against
``telemetry_database`` of the same config.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TelemetryConfig:
    """Shape of the synthetic building: sensors, regions, event rate."""

    n_sensors: int = 300
    n_regions: int = 12
    rate_hz: float = 100.0
    opt_in_rate: float = 0.5
    start: float = 0.0
    seed: int = 0


def _telemetry_columns(
    n_events: int, config: TelemetryConfig
) -> dict[str, np.ndarray]:
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(1.0 / config.rate_hz, n_events)
    ts = config.start + np.cumsum(gaps)
    sensor = rng.integers(0, config.n_sensors, n_events)
    occupancy = rng.poisson(3.0, n_events)
    opt_in = rng.random(n_events) < config.opt_in_rate
    return {
        "ts": ts.astype(np.float64),
        "sensor": sensor.astype(np.int64),
        "region": (sensor % config.n_regions).astype(np.int64),
        "occupancy": occupancy.astype(np.int64),
        "opt_in": opt_in,
    }


def telemetry_events(
    n_events: int, config: TelemetryConfig = TelemetryConfig()
):
    """Yield ``n_events`` sensor-event dicts, timestamps non-decreasing.

    Values are native Python scalars, so the dicts columnarize to the
    exact dtypes :func:`telemetry_database` builds directly.
    """
    columns = _telemetry_columns(n_events, config)
    for i in range(n_events):
        yield {
            "ts": float(columns["ts"][i]),
            "sensor": int(columns["sensor"][i]),
            "region": int(columns["region"][i]),
            "occupancy": int(columns["occupancy"][i]),
            "opt_in": bool(columns["opt_in"][i]),
        }


def telemetry_database(
    n_events: int, config: TelemetryConfig = TelemetryConfig()
):
    """The cold batch-load form of the same ``n_events`` stream.

    Bit-identical, column for column, to columnarizing every dict
    :func:`telemetry_events` yields for the same config — the reference
    state streamed-ingest equivalence checks compare against.
    """
    from repro.data.columnar import ColumnarDatabase

    return ColumnarDatabase(_telemetry_columns(n_events, config))
