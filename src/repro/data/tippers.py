"""Synthetic smart-building Wi-Fi traces (the TIPPERS substrate, §6.1.1).

The paper's TIPPERS dataset — 9 months of Wi-Fi association events from
64 access points in UC Irvine's Bren Hall, 585K daily trajectories from
16K devices — is IRB-restricted and was never released.  This module
generates a behaviorally equivalent synthetic trace.  The experiments
consume only three properties of the data, all of which the generator
controls directly:

1. **daily trajectories**: per (user, day), a contiguous sequence of
   10-minute slots each labelled with the most frequent AP (the paper's
   discretization);
2. **resident/visitor structure**: residents anchor at an office AP,
   stay long (>= 6h), return most weekdays, and sometimes work late;
   visitors make short, sparse visits — exactly the signal the paper's
   heuristic labelling rule (and hence Fig 1's classifier) keys on;
3. **AP-level sensitivity**: a skewed AP popularity profile (a few
   high-traffic common areas, many offices, a tail of rarely-visited
   lounges/restrooms) so that access-point policies ``P_rho`` can hit
   any target fraction of non-sensitive trajectories, from P99 down to
   P1, by greedy coverage selection.

Records are :class:`Trajectory` objects; one record = one user-day, the
paper's privacy unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.policy import Policy, sorted_plain_values

SLOTS_PER_DAY = 144  # 10-minute intervals
SLOTS_PER_HOUR = 6
EVENING_SLOT = 19 * SLOTS_PER_HOUR  # 7 pm, the paper's late-work cutoff
SIX_HOURS_SLOTS = 6 * SLOTS_PER_HOUR


@dataclass(frozen=True)
class Trajectory:
    """One user's movement through the building on one day.

    ``slots`` is a tuple of (slot_index, ap) pairs with strictly
    increasing, contiguous slot indices — the paper discretizes time to
    10-minute intervals and records the dominant AP per interval.
    """

    user_id: int
    day: int
    slots: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("a trajectory must cover at least one slot")

    @property
    def aps(self) -> tuple[int, ...]:
        """AP sequence, one entry per 10-minute slot."""
        return tuple(ap for _, ap in self.slots)

    @property
    def distinct_aps(self) -> frozenset[int]:
        return frozenset(ap for _, ap in self.slots)

    @property
    def duration_slots(self) -> int:
        return len(self.slots)

    @property
    def start_slot(self) -> int:
        return self.slots[0][0]

    @property
    def end_slot(self) -> int:
        return self.slots[-1][0]

    def visits_any(self, aps: frozenset[int] | set[int]) -> bool:
        return not self.distinct_aps.isdisjoint(aps)

    def ngrams(self, n: int) -> list[tuple[int, ...]]:
        """All n-grams: APs at n consecutive time intervals (§6.2)."""
        seq = self.aps
        return [seq[i : i + n] for i in range(len(seq) - n + 1)]

    def distinct_ngrams(self, n: int) -> list[tuple[int, ...]]:
        """Distinct n-grams in first-appearance order (for truncation)."""
        seen: dict[tuple[int, ...], None] = {}
        for gram in self.ngrams(n):
            seen.setdefault(gram, None)
        return list(seen)


class SensitiveAPPolicy(Policy):
    """Trajectories through any sensitive AP are sensitive (§6.1.1).

    The paper's access-point-level policy: a sensitive set of APs (e.g.
    lounge, restroom) marks as sensitive every daily trajectory that
    passes through at least one of them.
    """

    def __init__(self, sensitive_aps: Iterable[int], name: str = "sensitive-aps"):
        self.sensitive_aps = frozenset(sensitive_aps)
        self.name = name

    def __call__(self, record: Trajectory) -> int:
        return 0 if record.visits_any(self.sensitive_aps) else 1

    def cache_key(self) -> tuple:
        return ("sensitive_aps", self.sensitive_aps)

    def to_spec(self) -> dict:
        return {
            "kind": "sensitive_aps",
            "aps": sorted_plain_values(self.sensitive_aps),
            "name": self.name,
        }

    def evaluate_batch(self, columns) -> np.ndarray:
        """Vectorized over an ``aps`` ragged column (see
        :func:`trajectory_columns`): one ``np.isin`` over the flattened
        AP sequence plus a segmented any-reduction."""
        try:
            aps = columns["aps"]
        except (KeyError, TypeError):
            return super().evaluate_batch(columns)
        segment_any = getattr(aps, "segment_any", None)
        if segment_any is None:
            return super().evaluate_batch(columns)
        if not self.sensitive_aps:
            hit = np.zeros(len(aps.flat), dtype=bool)
        else:
            hit = np.isin(
                aps.flat, np.fromiter(self.sensitive_aps, dtype=np.int64)
            )
        sensitive = segment_any(hit)
        return np.where(sensitive, 0, 1).astype(np.int8)


@dataclass(frozen=True)
class TippersConfig:
    """Knobs for the synthetic trace generator."""

    n_aps: int = 64
    n_users: int = 400
    n_days: int = 60
    resident_fraction: float = 0.08
    seed: int = 0
    # AP role split; must sum to n_aps.
    n_common_aps: int = 8
    n_office_aps: int = 36
    n_meeting_aps: int = 8
    n_rare_aps: int = 12

    def __post_init__(self) -> None:
        roles = (
            self.n_common_aps
            + self.n_office_aps
            + self.n_meeting_aps
            + self.n_rare_aps
        )
        if roles != self.n_aps:
            raise ValueError(
                f"AP role counts sum to {roles}, expected n_aps={self.n_aps}"
            )
        if not 0.0 < self.resident_fraction < 1.0:
            raise ValueError("resident_fraction must lie in (0, 1)")


@dataclass
class TippersDataset:
    """The generated trace plus ground truth and policy helpers."""

    config: TippersConfig
    trajectories: list[Trajectory]
    resident_user_ids: frozenset[int]
    ap_roles: dict[str, tuple[int, ...]] = field(repr=False)

    def __len__(self) -> int:
        return len(self.trajectories)

    def columnar(self):
        """The trace as a :class:`repro.data.columnar.ColumnarDatabase`."""
        from repro.data.columnar import ColumnarDatabase

        return ColumnarDatabase(
            trajectory_columns(self.trajectories), records=self.trajectories
        )

    # ------------------------------------------------------------------
    # Labelling (the paper's heuristic, §6.2 "Classification")
    # ------------------------------------------------------------------
    def heuristic_resident_labels(self) -> dict[int, bool]:
        """Label users by the paper's behavioral rule, scaled to n_days.

        The paper labels a device a resident when it (a) visits at least
        10 days per month over the last 5 months AND (b) works past 7 pm
        once a week OR (c) works more than 6 hours once a week.  With a
        shorter synthetic horizon the thresholds scale proportionally:
        10/30 of the observed days for (a), one occurrence per 7 observed
        days for (b)/(c).
        """
        days_observed = self.config.n_days
        min_visit_days = max(1, round(days_observed * 10 / 30))
        min_weekly_events = max(1, days_observed // 7)

        by_user: dict[int, list[Trajectory]] = {}
        for trajectory in self.trajectories:
            by_user.setdefault(trajectory.user_id, []).append(trajectory)

        labels: dict[int, bool] = {}
        for user_id, trajs in by_user.items():
            visit_days = len({t.day for t in trajs})
            late_events = sum(1 for t in trajs if t.end_slot >= EVENING_SLOT)
            long_events = sum(
                1 for t in trajs if t.duration_slots > SIX_HOURS_SLOTS
            )
            labels[user_id] = visit_days >= min_visit_days and (
                late_events >= min_weekly_events
                or long_events >= min_weekly_events
            )
        return labels

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def ap_coverage(self) -> dict[int, int]:
        """Per AP, the number of trajectories passing through it."""
        coverage: dict[int, int] = {ap: 0 for ap in range(self.config.n_aps)}
        for trajectory in self.trajectories:
            for ap in trajectory.distinct_aps:
                coverage[ap] += 1
        return coverage

    def policy_for_fraction(self, non_sensitive_percent: float) -> SensitiveAPPolicy:
        """Build ``P_rho``: a sensitive-AP set hitting a target fraction.

        ``non_sensitive_percent`` is the paper's rho (e.g. 99 for P99 =
        99% non-sensitive trajectories).  APs are added greedily, least
        covered first, until the sensitive-trajectory fraction reaches
        ``1 - rho/100`` — mirroring the intuition that sensitive places
        (lounge, restroom) are the rarely-visited ones, while extreme
        policies like P1 must include popular APs.
        """
        if not 0.0 < non_sensitive_percent < 100.0:
            raise ValueError("non_sensitive_percent must lie in (0, 100)")
        target_sensitive = 1.0 - non_sensitive_percent / 100.0
        n = len(self.trajectories)
        incidence = {
            ap: set() for ap in range(self.config.n_aps)
        }  # ap -> trajectory indices
        for index, trajectory in enumerate(self.trajectories):
            for ap in trajectory.distinct_aps:
                incidence[ap].add(index)

        order = sorted(incidence, key=lambda ap: len(incidence[ap]))
        chosen: list[int] = []
        covered: set[int] = set()
        for ap in order:
            if len(covered) / n >= target_sensitive:
                break
            chosen.append(ap)
            covered |= incidence[ap]
        return SensitiveAPPolicy(
            chosen, name=f"P{non_sensitive_percent:g}"
        )

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def presence_events(self) -> list[tuple[int, int, int, int]]:
        """Distinct (user, day, ap, hour) presence events across the trace.

        One event = one user-day observed at an AP during an hour; the
        2-D histogram experiment (Fig 4/5) counts these events per
        (AP, hour) cell.  Aggregating across days (instead of the
        paper's single day) gives the laptop-scale synthetic trace the
        statistical mass of the original 585K-trajectory dataset; each
        event contributes to exactly one cell, so the bounded-model
        histogram sensitivity stays 2.
        """
        seen: set[tuple[int, int, int, int]] = set()
        for t in self.trajectories:
            for slot, ap in t.slots:
                seen.add((t.user_id, t.day, ap, slot // SLOTS_PER_HOUR))
        return sorted(seen)

    def two_d_histogram(self, day: int | None = None) -> np.ndarray:
        """Distinct users per (AP, hour) — the paper's 2-D TIPPERS query.

        Shape (n_aps, 24).  ``day=None`` selects the busiest day, per the
        paper's "a single day" setup.
        """
        if day is None:
            day_counts: dict[int, int] = {}
            for t in self.trajectories:
                day_counts[t.day] = day_counts.get(t.day, 0) + 1
            day = max(day_counts, key=day_counts.__getitem__)
        users_seen: dict[tuple[int, int], set[int]] = {}
        for t in self.trajectories:
            if t.day != day:
                continue
            for slot, ap in t.slots:
                hour = slot // SLOTS_PER_HOUR
                users_seen.setdefault((ap, hour), set()).add(t.user_id)
        hist = np.zeros((self.config.n_aps, 24), dtype=np.int64)
        for (ap, hour), users in users_seen.items():
            hist[ap, hour] = len(users)
        return hist


# ----------------------------------------------------------------------
# Columnar policy construction (no Trajectory objects)
# ----------------------------------------------------------------------


def _distinct_record_ap_pairs(db, n_aps: int) -> tuple[np.ndarray, np.ndarray]:
    """Sorted distinct ``(ap, record)`` pairs of an ``aps`` ragged column."""
    aps = db["aps"]
    flat = np.asarray(aps.flat, dtype=np.int64)
    if flat.size and (flat.min() < 0 or flat.max() >= n_aps):
        raise ValueError(f"AP values must lie in [0, {n_aps})")
    lengths = np.diff(np.asarray(aps.offsets, dtype=np.int64))
    rec = np.repeat(np.arange(len(lengths)), lengths)
    keys = np.unique(flat * len(db) + rec)
    return keys // len(db), keys % len(db)


def ap_coverage_columnar(db, n_aps: int) -> np.ndarray:
    """Per AP, the number of records passing through it (vectorized).

    The columnar twin of :meth:`TippersDataset.ap_coverage`: one
    ``np.unique`` over (ap, record) keys instead of a per-trajectory
    set walk.  ``result[ap] == coverage[ap]`` for every AP.
    """
    ap_of, _ = _distinct_record_ap_pairs(db, n_aps)
    return np.bincount(ap_of, minlength=n_aps)


def policy_for_fraction_columnar(
    db, non_sensitive_percent: float, n_aps: int
) -> SensitiveAPPolicy:
    """Build ``P_rho`` from columnar data — no ``Trajectory`` objects.

    Replays :meth:`TippersDataset.policy_for_fraction` exactly: the
    same least-covered-first AP order (stable sort, ties by AP index),
    the same greedy stop rule, hence the *same chosen AP set* — so the
    row and columnar experiment pipelines label every record
    identically (``tests/test_ngram.py`` pins the equality).
    """
    if not 0.0 < non_sensitive_percent < 100.0:
        raise ValueError("non_sensitive_percent must lie in (0, 100)")
    target_sensitive = 1.0 - non_sensitive_percent / 100.0
    n = len(db)
    ap_of, rec_of = _distinct_record_ap_pairs(db, n_aps)
    coverage = np.bincount(ap_of, minlength=n_aps)
    # Pairs are sorted by AP; slice out each AP's record list once.
    group_starts = np.searchsorted(ap_of, np.arange(n_aps + 1))
    order = np.argsort(coverage, kind="stable")
    covered = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    n_covered = 0
    for ap in order.tolist():
        if n_covered / n >= target_sensitive:
            break
        chosen.append(ap)
        members = rec_of[group_starts[ap] : group_starts[ap + 1]]
        # incremental: count only the records this AP newly covers, so
        # the greedy stays O(total distinct pairs), not O(aps * records)
        n_covered += int(np.count_nonzero(~covered[members]))
        covered[members] = True
    return SensitiveAPPolicy(
        chosen, name=f"P{non_sensitive_percent:g}"
    )


# ----------------------------------------------------------------------
# Columnar layout
# ----------------------------------------------------------------------


def trajectory_columns(trajectories: Sequence[Trajectory]) -> dict:
    """Struct-of-arrays layout for trajectory records.

    Scalar attributes become plain columns; the per-slot AP sequence
    becomes an ``aps`` ragged column (flat APs + offsets), which is the
    layout :class:`SensitiveAPPolicy` evaluates with one ``np.isin``.
    """
    from repro.data.columnar import RaggedColumn

    n = len(trajectories)
    lengths = np.fromiter(
        (t.duration_slots for t in trajectories), dtype=np.int64, count=n
    )
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    flat = np.fromiter(
        (ap for t in trajectories for _, ap in t.slots),
        dtype=np.int64,
        count=int(offsets[-1]),
    )
    return {
        "user_id": np.fromiter(
            (t.user_id for t in trajectories), dtype=np.int64, count=n
        ),
        "day": np.fromiter(
            (t.day for t in trajectories), dtype=np.int64, count=n
        ),
        "start_slot": np.fromiter(
            (t.start_slot for t in trajectories), dtype=np.int64, count=n
        ),
        "end_slot": np.fromiter(
            (t.end_slot for t in trajectories), dtype=np.int64, count=n
        ),
        "duration_slots": lengths,
        "aps": RaggedColumn(flat=flat, offsets=offsets),
    }


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _assign_ap_roles(config: TippersConfig) -> dict[str, tuple[int, ...]]:
    aps = list(range(config.n_aps))
    roles = {}
    cursor = 0
    for role, count in (
        ("common", config.n_common_aps),
        ("office", config.n_office_aps),
        ("meeting", config.n_meeting_aps),
        ("rare", config.n_rare_aps),
    ):
        roles[role] = tuple(aps[cursor : cursor + count])
        cursor += count
    return roles


def _segments_to_slots(
    segments: Sequence[tuple[int, int]], start_slot: int
) -> tuple[tuple[int, int], ...]:
    """Expand (ap, n_slots) segments into contiguous (slot, ap) pairs."""
    slots: list[tuple[int, int]] = []
    slot = start_slot
    for ap, length in segments:
        for _ in range(length):
            if slot >= SLOTS_PER_DAY:
                break
            slots.append((slot, ap))
            slot += 1
    return tuple(slots)


class _ResidentProfile:
    """Behavioral parameters for one resident."""

    def __init__(self, config: TippersConfig, roles: dict, rng: np.random.Generator):
        self.office_ap = int(rng.choice(roles["office"]))
        self.attend_prob = float(rng.uniform(0.65, 0.95))
        self.late_worker = bool(rng.random() < 0.45)
        self.arrival_mean = float(rng.uniform(8.5, 10.5)) * SLOTS_PER_HOUR
        self.stay_mean = float(rng.uniform(7.0, 9.5)) * SLOTS_PER_HOUR
        n_rare = int(rng.integers(0, 3))
        self.rare_aps = tuple(
            int(a) for a in rng.choice(roles["rare"], size=n_rare, replace=False)
        )
        self.rare_visit_prob = float(rng.uniform(0.05, 0.35)) if n_rare else 0.0
        self.meeting_ap = int(rng.choice(roles["meeting"]))
        self.entry_ap = int(rng.choice(roles["common"]))

    def day_segments(
        self, day: int, rng: np.random.Generator
    ) -> tuple[int, list[tuple[int, int]]] | None:
        """``(arrival_slot, [(ap, n_slots), ...])`` for one day, or None.

        The rng consumption order is the generator's contract: the row
        and columnar generators replay identical streams through this
        method, so both produce the same trace from the same seed.
        """
        weekend = day % 7 >= 5
        attend = self.attend_prob * (0.12 if weekend else 1.0)
        if rng.random() > attend:
            return None
        arrival = int(
            np.clip(rng.normal(self.arrival_mean, 4.0), 6 * SLOTS_PER_HOUR, 13 * SLOTS_PER_HOUR)
        )
        if rng.random() < 0.12:
            # Short days (meetings elsewhere, sick leave) overlap the
            # visitor stay distribution and keep the classes separable
            # but not trivially so.
            stay = int(rng.integers(4, 20))
        else:
            stay = int(np.clip(rng.normal(self.stay_mean, 8.0), 24, 90))
        if self.late_worker and rng.random() < 0.35:
            # Extend so that the trajectory runs past 7 pm.
            stay = max(stay, EVENING_SLOT - arrival + int(rng.integers(1, 12)))
        stay = min(stay, SLOTS_PER_DAY - arrival - 1)
        if stay < 3:
            return None

        segments: list[tuple[int, int]] = [(self.entry_ap, 1)]
        remaining = stay - 1
        while remaining > 0:
            r = rng.random()
            if r < 0.62:
                ap, length = self.office_ap, int(rng.integers(6, 24))
            elif r < 0.80:
                ap, length = self.meeting_ap, int(rng.integers(3, 10))
            elif r < 0.92:
                ap, length = self.entry_ap, int(rng.integers(1, 3))
            elif self.rare_aps and rng.random() < self.rare_visit_prob:
                ap = int(rng.choice(np.asarray(self.rare_aps)))
                length = int(rng.integers(1, 3))
            else:
                ap, length = self.office_ap, int(rng.integers(6, 18))
            length = min(length, remaining)
            segments.append((ap, length))
            remaining -= length
        return arrival, segments

    def day_trajectory(
        self, user_id: int, day: int, rng: np.random.Generator
    ) -> Trajectory | None:
        plan = self.day_segments(day, rng)
        if plan is None:
            return None
        arrival, segments = plan
        return Trajectory(
            user_id=user_id, day=day, slots=_segments_to_slots(segments, arrival)
        )


class _VisitorProfile:
    """Behavioral parameters for one visitor."""

    def __init__(self, config: TippersConfig, roles: dict, rng: np.random.Generator):
        self.attend_prob = float(rng.uniform(0.03, 0.25))
        candidates = roles["common"] + roles["meeting"] + roles["office"]
        n_fav = int(rng.integers(1, 4))
        self.favorite_aps = tuple(
            int(a) for a in rng.choice(candidates, size=n_fav, replace=False)
        )
        self.rare_ap = int(rng.choice(roles["rare"]))
        self.rare_visit_prob = float(rng.uniform(0.0, 0.12))
        self.entry_ap = int(rng.choice(roles["common"]))

    def day_segments(
        self, day: int, rng: np.random.Generator
    ) -> tuple[int, list[tuple[int, int]]] | None:
        """``(arrival_slot, [(ap, n_slots), ...])`` for one day, or None."""
        weekend = day % 7 >= 5
        attend = self.attend_prob * (0.3 if weekend else 1.0)
        if rng.random() > attend:
            return None
        arrival = int(rng.integers(8 * SLOTS_PER_HOUR, 18 * SLOTS_PER_HOUR))
        if rng.random() < 0.10:
            # Occasional long visits (seminars, collaborators) overlap
            # the resident stay distribution.
            stay = int(rng.integers(20, 50))
        else:
            stay = int(np.clip(rng.normal(9.0, 5.0), 2, 20))  # 20-200 minutes
        stay = min(stay, SLOTS_PER_DAY - arrival - 1)
        if stay < 2:
            return None
        segments: list[tuple[int, int]] = [(self.entry_ap, 1)]
        remaining = stay - 1
        while remaining > 0:
            if rng.random() < self.rare_visit_prob:
                ap, length = self.rare_ap, 1
            else:
                ap = int(rng.choice(np.asarray(self.favorite_aps)))
                length = int(rng.integers(2, 8))
            length = min(length, remaining)
            segments.append((ap, length))
            remaining -= length
        return arrival, segments

    def day_trajectory(
        self, user_id: int, day: int, rng: np.random.Generator
    ) -> Trajectory | None:
        plan = self.day_segments(day, rng)
        if plan is None:
            return None
        arrival, segments = plan
        return Trajectory(
            user_id=user_id, day=day, slots=_segments_to_slots(segments, arrival)
        )


def _resident_ids(config: TippersConfig) -> frozenset[int]:
    return frozenset(
        range(max(1, round(config.n_users * config.resident_fraction)))
    )


def _iter_day_plans(config: TippersConfig, rng: np.random.Generator):
    """Yield ``(user_id, day, arrival, segments)`` in canonical rng order.

    The single trace driver both generators consume: profile
    construction and per-day draws happen here and nowhere else, so the
    row and columnar generators *cannot* diverge in stream consumption
    — their "same seed, same data" contract is structural, not merely
    test-enforced.
    """
    roles = _assign_ap_roles(config)
    resident_ids = _resident_ids(config)
    for user_id in range(config.n_users):
        if user_id in resident_ids:
            profile: _ResidentProfile | _VisitorProfile = _ResidentProfile(
                config, roles, rng
            )
        else:
            profile = _VisitorProfile(config, roles, rng)
        for day in range(config.n_days):
            plan = profile.day_segments(day, rng)
            if plan is not None:
                arrival, segments = plan
                yield user_id, day, arrival, segments


def generate_tippers(config: TippersConfig | None = None) -> TippersDataset:
    """Generate a synthetic TIPPERS-like trace (deterministic in the seed)."""
    config = config or TippersConfig()
    rng = np.random.default_rng(config.seed)

    trajectories = [
        Trajectory(
            user_id=user_id,
            day=day,
            slots=_segments_to_slots(segments, arrival),
        )
        for user_id, day, arrival, segments in _iter_day_plans(config, rng)
    ]

    return TippersDataset(
        config=config,
        trajectories=trajectories,
        resident_user_ids=_resident_ids(config),
        ap_roles=_assign_ap_roles(config),
    )


def generate_tippers_columnar(config: TippersConfig | None = None):
    """Generate the trace straight into columnar arrays.

    Stream-identical to :func:`generate_tippers` — both consume the
    shared :func:`_iter_day_plans` driver, so identical draws in
    identical order are structural — but the per-record ``Trajectory``
    objects (and their tuple-of-tuples slot storage) are never
    constructed: each day's ``(ap, n_slots)`` segments expand directly
    into the flat AP array of the ``aps`` ragged column.  Same seed,
    same arrays as ``generate_tippers(config).columnar()``; the scalar
    attributes fall out of the expansion (``start_slot`` is the
    arrival, ``end_slot`` is ``arrival + duration - 1`` by slot
    contiguity).

    Returns a :class:`repro.data.columnar.ColumnarDatabase` with the
    :func:`trajectory_columns` schema (no row records attached).
    """
    from repro.data.columnar import ColumnarDatabase, RaggedColumn

    config = config or TippersConfig()
    rng = np.random.default_rng(config.seed)

    user_ids: list[int] = []
    days: list[int] = []
    starts: list[int] = []
    lengths: list[int] = []
    flat_aps: list[np.ndarray] = []
    for user_id, day, arrival, segments in _iter_day_plans(config, rng):
        seg_aps = np.fromiter(
            (ap for ap, _ in segments), dtype=np.int64, count=len(segments)
        )
        seg_lens = np.fromiter(
            (length for _, length in segments),
            dtype=np.int64,
            count=len(segments),
        )
        # _segments_to_slots truncates at the end of the day; the
        # columnar equivalent is clipping the expansion.
        aps = np.repeat(seg_aps, seg_lens)[: SLOTS_PER_DAY - arrival]
        if not len(aps):
            continue
        user_ids.append(user_id)
        days.append(day)
        starts.append(arrival)
        lengths.append(len(aps))
        flat_aps.append(aps)

    length_arr = np.asarray(lengths, dtype=np.int64)
    start_arr = np.asarray(starts, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(length_arr)]).astype(np.int64)
    flat = (
        np.concatenate(flat_aps)
        if flat_aps
        else np.empty(0, dtype=np.int64)
    )
    return ColumnarDatabase(
        {
            "user_id": np.asarray(user_ids, dtype=np.int64),
            "day": np.asarray(days, dtype=np.int64),
            "start_slot": start_arr,
            "end_slot": start_arr + length_arr - 1,
            "duration_slots": length_arr,
            "aps": RaggedColumn(flat=flat, offsets=offsets),
        }
    )
