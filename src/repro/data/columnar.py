"""Struct-of-arrays database for million-record OSDP workloads.

:class:`repro.data.database.Database` stores records as Python objects
and dispatches a Python call per record for policy evaluation and
binning — fine at paper scale, dominant at production scale.
:class:`ColumnarDatabase` stores one numpy array per attribute instead,
so the hot operations become single vectorized calls:

* sensitive/non-sensitive partitioning (Definition 3.1) runs through
  ``Policy.evaluate_batch`` — one ufunc pipeline over the relevant
  columns instead of ``O(n)`` ``Policy.__call__`` dispatches;
* histogram construction is ``np.bincount`` over a vectorized
  bin-index computation (see the ``bin_indices`` methods in
  :mod:`repro.queries.histogram`).

Variable-length attributes (a trajectory's AP sequence) are stored as a
:class:`RaggedColumn` — one flat array plus offsets, the layout that
lets set-membership policies run as ``np.isin`` + segmented reduction.

The row-oriented ``Database`` remains the simple reference
implementation; ``iter_records``/``to_database`` bridge the two, and
every vectorized consumer falls back to per-record evaluation for
column layouts it does not understand, so the columnar path is always
an optimization, never a semantic fork.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.policy import NON_SENSITIVE, SENSITIVE, Policy
from repro.data.database import Database


@dataclass(frozen=True)
class RaggedColumn:
    """A variable-length-per-record column: flat values plus offsets.

    Record ``i`` owns ``flat[offsets[i]:offsets[i + 1]]``; ``offsets``
    has ``n_records + 1`` entries, starting at 0 and ending at
    ``len(flat)``.
    """

    flat: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets)
        if offsets.ndim != 1 or len(offsets) < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or offsets[-1] != len(self.flat):
            raise ValueError("offsets must start at 0 and end at len(flat)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def segment(self, i: int) -> np.ndarray:
        return self.flat[self.offsets[i] : self.offsets[i + 1]]

    def segment_any(self, flag_per_value: np.ndarray) -> np.ndarray:
        """Per-record 'any value flagged' over a flat boolean array."""
        flags = np.asarray(flag_per_value, dtype=bool)
        if len(flags) != len(self.flat):
            raise ValueError("flag array must match the flat values")
        counts = np.zeros(len(self), dtype=np.int64)
        starts = np.asarray(self.offsets[:-1], dtype=np.intp)
        nonempty = self.lengths > 0
        if flags.size:
            # reduceat misbehaves on empty segments (it returns the
            # element at the repeated offset); compute on the non-empty
            # segments and leave empties at zero.
            reduced = np.add.reduceat(flags.astype(np.int64), starts[nonempty])
            counts[nonempty] = reduced
        return counts > 0

    def take(self, indices: np.ndarray) -> "RaggedColumn":
        """A new ragged column with the selected records, in order."""
        indices = np.asarray(indices)
        starts = self.offsets[:-1][indices]
        lengths = self.lengths[indices]
        new_offsets = np.concatenate([[0], np.cumsum(lengths)])
        gather = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
        ) if len(indices) else np.empty(0, dtype=np.intp)
        return RaggedColumn(flat=self.flat[gather], offsets=new_offsets)

    def slice_segments(self, start: int, stop: int) -> "RaggedColumn":
        """Records ``[start, stop)`` as a new ragged column.

        Contiguous slices need no gather: the flat values are one slice
        and the offsets rebase by subtraction, which is what makes
        sharding a ragged column O(shard size).
        """
        offsets = np.asarray(self.offsets)
        if not 0 <= start <= stop <= len(self):
            raise ValueError(
                f"slice [{start}, {stop}) outside [0, {len(self)}]"
            )
        offs = offsets[start : stop + 1]
        return RaggedColumn(
            flat=self.flat[offs[0] : offs[-1]], offsets=offs - offs[0]
        )


Column = "np.ndarray | RaggedColumn"


class ColumnarDatabase:
    """An immutable multiset of records in struct-of-arrays layout."""

    def __init__(
        self,
        columns: Mapping[str, np.ndarray | RaggedColumn],
        records: Sequence[object] | None = None,
    ):
        if not columns:
            raise ValueError("need at least one column")
        normalized: dict[str, np.ndarray | RaggedColumn] = {}
        n = None
        for name, column in columns.items():
            if not isinstance(column, RaggedColumn):
                column = np.asarray(column)
                if column.ndim != 1:
                    raise ValueError(f"column {name!r} must be 1-D")
            if n is None:
                n = len(column)
            elif len(column) != n:
                raise ValueError(
                    f"column {name!r} has {len(column)} records, expected {n}"
                )
            normalized[name] = column
        self._columns = normalized
        self._n = int(n or 0)
        self._records = tuple(records) if records is not None else None
        if self._records is not None and len(self._records) != self._n:
            raise ValueError("records must match the column length")
        # The ColumnStore owning this database's buffers, when they
        # live in shared memory (see repro.data.store); None means
        # ordinary heap arrays.  Set by ColumnStore.place()/attach().
        self._store = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping]) -> "ColumnarDatabase":
        """Columnarize mapping-style (dict) records.

        Attribute set is taken from the first record; all records must
        share it.  Values become numpy columns with inferred dtypes
        (falling back to object arrays for mixed types).
        """
        records = tuple(records)
        if not records:
            raise ValueError("cannot columnarize an empty record set")
        names = list(records[0].keys())
        columns = {}
        for name in names:
            try:
                values = [r[name] for r in records]
            except KeyError:
                raise ValueError(
                    f"record missing attribute {name!r}; records must share a schema"
                ) from None
            arr = np.asarray(values)
            if arr.dtype.kind in "US" and not all(
                isinstance(v, str) for v in values
            ):
                # np.asarray stringifies mixed-type columns (e.g.
                # [5, "NA"] -> ["5", "NA"]), which would silently change
                # values under vectorized comparisons; keep Python
                # objects so == retains per-record semantics.
                arr = np.asarray(values, dtype=object)
            columns[name] = arr
        return cls(columns, records=records)

    @classmethod
    def from_any_records(cls, records: Iterable[object]) -> "ColumnarDatabase":
        """Columnarize mapping records *or* trajectories (slot records).

        The single home of the record-kind dispatch, shared by
        :meth:`from_database` and the sharded engine's
        ``append_records`` so initial construction and incremental
        ingest can never columnarize differently.
        """
        records = tuple(records)
        if records and hasattr(records[0], "slots"):
            from repro.data.tippers import trajectory_columns

            return cls(trajectory_columns(records), records=records)
        return cls.from_records(records)  # type: ignore[arg-type]

    @classmethod
    def from_database(cls, db: Database) -> "ColumnarDatabase":
        """Columnarize a row database of mapping records or trajectories."""
        return cls.from_any_records(db.records)

    @classmethod
    def concat(
        cls, parts: Sequence["ColumnarDatabase"]
    ) -> "ColumnarDatabase":
        """Concatenate databases record-wise (shared schema required).

        Plain columns concatenate directly; ragged columns concatenate
        their flats and rebase the offsets.  Original record tuples are
        kept only when every part has them (a mixed concatenation would
        silently fabricate records).  This is the append primitive the
        incremental shard updates are built on.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one part")
        names = parts[0].column_names
        for part in parts[1:]:
            if part.column_names != names:
                raise ValueError("all parts must share a column schema")
        if len(parts) == 1:
            return parts[0]
        columns: dict[str, np.ndarray | RaggedColumn] = {}
        for name in names:
            cols = [part[name] for part in parts]
            if isinstance(cols[0], RaggedColumn):
                lengths = np.concatenate([c.lengths for c in cols])
                columns[name] = RaggedColumn(
                    flat=np.concatenate([c.flat for c in cols]),
                    offsets=np.concatenate([[0], np.cumsum(lengths)]),
                )
            else:
                columns[name] = np.concatenate(cols)
        records = None
        if all(part._records is not None for part in parts):
            records = tuple(r for part in parts for r in part._records)
        return cls(columns, records=records)

    def __getstate__(self) -> dict:
        # Shared-memory handles are process-local: a pickled database
        # ships its column *values* (numpy copies the view data) and
        # arrives heap-backed; descriptors, not pickles, are the
        # zero-copy transport (repro.data.store).
        state = self.__dict__.copy()
        state["_store"] = None
        return state

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, name: str) -> np.ndarray | RaggedColumn:
        return self._columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def iter_records(self) -> Iterator[object]:
        """Per-record views (original records when available)."""
        if self._records is not None:
            return iter(self._records)
        names = list(self._columns)
        plain = {
            name: col
            for name, col in self._columns.items()
            if not isinstance(col, RaggedColumn)
        }
        if len(plain) != len(names):
            raise TypeError(
                "cannot reconstruct records with ragged columns; "
                "build the database with explicit records"
            )
        return (
            {name: plain[name][i] for name in names} for i in range(self._n)
        )

    def to_database(self) -> Database:
        return Database(self.iter_records())

    # ------------------------------------------------------------------
    # Policy operations (Definition 3.1, vectorized)
    # ------------------------------------------------------------------
    def mask(self, policy: Policy) -> np.ndarray:
        """Per-record {0 (sensitive), 1 (non-sensitive)} labels."""
        return policy.evaluate_batch(self)

    def sensitive_indices(self, policy: Policy) -> np.ndarray:
        return np.flatnonzero(self.mask(policy) == SENSITIVE)

    def non_sensitive_indices(self, policy: Policy) -> np.ndarray:
        return np.flatnonzero(self.mask(policy) == NON_SENSITIVE)

    def select(self, indices: np.ndarray) -> "ColumnarDatabase":
        """A new database with the given records (columns sliced)."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        columns = {
            name: col.take(indices)
            if isinstance(col, RaggedColumn)
            else col[indices]
            for name, col in self._columns.items()
        }
        records = (
            tuple(self._records[i] for i in indices.tolist())
            if self._records is not None
            else None
        )
        return ColumnarDatabase(columns, records=records)

    def slice_records(self, start: int, stop: int) -> "ColumnarDatabase":
        """Records ``[start, stop)`` with every column sliced, not copied.

        Plain columns become numpy views and ragged columns rebase their
        offsets (:meth:`RaggedColumn.slice_segments`), so slicing is the
        cheap primitive sharding is built on.
        """
        if not 0 <= start <= stop <= self._n:
            raise ValueError(f"slice [{start}, {stop}) outside [0, {self._n}]")
        columns = {
            name: col.slice_segments(start, stop)
            if isinstance(col, RaggedColumn)
            else col[start:stop]
            for name, col in self._columns.items()
        }
        records = (
            self._records[start:stop] if self._records is not None else None
        )
        return ColumnarDatabase(columns, records=records)

    def shard(self, n_shards: int, executor=None):
        """Split into a :class:`repro.data.sharding.ShardedColumnarDatabase`."""
        from repro.data.sharding import ShardedColumnarDatabase

        return ShardedColumnarDatabase.from_columnar(
            self, n_shards, executor=executor
        )

    # ------------------------------------------------------------------
    # Shared-memory backing (see repro.data.store)
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The owning :class:`repro.data.store.ColumnStore`, or None."""
        return self._store

    def share(self, headroom: float | None = None) -> "ColumnarDatabase":
        """This database with its columns in shared-memory segments.

        Returns a value-identical database whose arrays are read-only
        views over :mod:`multiprocessing.shared_memory` segments (one
        physical copy, attachable by name from any process — the
        zero-copy substrate of :class:`repro.data.workers.ShardWorkerPool`).
        Already-shared databases return themselves.  The returned
        database's :attr:`store` owns the segments: its ``close()``/GC
        unlinks them once nothing in this process needs them.

        ``headroom`` over-allocates the segments by that growth
        fraction so streaming appends can extend the columns in place
        (see :meth:`repro.data.store.ColumnStore.try_append`).
        """
        if self._store is not None:
            return self
        from repro.data.store import ColumnStore

        return ColumnStore.place(self, headroom=headroom).database

    def non_sensitive(self, policy: Policy) -> "ColumnarDatabase":
        """``D_ns = {r in D | P(r) = 1}`` via one vectorized mask."""
        return self.select(self.non_sensitive_indices(policy))

    def sensitive(self, policy: Policy) -> "ColumnarDatabase":
        return self.select(self.sensitive_indices(policy))

    def partition(
        self, policy: Policy
    ) -> tuple["ColumnarDatabase", "ColumnarDatabase"]:
        """(sensitive, non_sensitive) split under ``policy``."""
        mask = self.mask(policy)
        return (
            self.select(np.flatnonzero(mask == SENSITIVE)),
            self.select(np.flatnonzero(mask == NON_SENSITIVE)),
        )

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def histogram_from_indices(
        self, bin_indices: np.ndarray, n_bins: int
    ) -> np.ndarray:
        """Counts per bin from a precomputed per-record index array."""
        bin_indices = np.asarray(bin_indices)
        if len(bin_indices) != self._n:
            raise ValueError("bin indices must cover every record")
        if len(bin_indices) and (
            bin_indices.min() < 0 or bin_indices.max() >= n_bins
        ):
            offender = bin_indices[
                (bin_indices < 0) | (bin_indices >= n_bins)
            ][0]
            raise ValueError(
                f"record mapped to bin {int(offender)}, outside [0, {n_bins})"
            )
        return np.bincount(bin_indices, minlength=n_bins).astype(np.int64)

    def histogram(self, binning, n_bins: int | None = None) -> np.ndarray:
        """Counts per bin; one ``np.bincount`` over vectorized indices."""
        n_bins = binning.n_bins if n_bins is None else n_bins
        return self.histogram_from_indices(binning.bin_indices(self), n_bins)

    def fused_counts(
        self, binning, ns_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(x, x_ns)`` in one fused kernel pass, or None when ineligible.

        The raw-speed count path (:mod:`repro.mechanisms.kernels`):
        for an equal-width integer binning over a plain integer column,
        bin-index computation, range validation and both bincounts run
        as a single pass per shard — no per-record index array is
        materialized on the compiled backend, and the loop releases the
        GIL there.  ``ns_mask`` is the boolean non-sensitive flags (the
        policy mask is the one stage that stays separate — the policy
        algebra is arbitrary).  Ineligible layouts (ragged or
        non-integer columns, other binning kinds) return None and the
        caller falls back to the unfused path; when a pair is returned
        it is byte-identical to ``bin_indices`` + two bincounts.
        """
        from repro.mechanisms import kernels
        from repro.queries.histogram import IntegerBinning

        if type(binning) is not IntegerBinning:
            return None
        values = self._columns.get(binning.attribute)
        if not isinstance(values, np.ndarray) or values.dtype.kind not in "iu":
            return None
        ns_mask = np.asarray(ns_mask)
        if ns_mask.shape != values.shape:
            raise ValueError(
                f"bin indices cover {values.shape[0]} records but the "
                f"policy mask covers {ns_mask.shape[0]}"
            )
        return kernels.int_bin_pair(
            values,
            binning.low,
            binning.width,
            binning.high,
            binning.n_bins,
            ns_mask,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarDatabase(n={self._n}, "
            f"columns={list(self._columns)!r})"
        )
