"""Opt-in/opt-out policy simulators for benchmark histograms (§6.1.2).

The DPBench datasets carry no sensitivity policy, so the paper simulates
one by sampling a *non-sensitive sub-histogram* ``x_ns`` from the true
histogram ``x``:

* ``MSampling`` (policy **Close**): the empirical distribution of
  ``x_ns`` tracks that of ``x`` — privacy preference is nearly
  uncorrelated with record value.  Implemented as per-record Bernoulli
  thinning (binomial per bin), which is unbiased for the shape; the
  normalized mean and standard deviation of the sample are verified to
  lie within a ``1 +/- theta`` factor of the original's (theta = 0.1 in
  the paper), retrying with fresh randomness otherwise.

* ``HiLoSampling`` (policy **Far**): preference is strongly correlated
  with value.  A random center bin ``b`` defines a "High" region
  ``b +/- d*beta``; records in High bins are sampled with weight
  ``gamma`` (= 5), others with weight 1, until ``rho_x * ||x||_1``
  records are drawn.  The paper samples bins with replacement; we draw a
  weighted multinomial and cap each bin at its true count (redistributing
  overflow) so that ``x_ns <= x`` holds — non-sensitive records must be
  actual records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PolicySample:
    """A simulated policy: the non-sensitive sub-histogram and metadata."""

    x: np.ndarray
    x_ns: np.ndarray
    policy_name: str
    rho_x: float

    def __post_init__(self) -> None:
        if self.x.shape != self.x_ns.shape:
            raise ValueError("x and x_ns must have the same shape")
        if np.any(self.x_ns > self.x):
            raise ValueError("x_ns must be a sub-histogram of x")

    @property
    def achieved_ratio(self) -> float:
        """``||x_ns||_1 / ||x||_1`` — the realized non-sensitive ratio."""
        total = int(self.x.sum())
        return float(self.x_ns.sum()) / total if total else 0.0


def _normalized_moments(x: np.ndarray) -> tuple[float, float]:
    """Mean and std of the bin-index distribution induced by ``x``."""
    total = x.sum()
    if total == 0:
        return 0.0, 0.0
    indices = np.arange(len(x), dtype=float)
    p = x / total
    mean = float(indices @ p)
    var = float(((indices - mean) ** 2) @ p)
    return mean, float(np.sqrt(var))


def m_sampling(
    x: np.ndarray,
    rho_x: float,
    rng: np.random.Generator,
    theta: float = 0.1,
    max_attempts: int = 50,
) -> PolicySample:
    """MSampling: shape-preserving sample with ``||x_ns||_1 ~ rho_x ||x||_1``.

    Binomial thinning keeps each record independently with probability
    ``rho_x``; the result's normalized mean/std are checked against the
    ``1 +/- theta`` tolerance of the paper and the draw is retried on the
    (rare) failure.
    """
    if not 0.0 < rho_x <= 1.0:
        raise ValueError("rho_x must lie in (0, 1]")
    x = np.asarray(x, dtype=np.int64)
    mean_x, std_x = _normalized_moments(x)
    last = None
    for _ in range(max_attempts):
        x_ns = rng.binomial(x, rho_x).astype(np.int64)
        if x_ns.sum() == 0:
            continue
        mean_s, std_s = _normalized_moments(x_ns)
        mean_ok = abs(mean_s - mean_x) <= theta * max(abs(mean_x), 1.0)
        std_ok = abs(std_s - std_x) <= theta * max(std_x, 1.0)
        last = x_ns
        if mean_ok and std_ok:
            break
    if last is None:
        raise RuntimeError("MSampling produced an empty sample repeatedly")
    return PolicySample(x=x, x_ns=last, policy_name="close", rho_x=rho_x)


def hilo_sampling(
    x: np.ndarray,
    rho_x: float,
    rng: np.random.Generator,
    gamma: float = 5.0,
    beta: float = 0.4,
) -> PolicySample:
    """HiLoSampling: value-correlated sample biased toward a High region.

    Bins within ``center +/- len(x)*beta`` receive sampling weight
    ``gamma``; all others weight 1.  Exactly ``round(rho_x * ||x||_1)``
    records are drawn (weighted, without exceeding any bin's true count).
    """
    if not 0.0 < rho_x <= 1.0:
        raise ValueError("rho_x must lie in (0, 1]")
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1 for a meaningful High region")
    x = np.asarray(x, dtype=np.int64)
    d = len(x)
    total = int(x.sum())
    if total == 0:
        raise ValueError("cannot sample from an empty histogram")
    target = max(1, round(rho_x * total))

    center = int(rng.integers(d))
    radius = int(d * beta)
    high = np.zeros(d, dtype=bool)
    low_edge = max(0, center - radius)
    high_edge = min(d, center + radius + 1)
    high[low_edge:high_edge] = True

    weights = np.where(high, gamma, 1.0) * x
    x_ns = np.zeros(d, dtype=np.int64)
    remaining = x.copy()
    to_draw = target
    # Weighted multinomial with per-bin caps: overflow beyond a bin's
    # remaining records is redistributed over the uncapped bins.
    for _ in range(64):
        if to_draw <= 0:
            break
        weight_sum = weights.sum()
        if weight_sum <= 0:
            break
        draw = rng.multinomial(to_draw, weights / weight_sum)
        take = np.minimum(draw, remaining)
        x_ns += take
        remaining -= take
        weights = np.where(remaining > 0, weights, 0.0)
        to_draw = target - int(x_ns.sum())
    return PolicySample(x=x, x_ns=x_ns, policy_name="far", rho_x=rho_x)


def shape_distance(x: np.ndarray, x_ns: np.ndarray) -> float:
    """Total-variation distance between the normalized shapes of x and x_ns.

    The paper's "closeness" notion: Close policies should score near 0,
    Far policies substantially higher.
    """
    tx, ts = x.sum(), x_ns.sum()
    if tx == 0 or ts == 0:
        raise ValueError("histograms must be non-empty")
    return float(0.5 * np.abs(x / tx - x_ns / ts).sum())
