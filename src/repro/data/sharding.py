"""Sharded columnar engine: split columns across workers, merge results.

The ROADMAP's million-user service target needs the columnar data path
(:mod:`repro.data.columnar`) to stop being a single in-memory block.
The policy masks and bincounts it computes are embarrassingly parallel
— each record's label and bin index depend only on that record — so the
natural scaling unit is a *shard*: a contiguous slice of every column
(including :class:`~repro.data.columnar.RaggedColumn` offsets, which
rebase for free on contiguous slices).

:class:`ShardedColumnarDatabase` holds ``k`` independent
:class:`~repro.data.columnar.ColumnarDatabase` shards and reassembles
their per-shard results:

* ``Policy.evaluate_batch`` on a sharded database evaluates per shard
  and concatenates the masks (the dispatch lives in
  :mod:`repro.core.policy`, so *every* policy — including user
  subclasses — is shard-aware for free);
* binnings' ``bin_indices`` concatenate per-shard index arrays;
* histograms and :class:`repro.queries.histogram.HistogramInput` merge
  by summing per-shard ``np.bincount`` results.

All merges are **bit-identical** to the single-node path: per-record
semantics are preserved record by record, and bincount merging is exact
integer addition.  Sharding therefore never forks the privacy
semantics; it only changes where the work runs.

Execution is pluggable: with no executor, shards run serially in-process
(still a win on large inputs — per-shard temporaries fit hot cache);
with a :class:`concurrent.futures.Executor` the per-shard closures are
submitted to the pool.  Thread pools work out of the box (numpy kernels
release the GIL); process pools additionally require picklable shards
and policies, so lambda-based policies must stay on threads.  The
third executor shape is :class:`repro.data.workers.ShardWorkerPool` —
persistent worker processes holding the shards resident, answering
``map_shards`` requests with policy/binning *specs* on the wire instead
of re-shipped columns (the deployment shape the ROADMAP's million-user
target asks for).

The database is no longer frozen at construction: :meth:`append_records`
extends the tail shard and :meth:`expire_prefix` trims the oldest
records in place, bumping per-shard **version counters** so caches
(the release server's, the worker pool's) invalidate only the affected
shards instead of forcing a full reslice.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.policy import NON_SENSITIVE, SENSITIVE, Policy
from repro.data.columnar import ColumnarDatabase

T = TypeVar("T")

ShardSlice = tuple[int, int]


def _shard_histogram(shard: ColumnarDatabase, binning, n_bins: int) -> np.ndarray:
    """Module-level (picklable) per-shard histogram for process pools."""
    return shard.histogram(binning, n_bins)


def _shard_non_sensitive(shard: ColumnarDatabase, policy: Policy) -> ColumnarDatabase:
    """Module-level (picklable) per-shard non-sensitive selection."""
    return shard.non_sensitive(policy)


def _shard_sensitive(shard: ColumnarDatabase, policy: Policy) -> ColumnarDatabase:
    """Module-level (picklable) per-shard sensitive selection."""
    return shard.sensitive(policy)


def shard_slices(n_records: int, n_shards: int) -> list[ShardSlice]:
    """Balanced contiguous ``[start, end)`` slices covering ``n_records``.

    The first ``n_records % n_shards`` shards carry one extra record, so
    shard sizes differ by at most one.  ``n_shards`` may exceed
    ``n_records``; the surplus shards are empty.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(n_records, n_shards)
    slices: list[ShardSlice] = []
    start = 0
    for i in range(n_shards):
        end = start + base + (1 if i < extra else 0)
        slices.append((start, end))
        start = end
    return slices


class ShardedColumnarDatabase:
    """``k`` contiguous column shards that answer as one database.

    Build one with :meth:`from_columnar` (or
    ``ColumnarDatabase.shard``); the shards stay in record order, so
    concatenating per-shard results reproduces the single-node answer
    exactly.
    """

    def __init__(
        self,
        shards: Sequence[ColumnarDatabase],
        executor=None,
    ):
        shards = tuple(shards)
        if not shards:
            raise ValueError("need at least one shard")
        names = shards[0].column_names
        for shard in shards[1:]:
            if shard.column_names != names:
                raise ValueError("all shards must share a column schema")
        self._shards = shards
        self._executor = executor
        self._versions = [0] * len(shards)
        self._recompute_bounds()

    def _recompute_bounds(self) -> None:
        lengths = [len(s) for s in self._shards]
        bounds = np.concatenate([[0], np.cumsum(lengths)])
        self._slices = [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(self._shards))
        ]
        self._n = int(bounds[-1])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columnar(
        cls, db: ColumnarDatabase, n_shards: int, executor=None
    ) -> "ShardedColumnarDatabase":
        """Split a columnar database into balanced contiguous shards."""
        return cls(
            [db.slice_records(s, e) for s, e in shard_slices(len(db), n_shards)],
            executor=executor,
        )

    @classmethod
    def from_records(
        cls, records: Iterable[object], n_shards: int, executor=None
    ) -> "ShardedColumnarDatabase":
        return cls.from_columnar(
            ColumnarDatabase.from_records(records), n_shards, executor=executor
        )

    def with_executor(self, executor) -> "ShardedColumnarDatabase":
        """The same shards, mapped through a different executor."""
        return ShardedColumnarDatabase(self._shards, executor=executor)

    def share(self) -> "ShardedColumnarDatabase":
        """Every shard placed into shared-memory segments.

        Shards already backed by a :class:`repro.data.store.ColumnStore`
        are kept as-is.  Worker pools built over a shared database
        attach to the same physical segments instead of receiving
        pickled copies, and co-hosted pools share one copy of the data.
        The executor does not carry over: a shard-resident pool answers
        only for the exact shard objects it was built on.
        """
        return ShardedColumnarDatabase([s.share() for s in self._shards])

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def shards(self) -> tuple[ColumnarDatabase, ...]:
        return self._shards

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def slices(self) -> list[ShardSlice]:
        """Global ``[start, end)`` record range of each shard."""
        return list(self._slices)

    @property
    def executor(self):
        return self._executor

    @property
    def shard_versions(self) -> tuple[int, ...]:
        """Per-shard update counters.

        A shard's version bumps whenever :meth:`append_records` or
        :meth:`expire_prefix` touches it; caches keyed on
        ``(shard index, version)`` therefore invalidate exactly the
        entries the update affected.
        """
        return tuple(self._versions)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._shards[0].column_names

    def iter_records(self):
        for shard in self._shards:
            yield from shard.iter_records()

    def to_database(self):
        from repro.data.database import Database

        return Database(self.iter_records())

    def to_columnar(self) -> ColumnarDatabase:
        """Reassemble one single-node :class:`ColumnarDatabase`."""
        return ColumnarDatabase.concat(list(self._shards))

    # ------------------------------------------------------------------
    # The sharded execution primitive
    # ------------------------------------------------------------------
    def map_shards(
        self,
        fn: Callable[[ColumnarDatabase], T],
        indices: Sequence[int] | None = None,
    ) -> list[T]:
        """``[fn(shard) for shard in shards]`` — serial or on the executor.

        The single choke point every sharded operation funnels through;
        results come back in shard order, so ``np.concatenate`` on them
        reproduces the single-node record order.  ``indices`` restricts
        the pass to a subset of shards (cache refills after an
        incremental update touch only the stale shards).

        Executor dispatch: a plain :class:`concurrent.futures.Executor`
        receives ``(fn, shard)`` pairs (shipping the shard each call on
        process pools); an executor exposing ``map_resident`` — the
        :class:`repro.data.workers.ShardWorkerPool` — receives only
        ``fn``, translated to a spec request against its resident copy
        of the shards.
        """
        shards = (
            self._shards
            if indices is None
            else [self._shards[i] for i in indices]
        )
        if self._executor is None:
            return [fn(shard) for shard in shards]
        map_resident = getattr(self._executor, "map_resident", None)
        if map_resident is not None:
            return map_resident(self._shards, fn, indices)
        return list(self._executor.map(fn, shards))

    # ------------------------------------------------------------------
    # Incremental updates (append new data, expire the oldest)
    # ------------------------------------------------------------------
    def _columnarize_chunk(self, records) -> ColumnarDatabase:
        chunk = (
            records
            if isinstance(records, ColumnarDatabase)
            else ColumnarDatabase.from_any_records(records)
        )
        if set(chunk.column_names) != set(self.column_names):
            raise ValueError(
                f"appended records have columns {list(chunk.column_names)}, "
                f"database has {list(self.column_names)}"
            )
        if chunk.column_names != self.column_names:
            # Same schema, different attribute order: realign so the
            # per-shard column dictionaries stay congruent.
            chunk = ColumnarDatabase(
                {name: chunk[name] for name in self.column_names},
                records=tuple(chunk.iter_records())
                if chunk._records is not None
                else None,
            )
        return chunk

    def append_records(self, records) -> int:
        """Append records to the tail shard in place; returns its index.

        ``records`` is an iterable of mapping records (or trajectories),
        or an already-columnar chunk.  Only the last shard's columns are
        extended — an O(chunk + tail shard) concatenation instead of a
        full reslice — and only that shard's version bumps, so caches
        keyed on shard versions revalidate exactly one shard.  A worker
        pool installed as the executor receives the chunk (never the
        whole shard) and extends its resident copy in lockstep.
        """
        chunk = self._columnarize_chunk(records)
        index = len(self._shards) - 1
        hook = getattr(self._executor, "append_shard_chunk", None)
        new_shard = None
        if hook is not None:
            # The hook hands back the shard to commit — the worker pool
            # extends shm-backed shards in place (headroom segments) or
            # remaps them into fresh ones, and the parent must hold the
            # exact object the workers attached to (the residency
            # contract).  None falls back to the local concatenation.
            new_shard = hook(index, chunk, self._shards[index])
        if new_shard is None:
            new_shard = ColumnarDatabase.concat([self._shards[index], chunk])
        shards = list(self._shards)
        shards[index] = new_shard
        self._shards = tuple(shards)
        self._versions[index] += 1
        self._recompute_bounds()
        return index

    def expire_prefix(self, n_records: int) -> list[int]:
        """Drop the ``n_records`` oldest records in place.

        Records are stored in arrival order, so expiry walks shards from
        the front, trimming each (a shard fully covered by the prefix
        becomes an empty shard — the shard count, and hence any worker
        assignment, never changes).  Returns the indices of the shards
        that were touched; only their versions bump.
        """
        if not 0 <= n_records <= self._n:
            raise ValueError(
                f"cannot expire {n_records} of {self._n} records"
            )
        hook = getattr(self._executor, "expire_shard_prefix", None)
        affected: list[int] = []
        remaining = n_records
        try:
            for index in range(len(self._shards)):
                if remaining == 0:
                    break
                shard = self._shards[index]
                take = min(len(shard), remaining)
                if take == 0:
                    continue
                new_shard = shard.slice_records(take, len(shard))
                if hook is not None:
                    hook(index, take, new_shard)
                # Commit shard by shard: if a later shard's hook fails,
                # parent and workers still agree on everything already
                # trimmed (only the failing shard is in doubt).
                shards = list(self._shards)
                shards[index] = new_shard
                self._shards = tuple(shards)
                self._versions[index] += 1
                affected.append(index)
                remaining -= take
        finally:
            self._recompute_bounds()
        return affected

    # ------------------------------------------------------------------
    # Policy operations (merged from per-shard evaluation)
    # ------------------------------------------------------------------
    def mask(self, policy: Policy) -> np.ndarray:
        """Per-record {0, 1} labels; per-shard evaluation, concatenated."""
        return policy.evaluate_batch(self)

    def sensitive_indices(self, policy: Policy) -> np.ndarray:
        return np.flatnonzero(self.mask(policy) == SENSITIVE)

    def non_sensitive_indices(self, policy: Policy) -> np.ndarray:
        return np.flatnonzero(self.mask(policy) == NON_SENSITIVE)

    def _derived_executor(self):
        """Executor for databases derived from this one's shards.

        A shard-resident worker pool only answers for the exact shard
        objects it holds; a filtered copy's shards are new objects, so
        the derived database runs serially (plain executors carry
        over — they ship shards per call and serve any data).
        """
        if getattr(self._executor, "map_resident", None) is not None:
            return None
        return self._executor

    def non_sensitive(self, policy: Policy) -> "ShardedColumnarDatabase":
        """Shard-preserving ``D_ns``: each shard keeps its survivors."""
        return ShardedColumnarDatabase(
            self.map_shards(functools.partial(_shard_non_sensitive, policy=policy)),
            executor=self._derived_executor(),
        )

    def sensitive(self, policy: Policy) -> "ShardedColumnarDatabase":
        return ShardedColumnarDatabase(
            self.map_shards(functools.partial(_shard_sensitive, policy=policy)),
            executor=self._derived_executor(),
        )

    # ------------------------------------------------------------------
    # Histograms (merged by exact integer addition)
    # ------------------------------------------------------------------
    def bin_indices(self, binning) -> np.ndarray:
        """Per-shard vectorized bin indices, concatenated."""
        return np.concatenate(self.map_shards(binning.bin_indices))

    def histogram(self, binning, n_bins: int | None = None) -> np.ndarray:
        n_bins = binning.n_bins if n_bins is None else n_bins
        parts = self.map_shards(
            functools.partial(_shard_histogram, binning=binning, n_bins=n_bins)
        )
        return np.sum(parts, axis=0, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedColumnarDatabase(n={self._n}, "
            f"n_shards={self.n_shards}, columns={list(self.column_names)!r})"
        )
