"""Shard-resident worker runtime: persistent processes, specs on the wire.

:class:`repro.data.sharding.ShardedColumnarDatabase` with a
:class:`concurrent.futures.ProcessPoolExecutor` re-pickles every shard's
columns on every ``map_shards`` call — at million-record scale the wire
cost dwarfs the mask kernels it parallelizes.  :class:`ShardWorkerPool`
inverts the data flow:

* **Columns cross the wire once.**  Each worker process receives its
  shard at pool start (one pickle) and keeps it resident for the pool's
  lifetime.  Incremental updates (:meth:`append_shard_chunk`,
  :meth:`expire_shard_prefix`) ship only the delta.
* **Requests are specs.**  A mask, bin-index, histogram or
  ``(x, x_ns)`` request is a small dict built from the policy/binning
  wire format (:func:`repro.core.policy_language.policy_to_spec`,
  :func:`repro.queries.histogram.binning_to_spec`); the worker rebuilds
  the object and evaluates it against its resident columns.  Responses
  are result arrays only.  Per-request traffic is therefore independent
  of the shard size (``stats`` proves it: ``request_bytes`` vs
  ``startup_bytes``).
* **Workers cache by spec.**  Each worker holds mask and bin-index
  caches keyed by the spec's canonical rendering, so a burst of
  requests over the same policy pays the kernel once per shard — the
  worker-side mirror of the release server's caches.  Appends extend
  cached arrays by evaluating only the new chunk (policies and binnings
  are per-record, so extension is bit-identical to recomputation);
  expires slice them.

The pool plugs in behind ``ShardedColumnarDatabase.map_shards`` as an
executor: callables the pool recognizes (``Policy.evaluate_batch``,
``binning.bin_indices``, the histogram partials of
:mod:`repro.queries.histogram` and :mod:`repro.data.sharding`) are
translated to spec requests; anything else falls back to pickling the
callable itself (still without re-shipping the shard).  Every result is
**bit-identical** to serial ``map_shards``: the spec round-trip is
lossless and the kernels run unchanged, just in another process.
"""

from __future__ import annotations

import functools
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.policy import NON_SENSITIVE, Policy, SpecUnsupported
from repro.core.policy_language import (
    PolicySpecError,
    canonical_spec,
    policy_from_spec,
    policy_to_spec,
)
from repro.data.columnar import ColumnarDatabase

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


class _WorkerState:
    """One worker's resident shard plus its spec-keyed caches."""

    def __init__(self, shard: ColumnarDatabase):
        self.shard = shard
        # canonical spec -> (spec dict, per-record array); the spec is
        # kept so incremental appends can evaluate it on the new chunk.
        self.masks: dict[str, tuple[dict, np.ndarray]] = {}
        self.indices: dict[str, tuple[dict, np.ndarray]] = {}

    def mask(self, spec: dict) -> np.ndarray:
        key = canonical_spec(spec)
        hit = self.masks.get(key)
        if hit is None:
            arr = policy_from_spec(spec).evaluate_batch(self.shard)
            self.masks[key] = (spec, arr)
            return arr
        return hit[1]

    def bin_indices(self, spec: dict) -> np.ndarray:
        from repro.queries.histogram import binning_from_spec

        key = canonical_spec(spec)
        hit = self.indices.get(key)
        if hit is None:
            arr = binning_from_spec(spec).bin_indices(self.shard)
            self.indices[key] = (spec, arr)
            return arr
        return hit[1]

    def hist_counts(
        self, binning_spec: dict, policy_spec: dict
    ) -> tuple[np.ndarray, np.ndarray]:
        from repro.queries.histogram import binning_from_spec, counts_from_mask

        n_bins = binning_from_spec(binning_spec).n_bins
        return counts_from_mask(
            self.bin_indices(binning_spec),
            self.mask(policy_spec) == NON_SENSITIVE,
            n_bins,
        )

    def histogram(self, binning_spec: dict, n_bins: int) -> np.ndarray:
        return self.shard.histogram_from_indices(
            self.bin_indices(binning_spec), n_bins
        )

    def append(self, chunk: ColumnarDatabase) -> int:
        """Extend the resident shard and every cached array by the chunk.

        Masks and bin indices are per-record, so evaluating the cached
        specs on the chunk alone and concatenating is bit-identical to
        recomputing over the extended shard — the caches stay warm at
        O(chunk) cost.
        """
        from repro.queries.histogram import binning_from_spec

        self.shard = ColumnarDatabase.concat([self.shard, chunk])
        for key, (spec, arr) in list(self.masks.items()):
            extra = policy_from_spec(spec).evaluate_batch(chunk)
            self.masks[key] = (spec, np.concatenate([arr, extra]))
        for key, (spec, arr) in list(self.indices.items()):
            extra = binning_from_spec(spec).bin_indices(chunk)
            self.indices[key] = (spec, np.concatenate([arr, extra]))
        return len(self.shard)

    def expire(self, n: int) -> int:
        """Drop the first ``n`` resident records; slice cached arrays."""
        self.shard = self.shard.slice_records(n, len(self.shard))
        self.masks = {
            key: (spec, arr[n:]) for key, (spec, arr) in self.masks.items()
        }
        self.indices = {
            key: (spec, arr[n:]) for key, (spec, arr) in self.indices.items()
        }
        return len(self.shard)


def _worker_main(conn) -> None:
    """The worker loop: receive pickled requests, answer until 'stop'."""
    state: _WorkerState | None = None
    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except EOFError:
            return
        op = msg[0]
        if op == "stop":
            conn.send_bytes(pickle.dumps(("ok", None), _PICKLE_PROTOCOL))
            return
        try:
            if op == "shard":
                state = _WorkerState(msg[1])
                result = len(state.shard)
            elif state is None:
                raise RuntimeError("worker has no resident shard")
            elif op == "mask":
                result = state.mask(msg[1])
            elif op == "bin_indices":
                result = state.bin_indices(msg[1])
            elif op == "hist_counts":
                result = state.hist_counts(msg[1], msg[2])
            elif op == "histogram":
                result = state.histogram(msg[1], msg[2])
            elif op == "call":
                result = msg[1](state.shard)
            elif op == "append":
                result = state.append(msg[1])
            elif op == "expire":
                result = state.expire(msg[1])
            else:
                raise ValueError(f"unknown worker op {op!r}")
            reply = ("ok", result)
        except BaseException as exc:  # ship the failure, keep serving
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            payload = pickle.dumps(reply, _PICKLE_PROTOCOL)
        except Exception as exc:
            # An unpicklable result (possible on the generic "call"
            # path) must not kill the worker — ship the failure too.
            payload = pickle.dumps(
                ("err", f"unpicklable result: {type(exc).__name__}: {exc}"),
                _PICKLE_PROTOCOL,
            )
        conn.send_bytes(payload)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


class WorkerError(RuntimeError):
    """A shard worker failed to serve a request."""


@dataclass
class WorkerPoolStats:
    """Wire-traffic accounting, the proof of the runtime's contract.

    ``startup_bytes`` is the one-time shard shipment; ``request_bytes``
    is everything the parent sent after startup (specs and deltas
    only — it must not scale with the resident shard size) and
    ``response_bytes`` the result arrays that came back.
    """

    startup_bytes: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    requests: int = 0
    spec_requests: int = 0
    pickled_callables: int = 0
    last_request_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ShardWorkerPool:
    """Persistent worker processes, one per shard, columns shipped once.

    Build one from the shards (or a sharded database) and install it as
    the database's executor::

        pool = ShardWorkerPool(sharded.shards)
        db = sharded.with_executor(pool)   # map_shards now runs on it

    The pool recognizes the hot callables of the sharded engine and
    sends them as specs; see the module docstring for the wire
    contract.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, shards, mp_context: str | None = None):
        import multiprocessing

        shard_list = tuple(getattr(shards, "shards", shards))
        if not shard_list:
            raise ValueError("need at least one shard")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(mp_context)
        self.stats = WorkerPoolStats()
        self._resident: list[ColumnarDatabase] = list(shard_list)
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            for shard in shard_list:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            payloads = [
                pickle.dumps(("shard", shard), _PICKLE_PROTOCOL)
                for shard in shard_list
            ]
            self.stats.startup_bytes = sum(len(p) for p in payloads)
            for conn, payload in zip(self._conns, payloads):
                conn.send_bytes(payload)
            for conn in self._conns:
                self._receive(conn)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def close(self) -> None:
        """Stop the workers and release the pipes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(pickle.dumps(("stop",), _PICKLE_PROTOCOL))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, worker: int, message: tuple, startup: bool = False) -> None:
        self._send_payload(
            worker, pickle.dumps(message, _PICKLE_PROTOCOL), startup=startup
        )

    def _send_payload(
        self, worker: int, payload: bytes, startup: bool = False
    ) -> None:
        if self._closed:
            raise WorkerError("pool is closed")
        if startup:
            self.stats.startup_bytes += len(payload)
        else:
            self.stats.request_bytes += len(payload)
            self.stats.last_request_bytes = len(payload)
            self.stats.requests += 1
        self._conns[worker].send_bytes(payload)

    def _receive(self, conn):
        status, value = self._receive_any(conn)
        if status != "ok":
            raise WorkerError(value)
        return value

    def _receive_any(self, conn) -> tuple[str, object]:
        try:
            raw = conn.recv_bytes()
        except EOFError as exc:
            raise WorkerError("shard worker died") from exc
        self.stats.response_bytes += len(raw)
        return pickle.loads(raw)

    def _round_trip(self, request: tuple, workers: Sequence[int]) -> list:
        """Send one request to each worker, then gather in worker order.

        The payload is pickled once and fanned out (the request is the
        same for every worker).  Every reply is drained before a
        failure is raised — leaving responses queued in a pipe would
        corrupt the next request's pairing, so one failing shard must
        not strand the others'.
        """
        payload = pickle.dumps(request, _PICKLE_PROTOCOL)
        for worker in workers:
            self._send_payload(worker, payload)
        replies = [self._receive_any(self._conns[w]) for w in workers]
        for status, value in replies:
            if status != "ok":
                raise WorkerError(value)
        return [value for _, value in replies]

    # ------------------------------------------------------------------
    # The executor face seen by ShardedColumnarDatabase.map_shards
    # ------------------------------------------------------------------
    def resident_matches(self, shards: Sequence[ColumnarDatabase]) -> bool:
        """True when ``shards`` are exactly the resident shard objects."""
        return len(shards) == len(self._resident) and all(
            a is b for a, b in zip(shards, self._resident)
        )

    def map_resident(
        self,
        shards: Sequence[ColumnarDatabase],
        fn: Callable,
        indices: Sequence[int] | None = None,
    ) -> list:
        """``[fn(shard) for shard in shards]`` on the resident workers.

        ``shards`` must be the pool's resident shard objects (the
        sharded database passes its own) — a pool cannot answer for
        data it does not hold.  ``indices`` restricts the call to a
        subset of workers (the incremental-update path).
        """
        shards = tuple(getattr(shards, "shards", shards))
        if not self.resident_matches(shards):
            raise WorkerError(
                "database shards are not this pool's resident shards; "
                "rebuild the pool (or route updates through the "
                "database so the pool sees them)"
            )
        request = self._request_for(fn)
        workers = (
            list(range(self.n_workers)) if indices is None else list(indices)
        )
        if request[0] == "call":
            self.stats.pickled_callables += len(workers)
        else:
            self.stats.spec_requests += len(workers)
        return self._round_trip(request, workers)

    def _request_for(self, fn: Callable) -> tuple:
        """Translate a map_shards callable into a wire request.

        Recognized shapes become pure-spec requests; everything else is
        pickled whole (the callable, never the shard).
        """
        owner = getattr(fn, "__self__", None)
        name = getattr(fn, "__name__", "")
        try:
            if owner is not None and name == "evaluate_batch" and isinstance(
                owner, Policy
            ):
                return ("mask", policy_to_spec(owner))
            if owner is not None and name == "bin_indices":
                return ("bin_indices", owner.to_spec())
            if isinstance(fn, functools.partial):
                from repro.data.sharding import _shard_histogram
                from repro.queries.histogram import (
                    _shard_histogram_counts,
                    binning_to_spec,
                )

                kw = fn.keywords or {}
                if fn.func is _shard_histogram_counts and not fn.args:
                    query, policy = kw["query"], kw["policy"]
                    return (
                        "hist_counts",
                        binning_to_spec(query.binning),
                        policy_to_spec(policy),
                    )
                if fn.func is _shard_histogram and not fn.args:
                    return (
                        "histogram",
                        binning_to_spec(kw["binning"]),
                        int(kw["n_bins"]),
                    )
        except (SpecUnsupported, PolicySpecError, AttributeError, KeyError):
            pass  # fall through to the pickled-callable path
        return ("call", fn)

    # ------------------------------------------------------------------
    # Incremental updates (driven by ShardedColumnarDatabase)
    # ------------------------------------------------------------------
    def append_shard_chunk(
        self, index: int, chunk: ColumnarDatabase, new_shard: ColumnarDatabase
    ) -> None:
        """Ship only the appended chunk to worker ``index``.

        ``new_shard`` is the parent's extended shard object; the pool
        records it so the residency check keeps passing after the
        update (worker and parent extend in lockstep).
        """
        self._send(index, ("append", chunk))
        n = self._receive(self._conns[index])
        if n != len(new_shard):
            raise WorkerError(
                f"worker {index} shard has {n} records after append, "
                f"parent expects {len(new_shard)}"
            )
        self._resident[index] = new_shard

    def expire_shard_prefix(
        self, index: int, n: int, new_shard: ColumnarDatabase
    ) -> None:
        """Drop the first ``n`` records of worker ``index``'s shard."""
        self._send(index, ("expire", int(n)))
        remaining = self._receive(self._conns[index])
        if remaining != len(new_shard):
            raise WorkerError(
                f"worker {index} shard has {remaining} records after "
                f"expire, parent expects {len(new_shard)}"
            )
        self._resident[index] = new_shard
