"""Shard-resident worker runtime: persistent processes, specs on the wire.

:class:`repro.data.sharding.ShardedColumnarDatabase` with a
:class:`concurrent.futures.ProcessPoolExecutor` re-pickles every shard's
columns on every ``map_shards`` call — at million-record scale the wire
cost dwarfs the mask kernels it parallelizes.  :class:`ShardWorkerPool`
inverts the data flow:

* **Columns cross the wire once — or not at all.**  By default (and
  whenever the platform offers POSIX shared memory), each shard's
  buffers are placed into :class:`repro.data.store.ColumnStore`
  shared-memory segments and the worker receives only a ~100-byte
  **descriptor**: it attaches the segments by name — zero copy, O(1)
  startup bytes regardless of the record count, and co-hosted pools
  over a shared database (``sharded.share()``) reference one physical
  copy.  Columns that cannot place (object dtype) fall back to the
  one-time pickle shipment; ``shm=False`` forces it.  Incremental
  updates (:meth:`append_shard_chunk`, :meth:`expire_shard_prefix`)
  ship only the delta either way — an shm append additionally remaps
  the shard into fresh segments the worker re-attaches, an shm expire
  is a pure view trim on both sides.
* **Requests are specs.**  A mask, bin-index, histogram or
  ``(x, x_ns)`` request is a small dict built from the policy/binning
  wire format (:func:`repro.core.policy_language.policy_to_spec`,
  :func:`repro.queries.histogram.binning_to_spec`); the worker rebuilds
  the object and evaluates it against its resident columns.  Responses
  are result arrays only.  Per-request traffic is therefore independent
  of the shard size (``stats`` proves it: ``request_bytes`` vs
  ``startup_bytes``).
* **Workers cache by spec.**  Each worker holds mask, bin-index and
  ``(x, x_ns)`` count-pair caches keyed by the specs' canonical
  rendering, so a burst of requests over the same policy pays the
  kernel once per shard and repeated histogram traffic is O(1) per
  worker — the worker-side mirror of the release server's caches
  (``worker_cache_stats()`` reports exact hit/miss counts, plus the
  kernel backend the worker resolved).  Cold count pairs are built by
  the fused counting kernel of :mod:`repro.mechanisms.kernels` on the
  resident shard (one pass producing both histograms; the compiled
  backend releases the GIL); workers inherit ``REPRO_KERNEL`` from the
  parent environment, so parent and workers always count on the same
  backend — and the pairs are byte-identical on every backend anyway.  Appends
  extend cached arrays by evaluating only the new chunk and advance
  count pairs by the chunk's own pair (policies and binnings are
  per-record and counts are additive, so both are bit-identical to
  recomputation); expires slice arrays and subtract the expired
  prefix's pair.
* **Failover, not failure.**  The parent keeps the authoritative
  resident-shard copies; a worker that dies mid-request is respawned
  from its copy and the request resent, so a killed process degrades
  to a recompute on cold caches — never a crashed request.  Fan-out
  replies drain in arrival order
  (:func:`multiprocessing.connection.wait`) and reassemble into shard
  order, overlapping parent-side deserialization/merge with the slower
  shards' compute.

The pool plugs in behind ``ShardedColumnarDatabase.map_shards`` as an
executor: callables the pool recognizes (``Policy.evaluate_batch``,
``binning.bin_indices``, the histogram partials of
:mod:`repro.queries.histogram` and :mod:`repro.data.sharding`) are
translated to spec requests; anything else falls back to pickling the
callable itself (still without re-shipping the shard).  Every result is
**bit-identical** to serial ``map_shards``: the spec round-trip is
lossless and the kernels run unchanged, just in another process.
"""

from __future__ import annotations

import functools
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.policy import NON_SENSITIVE, Policy, SpecUnsupported
from repro.core.policy_language import (
    PolicySpecError,
    canonical_spec,
    policy_from_spec,
    policy_to_spec,
)
from repro.data.columnar import ColumnarDatabase
from repro.data.store import ColumnStore, placeable, shm_available

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

# Growth factor for segments created (or remapped) on the append path:
# fresh segments over-allocate by this fraction of their live size so
# subsequent appends extend in place behind the length headers
# (``ColumnStore.try_append``) instead of remapping every call.
APPEND_HEADROOM = 1.0


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


class _WorkerState:
    """One worker's resident shard plus its spec-keyed caches.

    Every cache is LRU-bounded at ``cache_limit`` distinct specs — the
    worker-side mirror of the release server's ``cache_limit`` — so a
    long-lived pool serving many distinct per-analyst policies cannot
    grow a worker's memory without bound.
    """

    def __init__(self, shard: ColumnarDatabase, cache_limit: int = 128):
        self.shard = shard
        self.cache_limit = max(2, int(cache_limit))
        # canonical spec -> (spec dict, per-record array); the spec is
        # kept so incremental appends can evaluate it on the new chunk.
        self.masks: dict[str, tuple[dict, np.ndarray]] = {}
        self.indices: dict[str, tuple[dict, np.ndarray]] = {}
        # (canonical binning spec, canonical policy spec) ->
        # (binning spec, policy spec, n_bins, (x, x_ns)); maintained
        # through appends/expires by the same delta discipline as the
        # per-record caches, so repeated histogram traffic over a warm
        # key costs O(1) per worker, not a bincount pass.
        self.counts: dict[
            tuple[str, str], tuple[dict, dict, int, tuple]
        ] = {}
        self.cache_stats = {
            "mask_hits": 0,
            "mask_misses": 0,
            "index_hits": 0,
            "index_misses": 0,
            "counts_hits": 0,
            "counts_misses": 0,
        }

    def _store(self, cache: dict, key, value) -> None:
        """Insert at the LRU back, evicting the front beyond the bound."""
        cache[key] = value
        while len(cache) > self.cache_limit:
            cache.pop(next(iter(cache)))

    @staticmethod
    def _touch(cache: dict, key):
        """LRU hit: move the entry to the back of the eviction order."""
        value = cache.pop(key)
        cache[key] = value
        return value

    def mask(self, spec: dict) -> np.ndarray:
        key = canonical_spec(spec)
        if key not in self.masks:
            self.cache_stats["mask_misses"] += 1
            arr = policy_from_spec(spec).evaluate_batch(self.shard)
            self._store(self.masks, key, (spec, arr))
            return arr
        self.cache_stats["mask_hits"] += 1
        return self._touch(self.masks, key)[1]

    def bin_indices(self, spec: dict) -> np.ndarray:
        from repro.queries.histogram import binning_from_spec

        key = canonical_spec(spec)
        if key not in self.indices:
            self.cache_stats["index_misses"] += 1
            arr = binning_from_spec(spec).bin_indices(self.shard)
            self._store(self.indices, key, (spec, arr))
            return arr
        self.cache_stats["index_hits"] += 1
        return self._touch(self.indices, key)[1]

    def hist_counts(
        self, binning_spec: dict, policy_spec: dict
    ) -> tuple[np.ndarray, np.ndarray]:
        from repro.queries.histogram import binning_from_spec, counts_from_mask

        key = (canonical_spec(binning_spec), canonical_spec(policy_spec))
        if key in self.counts:
            self.cache_stats["counts_hits"] += 1
            return self._touch(self.counts, key)[3]
        self.cache_stats["counts_misses"] += 1
        n_bins = binning_from_spec(binning_spec).n_bins
        pair = counts_from_mask(
            self.bin_indices(binning_spec),
            self.mask(policy_spec) == NON_SENSITIVE,
            n_bins,
        )
        self._store(
            self.counts, key, (binning_spec, policy_spec, n_bins, pair)
        )
        return pair

    def histogram(self, binning_spec: dict, n_bins: int) -> np.ndarray:
        return self.shard.histogram_from_indices(
            self.bin_indices(binning_spec), n_bins
        )

    def append(
        self,
        chunk: ColumnarDatabase,
        new_shard: ColumnarDatabase | None = None,
    ) -> int:
        """Extend the resident shard and every cached array by the chunk.

        Masks and bin indices are per-record, so evaluating the cached
        specs on the chunk alone and concatenating is bit-identical to
        recomputing over the extended shard — the caches stay warm at
        O(chunk) cost.  Count pairs are additive over any record
        partition, so each cached ``(x, x_ns)`` advances by the chunk's
        own pair.  ``new_shard`` (the shm remap path) substitutes an
        already-extended shard — freshly attached segment views whose
        values equal ``concat(shard, chunk)`` — for the local
        concatenation; the cache advance is the same either way.
        """
        from repro.queries.histogram import binning_from_spec, counts_from_mask

        self.shard = (
            ColumnarDatabase.concat([self.shard, chunk])
            if new_shard is None
            else new_shard
        )
        for key, (spec, arr) in list(self.masks.items()):
            extra = policy_from_spec(spec).evaluate_batch(chunk)
            self.masks[key] = (spec, np.concatenate([arr, extra]))
        for key, (spec, arr) in list(self.indices.items()):
            extra = binning_from_spec(spec).bin_indices(chunk)
            self.indices[key] = (spec, np.concatenate([arr, extra]))
        for key, (bspec, pspec, n_bins, (x, x_ns)) in list(self.counts.items()):
            dx, dx_ns = counts_from_mask(
                binning_from_spec(bspec).bin_indices(chunk),
                policy_from_spec(pspec).evaluate_batch(chunk) == NON_SENSITIVE,
                n_bins,
            )
            self.counts[key] = (bspec, pspec, n_bins, (x + dx, x_ns + dx_ns))
        return len(self.shard)

    def expire(self, n: int) -> int:
        """Drop the first ``n`` resident records; slice cached arrays.

        Cached count pairs subtract the expired prefix's own pair —
        computed from the cached per-record arrays *before* they are
        sliced — so they stay exact without a recount.  A count entry
        whose per-record arrays are somehow absent is dropped instead
        (the next request recomputes it).
        """
        from repro.queries.histogram import counts_from_mask

        for key, (bspec, pspec, n_bins, (x, x_ns)) in list(self.counts.items()):
            bkey, pkey = key
            index_hit = self.indices.get(bkey)
            mask_hit = self.masks.get(pkey)
            if index_hit is None or mask_hit is None:
                del self.counts[key]
                continue
            dx, dx_ns = counts_from_mask(
                index_hit[1][:n], mask_hit[1][:n] == NON_SENSITIVE, n_bins
            )
            self.counts[key] = (bspec, pspec, n_bins, (x - dx, x_ns - dx_ns))
        self.shard = self.shard.slice_records(n, len(self.shard))
        self.masks = {
            key: (spec, arr[n:]) for key, (spec, arr) in self.masks.items()
        }
        self.indices = {
            key: (spec, arr[n:]) for key, (spec, arr) in self.indices.items()
        }
        return len(self.shard)


def _attach_trimmed(descriptor: dict, trim: int) -> tuple:
    """Attach a descriptor's segments; re-apply a prefix trim.

    Expired prefixes never move bytes: the parent serves views past the
    dead records and a (re)spawned worker reproduces the same view by
    slicing its freshly attached database.  Returns ``(store, shard)``.
    """
    store = ColumnStore.attach(descriptor)
    shard = store.database
    if trim:
        shard = shard.slice_records(trim, len(shard))
    return store, shard


def _worker_main(conn) -> None:
    """The worker loop: receive pickled requests, answer until 'stop'."""
    state: _WorkerState | None = None
    store: ColumnStore | None = None

    def swap_store(new_store: ColumnStore | None) -> None:
        nonlocal store
        if store is not None:
            store.close()  # attached, never the owner: drops views only
        store = new_store

    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except EOFError:
            swap_store(None)
            return
        op = msg[0]
        if op == "stop":
            swap_store(None)
            conn.send_bytes(pickle.dumps(("ok", None), _PICKLE_PROTOCOL))
            return
        try:
            if op == "shard":
                swap_store(None)
                state = _WorkerState(msg[1], *msg[2:3])
                result = len(state.shard)
            elif op == "shard_shm":
                new_store, shard = _attach_trimmed(msg[1], msg[3])
                swap_store(new_store)
                state = _WorkerState(shard, msg[2])
                result = len(state.shard)
            elif state is None:
                raise RuntimeError("worker has no resident shard")
            elif op == "append_shm":
                new_store, shard = _attach_trimmed(msg[2], 0)
                result = state.append(msg[1], new_shard=shard)
                swap_store(new_store)
            elif op == "extend_shm":
                # The parent extended the shared headroom segments in
                # place; re-reading the length headers is the whole
                # re-attach.  msg[2] is the accumulated prefix trim.
                if store is None:
                    raise RuntimeError(
                        "extend_shm without attached segments"
                    )
                full = store.refresh()
                shard = (
                    full.slice_records(msg[2], len(full)) if msg[2] else full
                )
                result = state.append(msg[1], new_shard=shard)
            elif op == "mask":
                result = state.mask(msg[1])
            elif op == "bin_indices":
                result = state.bin_indices(msg[1])
            elif op == "hist_counts":
                result = state.hist_counts(msg[1], msg[2])
            elif op == "histogram":
                result = state.histogram(msg[1], msg[2])
            elif op == "call":
                result = msg[1](state.shard)
            elif op == "append":
                result = state.append(msg[1])
            elif op == "expire":
                result = state.expire(msg[1])
            elif op == "cache_stats":
                from repro.mechanisms import kernels

                result = dict(
                    state.cache_stats,
                    mask_entries=len(state.masks),
                    index_entries=len(state.indices),
                    counts_entries=len(state.counts),
                    # which kernel backend this worker's fused counts
                    # run on (workers inherit REPRO_KERNEL, so it must
                    # match the parent's — checkable from stats)
                    kernel_backend=kernels.active_backend(),
                )
            else:
                raise ValueError(f"unknown worker op {op!r}")
            reply = ("ok", result)
        except BaseException as exc:  # ship the failure, keep serving
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            payload = pickle.dumps(reply, _PICKLE_PROTOCOL)
        except Exception as exc:
            # An unpicklable result (possible on the generic "call"
            # path) must not kill the worker — ship the failure too.
            payload = pickle.dumps(
                ("err", f"unpicklable result: {type(exc).__name__}: {exc}"),
                _PICKLE_PROTOCOL,
            )
        conn.send_bytes(payload)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


class WorkerError(RuntimeError):
    """A shard worker failed to serve a request."""


class WorkerDied(WorkerError):
    """A shard worker process went away mid-request (pipe EOF/break).

    Internal signal of the failover path: the pool catches it, respawns
    the worker from the parent's resident shard copy, and retries the
    request — the caller only ever sees it when respawning itself keeps
    failing.
    """


@dataclass
class WorkerPoolStats:
    """Wire-traffic accounting, the proof of the runtime's contract.

    ``startup_bytes`` is the one-time shard shipment — a pickled copy
    of the columns on the heap path, a ~100-byte segment descriptor per
    shard on the shared-memory path (``shm_shards`` counts the latter,
    so O(1)-startup claims are checkable); ``request_bytes`` is
    everything the parent sent after startup (specs and deltas only —
    it must not scale with the resident shard size) and
    ``response_bytes`` the result arrays that came back.
    """

    startup_bytes: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    requests: int = 0
    spec_requests: int = 0
    pickled_callables: int = 0
    last_request_bytes: int = 0
    respawns: int = 0
    shm_shards: int = 0
    forced_kills: int = 0
    in_place_appends: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


def shard_shm_eligible(shard: ColumnarDatabase, shm: bool | None) -> bool:
    """Would the pool back this shard with shared-memory segments?

    The single decision point shared by :class:`ShardWorkerPool` and
    :class:`repro.api.backends.ShardedBackend` (which pre-shares
    eligible shards so parent and workers reference one physical
    copy).  ``shm=None`` (auto) requires fixed-width columns **and** no
    attached row-record objects — records have no segment form, and
    the pickle path ships them so per-record fallbacks (opaque
    policies through the generic ``call`` request) keep working;
    ``shm=True`` insists on segments (rejecting object-dtype columns
    loudly, and knowingly dropping worker-side records — every spec
    request is unaffected); ``shm=False`` never uses segments.
    """
    if shm is False or not shm_available():
        return False
    existing = getattr(shard, "store", None)
    if existing is not None and not existing.closed:
        return True
    if not placeable(shard):
        if shm is True:
            raise TypeError(
                "shard has object-dtype columns; shared-memory backing "
                "needs fixed-width buffers"
            )
        return False
    if shm is None and getattr(shard, "_records", None) is not None:
        return False
    return True


class ShardWorkerPool:
    """Persistent worker processes, one per shard, columns shipped once.

    Build one from the shards (or a sharded database) and install it as
    the database's executor::

        pool = ShardWorkerPool(sharded.shards)
        db = sharded.with_executor(pool)   # map_shards now runs on it

    The pool recognizes the hot callables of the sharded engine and
    sends them as specs; see the module docstring for the wire
    contract.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        shards,
        mp_context: str | None = None,
        cache_limit: int = 128,
        shm: bool | None = None,
    ):
        import multiprocessing

        shard_list = tuple(getattr(shards, "shards", shards))
        if not shard_list:
            raise ValueError("need at least one shard")
        self._cache_limit = cache_limit
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.stats = WorkerPoolStats()
        self._resident: list[ColumnarDatabase] = list(shard_list)
        # Per-shard shared-memory state: the ColumnStore whose segments
        # the worker attached (None on the pickle path), whether this
        # pool created it (and must unlink it), and the prefix-trim a
        # respawned worker must re-apply after attaching (expires are
        # view slices, never segment rewrites).
        self._stores: list[ColumnStore | None] = [None] * len(shard_list)
        self._owned: list[bool] = [False] * len(shard_list)
        self._trim: list[int] = [0] * len(shard_list)
        self._conns = []
        self._procs = []
        self._closed = False
        try:
            self._resolve_backing(shm)
            for _ in shard_list:
                parent_conn, proc = self._spawn_process()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            payloads = [
                self._startup_payload(i) for i in range(len(shard_list))
            ]
            self.stats.startup_bytes = sum(len(p) for p in payloads)
            self.stats.shm_shards = sum(
                store is not None for store in self._stores
            )
            for conn, payload in zip(self._conns, payloads):
                conn.send_bytes(payload)
            for conn in self._conns:
                self._receive(conn)
        except BaseException:
            self.close()
            raise

    def _resolve_backing(self, shm: bool | None) -> None:
        """Decide, per shard, how its columns reach the worker.

        Eligibility is :func:`shard_shm_eligible` (auto by default,
        forced either way by ``shm``).  A shard that is already
        shm-backed (``shard.store``) is referenced in place — one
        physical copy shared with the parent and any co-hosted pool —
        and is never unlinked by this pool; anything else eligible is
        placed into pool-owned segments.
        """
        if shm is True and not shm_available():  # pragma: no cover
            raise RuntimeError(
                "shared-memory backing requested but "
                "multiprocessing.shared_memory is unavailable"
            )
        for i, shard in enumerate(self._resident):
            if not shard_shm_eligible(shard, shm):
                continue
            existing = getattr(shard, "store", None)
            if existing is not None and not existing.closed:
                self._stores[i] = existing
                continue
            self._stores[i] = ColumnStore.place(shard)
            self._owned[i] = True

    def _startup_payload(self, index: int) -> bytes:
        """The one-time shard shipment: a descriptor, or the columns."""
        store = self._stores[index]
        if store is not None:
            message = (
                "shard_shm",
                store.descriptor(),
                self._cache_limit,
                self._trim[index],
            )
        else:
            message = ("shard", self._resident[index], self._cache_limit)
        return pickle.dumps(message, _PICKLE_PROTOCOL)

    def _spawn_process(self):
        """Start one worker process; returns its (parent pipe, process)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def close(self) -> None:
        """Stop the workers, release the pipes and the shm segments.

        Idempotent.  Only the segments this pool *created* are
        unlinked; a shard that arrived already shm-backed
        (``sharded.share()``) belongs to its own store — co-hosted
        pools and the parent keep serving from it.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(pickle.dumps(("stop",), _PICKLE_PROTOCOL))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            self._reap(proc)
        for conn in self._conns:
            conn.close()
        for store, owned in zip(self._stores, self._owned):
            if store is not None and owned:
                store.unlink()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send_payload(
        self, worker: int, payload: bytes, startup: bool = False
    ) -> None:
        if self._closed:
            raise WorkerError("pool is closed")
        try:
            self._conns[worker].send_bytes(payload)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerDied(f"shard worker {worker} died mid-send") from exc
        if startup:
            self.stats.startup_bytes += len(payload)
        else:
            self.stats.request_bytes += len(payload)
            self.stats.last_request_bytes = len(payload)
            self.stats.requests += 1

    def _receive(self, conn):
        status, value = self._receive_any(conn)
        if status != "ok":
            raise WorkerError(value)
        return value

    def _receive_any(self, conn) -> tuple[str, object]:
        try:
            raw = conn.recv_bytes()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise WorkerDied("shard worker died") from exc
        self.stats.response_bytes += len(raw)
        return pickle.loads(raw)

    def _reap(self, proc, grace: float = 5.0, polite: bool = True) -> None:
        """Collect one worker process, escalating instead of leaking.

        [polite] join → terminate (SIGTERM) → kill (SIGKILL), each
        bounded by ``grace`` seconds, so a wedged worker can never
        linger as a silent zombie holding its pipe and shm
        attachments; an escalation to SIGKILL is surfaced in
        ``stats.forced_kills``.  ``polite=False`` (the respawn path,
        where the worker is already presumed dead or wedged) skips the
        initial wait.
        """
        if polite:
            proc.join(timeout=grace)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=grace)
        if proc.is_alive():  # pragma: no cover - needs a SIGTERM-immune child
            proc.kill()
            proc.join(timeout=grace)
            self.stats.forced_kills += 1

    def _respawn(self, index: int) -> None:
        """Replace a dead worker with a fresh process holding its shard.

        The parent keeps the authoritative resident-shard copy, so the
        replacement starts from exact data; its spec caches start cold,
        degrading the retried request to a recompute — never a crash.
        """
        try:
            self._conns[index].close()
        except OSError:  # pragma: no cover - platform-dependent
            pass
        self._reap(self._procs[index], polite=False)
        conn, proc = self._spawn_process()
        self._conns[index] = conn
        self._procs[index] = proc
        payload = self._startup_payload(index)
        self.stats.startup_bytes += len(payload)
        conn.send_bytes(payload)
        self._receive(conn)
        self.stats.respawns += 1

    def _send_with_failover(self, worker: int, payload: bytes) -> None:
        try:
            self._send_payload(worker, payload)
        except WorkerDied:
            self._respawn(worker)
            self._send_payload(worker, payload)

    def _request_one(self, index: int, message: tuple):
        """One request/reply exchange with a single worker, with failover.

        A worker that dies mid-exchange is respawned from the parent's
        resident copy and the request is resent once.  Respawning
        resets the worker to the parent's last committed state, so a
        death *after* applying a mutating request (append/expire) but
        before replying cannot double-apply it.
        """
        payload = pickle.dumps(message, _PICKLE_PROTOCOL)
        try:
            self._send_payload(index, payload)
            return self._receive(self._conns[index])
        except WorkerDied:
            self._respawn(index)
            self._send_payload(index, payload)
            return self._receive(self._conns[index])

    def _round_trip(self, request: tuple, workers: Sequence[int]) -> list:
        """Fan one request out, drain replies as they arrive, keep order.

        The payload is pickled once and fanned out (the request is the
        same for every worker).  Replies are consumed in *arrival*
        order via :func:`multiprocessing.connection.wait` — the parent
        deserializes fast shards' responses while slow shards still
        compute — and reassembled into worker order at the end, so the
        overlap never reorders results.  A worker that dies mid-request
        is respawned from the parent's resident shard copy and the
        request resent (a retried spec request recomputes on cold
        caches — bit-identical, just slower).  Every live reply is
        drained before a worker-reported failure is raised — leaving
        responses queued in a pipe would corrupt the next request's
        pairing, so one failing shard must not strand the others'.
        """
        from multiprocessing import connection as _mp_connection

        payload = pickle.dumps(request, _PICKLE_PROTOCOL)
        workers = list(workers)
        results: dict[int, object] = {}
        errors: list[str] = []
        pending = set()
        for worker in workers:
            try:
                self._send_with_failover(worker, payload)
                pending.add(worker)
            except WorkerError as exc:
                # The worker (and its replacement) could not even take
                # the request.  Record the failure and keep fanning out:
                # raising here would strand the already-sent workers'
                # replies in their pipes and desync the next request.
                errors.append(f"shard worker {worker}: {exc}")
        deaths = dict.fromkeys(workers, 0)
        while pending:
            by_conn = {self._conns[w]: w for w in pending}
            for conn in _mp_connection.wait(list(by_conn)):
                worker = by_conn[conn]
                try:
                    status, value = self._receive_any(conn)
                except WorkerDied:
                    deaths[worker] += 1
                    if deaths[worker] > 2:
                        pending.discard(worker)
                        errors.append(
                            f"shard worker {worker} kept dying after respawn"
                        )
                        continue
                    try:
                        self._respawn(worker)
                        self._send_payload(worker, payload)
                    except WorkerError as exc:
                        # Respawning (or the resend) itself failed —
                        # give up on this worker only; the others'
                        # replies must still drain.
                        pending.discard(worker)
                        errors.append(
                            f"shard worker {worker} failed to respawn: {exc}"
                        )
                    continue
                pending.discard(worker)
                if status != "ok":
                    errors.append(value)
                else:
                    results[worker] = value
        if errors:
            raise WorkerError(errors[0])
        return [results[w] for w in workers]

    def worker_cache_stats(self) -> list[dict[str, int]]:
        """Each worker's spec-cache hit/miss counters, in worker order."""
        return self._round_trip(("cache_stats",), range(self.n_workers))

    # ------------------------------------------------------------------
    # The executor face seen by ShardedColumnarDatabase.map_shards
    # ------------------------------------------------------------------
    def resident_matches(self, shards: Sequence[ColumnarDatabase]) -> bool:
        """True when ``shards`` are exactly the resident shard objects."""
        return len(shards) == len(self._resident) and all(
            a is b for a, b in zip(shards, self._resident)
        )

    def map_resident(
        self,
        shards: Sequence[ColumnarDatabase],
        fn: Callable,
        indices: Sequence[int] | None = None,
    ) -> list:
        """``[fn(shard) for shard in shards]`` on the resident workers.

        ``shards`` must be the pool's resident shard objects (the
        sharded database passes its own) — a pool cannot answer for
        data it does not hold.  ``indices`` restricts the call to a
        subset of workers (the incremental-update path).
        """
        shards = tuple(getattr(shards, "shards", shards))
        if not self.resident_matches(shards):
            raise WorkerError(
                "database shards are not this pool's resident shards; "
                "rebuild the pool (or route updates through the "
                "database so the pool sees them)"
            )
        request = self._request_for(fn)
        workers = (
            list(range(self.n_workers)) if indices is None else list(indices)
        )
        if request[0] == "call":
            self.stats.pickled_callables += len(workers)
        else:
            self.stats.spec_requests += len(workers)
        return self._round_trip(request, workers)

    def _request_for(self, fn: Callable) -> tuple:
        """Translate a map_shards callable into a wire request.

        Recognized shapes become pure-spec requests; everything else is
        pickled whole (the callable, never the shard).
        """
        owner = getattr(fn, "__self__", None)
        name = getattr(fn, "__name__", "")
        try:
            if owner is not None and name == "evaluate_batch" and isinstance(
                owner, Policy
            ):
                return ("mask", policy_to_spec(owner))
            if owner is not None and name == "bin_indices":
                return ("bin_indices", owner.to_spec())
            if isinstance(fn, functools.partial):
                from repro.data.sharding import _shard_histogram
                from repro.queries.histogram import (
                    _shard_histogram_counts,
                    binning_to_spec,
                )

                kw = fn.keywords or {}
                if fn.func is _shard_histogram_counts and not fn.args:
                    query, policy = kw["query"], kw["policy"]
                    return (
                        "hist_counts",
                        binning_to_spec(query.binning),
                        policy_to_spec(policy),
                    )
                if fn.func is _shard_histogram and not fn.args:
                    return (
                        "histogram",
                        binning_to_spec(kw["binning"]),
                        int(kw["n_bins"]),
                    )
        except (SpecUnsupported, PolicySpecError, AttributeError, KeyError):
            pass  # fall through to the pickled-callable path
        return ("call", fn)

    # ------------------------------------------------------------------
    # Incremental updates (driven by ShardedColumnarDatabase)
    # ------------------------------------------------------------------
    def append_shard_chunk(
        self, index: int, chunk: ColumnarDatabase, tail: ColumnarDatabase
    ) -> ColumnarDatabase:
        """Ship only the appended chunk to worker ``index``.

        ``tail`` is the parent's current last shard; the return value is
        the extended shard the database must commit — the pool records
        the same object so the residency check keeps passing after the
        update (worker and parent extend in lockstep).  An shm-backed
        shard **extends in place** when its headroom segments still
        have capacity for the chunk: the parent writes the new values
        past the live length, bumps the length headers, and the worker
        re-reads the headers — no new segments, no re-attach, O(chunk)
        cost on both sides.  On overflow the shard is **remapped**: the
        extended columns are placed into fresh headroom segments
        (``APPEND_HEADROOM`` spare capacity, so the *next* appends
        extend in place), the worker re-attaches (receiving the chunk
        alongside, so its spec caches still advance at O(chunk) cost)
        and the old segments are unlinked.
        """
        store = self._stores[index]
        if store is not None:
            committed = self._extend_in_place(index, chunk)
            if committed is not None:
                return committed
        new_shard = ColumnarDatabase.concat([tail, chunk])
        if store is None or not placeable(new_shard):
            n = self._request_one(index, ("append", chunk))
            if n != len(new_shard):
                raise WorkerError(
                    f"worker {index} shard has {n} records after append, "
                    f"parent expects {len(new_shard)}"
                )
            self._resident[index] = new_shard
            if store is not None:
                # The chunk introduced an unplaceable column; the shard
                # demotes to the heap path (the worker concatenated
                # locally, so its copy is already off the segments).
                if self._owned[index]:
                    store.unlink()
                self._stores[index] = None
                self._owned[index] = False
                self._trim[index] = 0
                self.stats.shm_shards -= 1
            return new_shard
        placed = ColumnStore.place(new_shard, headroom=APPEND_HEADROOM)
        try:
            n = self._request_one(
                index, ("append_shm", chunk, placed.descriptor())
            )
            if n != len(placed.database):
                raise WorkerError(
                    f"worker {index} shard has {n} records after append, "
                    f"parent expects {len(placed.database)}"
                )
        except BaseException:
            placed.unlink()
            raise
        old_store, old_owned = self._stores[index], self._owned[index]
        self._stores[index], self._owned[index] = placed, True
        self._trim[index] = 0
        self._resident[index] = placed.database
        if old_owned:
            # Existing mappings (this parent's views, other attachers)
            # stay valid after unlink; only the name goes away.
            old_store.unlink()
        return placed.database

    def _extend_in_place(
        self, index: int, chunk: ColumnarDatabase
    ) -> ColumnarDatabase | None:
        """Extend worker ``index``'s headroom segments by ``chunk``.

        Returns the committed (trim-sliced) extended shard, or ``None``
        when the segments lack headers or capacity for the chunk — the
        caller falls back to the remap path.  On a worker-reported
        failure the length headers roll back to the snapshot, so the
        segments never advance past the last committed state (the bytes
        past the rolled-back lengths are unreferenced and the next
        append overwrites them).
        """
        store = self._stores[index]
        before = store.database
        snapshot = store.length_snapshot()
        extended = store.try_append(chunk)
        if extended is None:
            return None
        trim = self._trim[index]
        committed = (
            extended.slice_records(trim, len(extended)) if trim else extended
        )
        try:
            n = self._request_one(index, ("extend_shm", chunk, trim))
            if n != len(committed):
                raise WorkerError(
                    f"worker {index} shard has {n} records after extend, "
                    f"parent expects {len(committed)}"
                )
        except BaseException:
            store.restore_lengths(snapshot)
            store.database = before
            raise
        self._resident[index] = committed
        self.stats.in_place_appends += 1
        return committed

    def expire_shard_prefix(
        self, index: int, n: int, new_shard: ColumnarDatabase
    ) -> None:
        """Drop the first ``n`` records of worker ``index``'s shard.

        Pure view arithmetic on both sides: the parent's ``new_shard``
        slices past the expired prefix and the worker slices its
        resident (possibly segment-backed) arrays the same way — no
        bytes move and no segments are rewritten.  The accumulated trim
        is recorded so a respawned worker re-applies it after
        attaching.
        """
        remaining = self._request_one(index, ("expire", int(n)))
        if remaining != len(new_shard):
            raise WorkerError(
                f"worker {index} shard has {remaining} records after "
                f"expire, parent expects {len(new_shard)}"
            )
        if self._stores[index] is not None:
            self._trim[index] += int(n)
        self._resident[index] = new_shard
