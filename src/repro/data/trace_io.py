"""Wi-Fi trace ingestion: the paper's TIPPERS preprocessing (§6.1.1).

The real TIPPERS pipeline consumes association events — triples
``(ap_mac, device_mac, timestamp)`` — and builds *daily trajectories* by
discretizing time into 10-minute slots and keeping, per slot, the most
frequent access point.  This module reproduces that pipeline for anyone
holding a real trace in CSV form, producing the same
:class:`repro.data.tippers.Trajectory` records the rest of the library
consumes; it also exports synthetic traces back to the event format so
the two paths round-trip.

Event CSV format (header optional): ``ap,device,timestamp`` with the
timestamp in seconds since the epoch (float or int).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.data.tippers import SLOTS_PER_DAY, Trajectory

SECONDS_PER_SLOT = 600  # 10-minute discretization (the paper's choice)
SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class AssociationEvent:
    """One Wi-Fi association: device seen at an AP at a point in time."""

    ap: str
    device: str
    timestamp: float

    @property
    def day(self) -> int:
        return int(self.timestamp // SECONDS_PER_DAY)

    @property
    def slot(self) -> int:
        return int(self.timestamp % SECONDS_PER_DAY) // SECONDS_PER_SLOT


def parse_events(lines: Iterable[str]) -> Iterator[AssociationEvent]:
    """Parse CSV rows into events; a leading header row is skipped."""
    reader = csv.reader(lines)
    header = ["ap", "device", "timestamp"]
    for row_number, row in enumerate(reader):
        if not row:
            continue
        if row_number == 0 and [f.strip().lower() for f in row] == header:
            continue
        if len(row) != 3:
            raise ValueError(
                f"row {row_number}: expected 'ap,device,timestamp', got {row!r}"
            )
        ap, device, raw_ts = (field.strip() for field in row)
        try:
            timestamp = float(raw_ts)
        except ValueError:
            raise ValueError(
                f"row {row_number}: bad timestamp {raw_ts!r}"
            ) from None
        yield AssociationEvent(ap=ap, device=device, timestamp=timestamp)


def load_events(path: str | Path) -> list[AssociationEvent]:
    """Load association events from a CSV file."""
    with open(path, newline="") as handle:
        return list(parse_events(handle))


def build_trajectories(
    events: Iterable[AssociationEvent],
    ap_index: Mapping[str, int] | None = None,
) -> tuple[list[Trajectory], dict[str, int]]:
    """Discretize events into daily trajectories (the paper's recipe).

    Per (device, day): slots are labelled with the *most frequent* AP
    observed during the slot (ties break lexicographically for
    determinism); gaps between observed slots are filled by carrying the
    previous slot's AP forward, so each trajectory covers a contiguous
    slot range — matching :class:`Trajectory`'s contract.

    Returns the trajectories (user ids are dense integers per device)
    and the AP-name -> integer index mapping used (built from the data
    when not supplied).
    """
    if ap_index is None:
        ap_index = {}
        dynamic = True
    else:
        ap_index = dict(ap_index)
        dynamic = False

    # (device, day) -> slot -> {ap_id: count}
    per_user_day: dict[tuple[str, int], dict[int, dict[int, int]]] = {}
    for event in events:
        if event.ap not in ap_index:
            if not dynamic:
                raise KeyError(f"unknown AP {event.ap!r} for fixed ap_index")
            ap_index[event.ap] = len(ap_index)
        ap_id = ap_index[event.ap]
        slots = per_user_day.setdefault((event.device, event.day), {})
        slots.setdefault(event.slot, {})[ap_id] = (
            slots.get(event.slot, {}).get(ap_id, 0) + 1
        )

    device_ids: dict[str, int] = {}
    trajectories: list[Trajectory] = []
    for (device, day), slot_counts in sorted(per_user_day.items()):
        user_id = device_ids.setdefault(device, len(device_ids))
        dominant: dict[int, int] = {}
        for slot, counts in slot_counts.items():
            best = min(
                counts, key=lambda ap: (-counts[ap], ap)
            )  # most frequent, ties -> smallest id
            dominant[slot] = best
        first, last = min(dominant), max(dominant)
        slots: list[tuple[int, int]] = []
        current = dominant[first]
        for slot in range(first, last + 1):
            current = dominant.get(slot, current)
            slots.append((slot, current))
        trajectories.append(
            Trajectory(user_id=user_id, day=day, slots=tuple(slots))
        )
    return trajectories, ap_index


def export_events(
    trajectories: Iterable[Trajectory],
    ap_names: Mapping[int, str] | None = None,
) -> str:
    """Render trajectories as an event CSV (one event per slot)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["ap", "device", "timestamp"])
    for trajectory in trajectories:
        for slot, ap in trajectory.slots:
            if not 0 <= slot < SLOTS_PER_DAY:
                raise ValueError(f"slot {slot} outside a day")
            name = ap_names[ap] if ap_names is not None else f"ap{ap}"
            timestamp = (
                trajectory.day * SECONDS_PER_DAY + slot * SECONDS_PER_SLOT
            )
            writer.writerow([name, f"device{trajectory.user_id}", timestamp])
    return buffer.getvalue()
