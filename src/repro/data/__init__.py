"""Data substrates for the reproduction.

* :mod:`repro.data.database` — the record/database abstraction consumed
  by policies and mechanisms;
* :mod:`repro.data.columnar` — the struct-of-arrays
  :class:`ColumnarDatabase` behind the vectorized policy/histogram
  fast paths;
* :mod:`repro.data.store` — shared-memory column backing
  (:class:`ColumnStore`): place a database's buffers into POSIX
  segments once, attach by ~100-byte descriptor from any process;
* :mod:`repro.data.dpbench` — synthetic stand-ins for the seven
  DPBench-1D histograms of Table 2 (domain 4096, matched scale/sparsity);
* :mod:`repro.data.sampling` — the ``MSampling`` (Close) and
  ``HiLoSampling`` (Far) opt-in/opt-out policy simulators of
  Section 6.1.2;
* :mod:`repro.data.tippers` — a synthetic smart-building Wi-Fi trace
  generator standing in for the IRB-restricted TIPPERS dataset of
  Section 6.1.1, including the access-point-level ``P_rho`` policies.
"""

from repro.data.columnar import ColumnarDatabase, RaggedColumn
from repro.data.database import Database
from repro.data.sharding import ShardedColumnarDatabase
from repro.data.store import ColumnStore, shm_available
from repro.data.workers import ShardWorkerPool, WorkerPoolStats
from repro.data.dpbench import DPBENCH_SPECS, DatasetSpec, generate_dpbench, load_all
from repro.data.sampling import PolicySample, hilo_sampling, m_sampling
from repro.data.tippers import (
    Trajectory,
    TippersConfig,
    TippersDataset,
    generate_tippers,
)

__all__ = [
    "ColumnStore",
    "ColumnarDatabase",
    "DPBENCH_SPECS",
    "Database",
    "DatasetSpec",
    "RaggedColumn",
    "PolicySample",
    "ShardWorkerPool",
    "ShardedColumnarDatabase",
    "WorkerPoolStats",
    "TippersConfig",
    "TippersDataset",
    "Trajectory",
    "generate_dpbench",
    "generate_tippers",
    "hilo_sampling",
    "load_all",
    "m_sampling",
    "shm_available",
]
