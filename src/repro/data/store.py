"""Zero-copy column storage: shared-memory segments behind columnar data.

:class:`repro.data.workers.ShardWorkerPool` historically shipped every
shard's columns to its worker process as one pickle — a full physical
copy per worker, and startup bytes proportional to the table size.
:class:`ColumnStore` removes the copy: it places a
:class:`~repro.data.columnar.ColumnarDatabase`'s flat buffers into
POSIX shared-memory segments (:mod:`multiprocessing.shared_memory`)
and renders the whole database as a **descriptor** — a ~100-byte plain
dict per column naming the segments and their dtypes/shapes.  Any
process (forked or spawned) rebuilds the database from the descriptor
with :meth:`ColumnStore.attach`: the arrays are read-only views over
the same physical pages, so

* pool startup ships descriptors, not arrays — O(1) bytes per worker
  regardless of the record count;
* co-hosted pools (or any number of attachers) share **one** physical
  copy of the columns;
* attaching is O(segment count), never O(records).

Lifecycle is explicit and asymmetric, mirroring POSIX semantics: every
holder calls :meth:`close` (drop this process's mapping); exactly one
owner calls :meth:`unlink` (remove the segments from the system).  The
store registers a GC finalizer as a safety net, so a leaked store
cannot leak ``/dev/shm`` segments past interpreter exit, and attachers
unregister from :mod:`multiprocessing.resource_tracker` so a dying
worker can never tear down segments its parent still serves from.

Heap backing stays the default everywhere: a database that was never
placed simply has no store (``db.store is None``) and behaves exactly
as before.  Placement is value-preserving — the placed database's
columns compare bit-identical to the originals — and read-only, which
matches the engine's copy-on-write discipline (columns are never
mutated in place; appends/expires build new arrays/views).
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from typing import Mapping

import numpy as np

#: Prefix of every segment this module creates; the shm leak tests (and
#: operators inspecting /dev/shm) identify our segments by it.
SEGMENT_PREFIX = "osdp"

#: POSIX shm names are limited (31 bytes on macOS including the
#: leading slash); keep ours well under.
_TOKEN_BYTES = 8


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


def placeable(db) -> bool:
    """True when every column of ``db`` has a fixed-width buffer.

    Object-dtype columns (mixed-type record values) have no raw-buffer
    form and keep the pickle path; numeric, boolean and fixed-width
    string columns all place.
    """
    from repro.data.columnar import RaggedColumn

    for name in db.column_names:
        column = db[name]
        if isinstance(column, RaggedColumn):
            if column.flat.dtype.hasobject or column.offsets.dtype.hasobject:
                return False
        elif np.asarray(column).dtype.hasobject:
            return False
    return True


#: Serializes segment *creation* with the pre-3.13 attach fallback
#: below: the fallback briefly no-ops ``resource_tracker.register``,
#: and a concurrent ``SharedMemory(create=True)`` in another thread
#: must not land its registration inside that window (it would lose
#: the tracker's SIGKILL safety net for a segment we own).
_TRACKER_LOCK = threading.Lock()


def _attach_segment(name: str):
    """Open an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with this process's
    resource tracker, which would *unlink* it when this process exits —
    destroying data the creating process still serves (bpo-38119).
    Python 3.13 grew ``track=False``; on older interpreters the
    registration is suppressed instead of undone — calling
    ``unregister`` after the fact would be wrong under ``fork``, where
    parent and worker share one tracker and the undo would also erase
    the *owner's* registration.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on interpreter
        pass
    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _new_segment(nbytes: int):
    from multiprocessing import shared_memory

    # shm segments cannot be empty; 0-length columns round up to one
    # byte (the descriptor's shape, not the segment size, is truth).
    size = max(1, int(nbytes))
    for _ in range(8):
        name = f"{SEGMENT_PREFIX}_{secrets.token_hex(_TOKEN_BYTES)}"
        try:
            with _TRACKER_LOCK:  # see the lock's comment
                return shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
        except FileExistsError:  # pragma: no cover - 2^64 collision
            continue
    raise RuntimeError("could not allocate a unique shared-memory name")


def _view(shm, dtype: np.dtype, shape: tuple[int, ...]) -> np.ndarray:
    """A read-only ndarray over a segment's buffer."""
    count = int(np.prod(shape)) if shape else 1
    if count == 0:
        arr = np.empty(shape, dtype=dtype)
    else:
        arr = np.frombuffer(
            shm.buf, dtype=dtype, count=count
        ).reshape(shape)
    arr.flags.writeable = False
    return arr


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # Live array views still export the mmap's buffer, so the
        # mapping cannot be unmapped yet — it dies with the process (or
        # when the last view does).  Release the file descriptor now
        # and disarm the handle so SharedMemory.__del__ does not retry
        # the doomed close at GC/interpreter exit; unlink() is
        # independent of close() and still removes the name, so nothing
        # leaks system-wide.
        try:
            if shm._fd >= 0:  # pragma: no branch
                os.close(shm._fd)
                shm._fd = -1
        except OSError:  # pragma: no cover - already closed
            pass
        shm._mmap = None
        shm._buf = None


class ColumnStore:
    """The shared-memory segments behind one columnar database.

    Build with :meth:`place` (creates segments, becomes the owner) or
    :meth:`attach` (opens an existing descriptor, never the owner);
    read the rebuilt database from :attr:`database` and the wire form
    from :meth:`descriptor`.  ``close()`` releases this process's
    mappings; ``close(unlink=True)``/``unlink()`` additionally removes
    the segments (owner only — attachers silently skip it).
    """

    def __init__(self, segments: dict[str, object], owner: bool):
        self._segments = dict(segments)
        self._owner = owner
        self._closed = False
        self.database = None  # set by place()/attach()
        self._descriptor: dict | None = None
        # GC safety net: a store that falls out of scope must not leak
        # /dev/shm segments.  The finalizer captures the segment list,
        # never the store (else it would keep the store alive forever).
        self._finalizer = weakref.finalize(
            self, ColumnStore._cleanup, dict(self._segments), owner
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def place(cls, db) -> "ColumnStore":
        """Copy ``db``'s column buffers into fresh shm segments.

        Returns the owning store; ``store.database`` is a new
        :class:`~repro.data.columnar.ColumnarDatabase` with the same
        column values as read-only segment views (original record
        objects, when present, are carried over — they live only in
        this process).  Raises :class:`TypeError` when a column has no
        fixed-width buffer (see :func:`placeable`).
        """
        from repro.data.columnar import ColumnarDatabase, RaggedColumn

        if not placeable(db):
            raise TypeError(
                "database has object-dtype columns; shared-memory "
                "placement needs fixed-width buffers"
            )
        segments: dict[str, object] = {}
        spec: dict[str, dict] = {}
        columns: dict[str, object] = {}
        try:
            for name in db.column_names:
                column = db[name]
                if isinstance(column, RaggedColumn):
                    flat, flat_seg = cls._place_array(column.flat, segments)
                    offs, offs_seg = cls._place_array(
                        np.asarray(column.offsets), segments
                    )
                    columns[name] = RaggedColumn(flat=flat, offsets=offs)
                    spec[name] = {
                        "kind": "ragged",
                        "flat": flat_seg,
                        "offsets": offs_seg,
                    }
                else:
                    arr, seg = cls._place_array(np.asarray(column), segments)
                    columns[name] = arr
                    spec[name] = {"kind": "plain", **seg}
        except BaseException:
            for shm in segments.values():
                _close_quietly(shm)
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            raise
        store = cls(segments, owner=True)
        store._descriptor = {"v": 1, "columns": spec}
        store.database = ColumnarDatabase(
            columns, records=getattr(db, "_records", None)
        )
        store.database._store = store
        return store

    @staticmethod
    def _place_array(arr: np.ndarray, segments: dict) -> tuple[np.ndarray, dict]:
        arr = np.ascontiguousarray(arr)
        shm = _new_segment(arr.nbytes)
        segments[shm.name] = shm
        if arr.size:
            np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size)[
                :
            ] = arr.ravel()
        view = _view(shm, arr.dtype, arr.shape)
        return view, {
            "segment": shm.name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        }

    @classmethod
    def attach(cls, descriptor: Mapping) -> "ColumnStore":
        """Open the segments a descriptor names; zero data movement.

        The returned store is **not** the owner: closing it drops this
        process's mappings and never unlinks.  Works across ``fork``
        and ``spawn`` alike — the descriptor is plain data and the
        attach is by name.
        """
        from repro.data.columnar import ColumnarDatabase, RaggedColumn

        segments: dict[str, object] = {}

        def open_array(seg: Mapping) -> np.ndarray:
            name = seg["segment"]
            if name not in segments:
                segments[name] = _attach_segment(name)
            return _view(
                segments[name],
                np.dtype(seg["dtype"]),
                tuple(seg["shape"]),
            )

        columns: dict[str, object] = {}
        try:
            for name, seg in descriptor["columns"].items():
                if seg["kind"] == "ragged":
                    columns[name] = RaggedColumn(
                        flat=open_array(seg["flat"]),
                        offsets=open_array(seg["offsets"]),
                    )
                else:
                    columns[name] = open_array(seg)
        except BaseException:
            for shm in segments.values():
                _close_quietly(shm)
            raise
        store = cls(segments, owner=False)
        store._descriptor = {
            "v": 1,
            "columns": {k: dict(v) for k, v in descriptor["columns"].items()},
        }
        store.database = ColumnarDatabase(columns)
        store.database._store = store
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(self._segments)

    def descriptor(self) -> dict:
        """The ~100-bytes-per-column wire form: segment names + layouts.

        Plain data (JSON-able, picklable); any process turns it back
        into the database with :meth:`attach`.
        """
        if self._descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError("store has no descriptor")
        return {
            "v": self._descriptor["v"],
            "columns": {
                k: dict(v) for k, v in self._descriptor["columns"].items()
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, unlink: bool | None = None) -> None:
        """Release this process's mappings (idempotent).

        ``unlink`` defaults to ownership: the owner removes the
        segments from the system, attachers only drop their views.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        ColumnStore._cleanup(
            self._segments, self._owner if unlink is None else unlink
        )

    def unlink(self) -> None:
        """Remove the segments from the system (close + unlink)."""
        self.close(unlink=True)

    @staticmethod
    def _cleanup(segments: dict, unlink: bool) -> None:
        for shm in segments.values():
            _close_quietly(shm)
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # already removed
                    pass

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "attached"
        return (
            f"ColumnStore({role}, segments={len(self._segments)}, "
            f"closed={self._closed})"
        )
